#!/usr/bin/env bash
# Repository CI gate. Run from the repo root:
#
#   ./ci.sh          # full gate: build, tests, formatting, lints
#   ./ci.sh quick    # tier-1 only: release build + tests
#
# All steps run offline (dependencies are vendored under vendor/).

set -euo pipefail
cd "$(dirname "$0")"

step() { echo; echo "==> $*"; }

step "cargo build --release"
cargo build --release --offline

step "cargo test -q"
cargo test -q --offline --workspace

if [[ "${1:-full}" == "quick" ]]; then
    echo; echo "quick gate passed."
    exit 0
fi

step "snn-lint"
cargo run -q -p snn-lint --offline

step "cargo test (debug, overflow-checks) — arms the numeric sanitizer and lock-order detector"
RUSTFLAGS="-C overflow-checks=on" cargo test -q --offline --workspace

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo; echo "CI passed."
