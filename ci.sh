#!/usr/bin/env bash
# Repository CI gate. Run from the repo root:
#
#   ./ci.sh          # full gate: build, tests, formatting, lints
#   ./ci.sh quick    # tier-1 only: release build + tests
#
# All steps run offline (dependencies are vendored under vendor/).

set -euo pipefail
cd "$(dirname "$0")"

step() { echo; echo "==> $*"; }

step "cargo build --release"
cargo build --release --offline

step "cargo test -q"
cargo test -q --offline --workspace

if [[ "${1:-full}" == "quick" ]]; then
    echo; echo "quick gate passed."
    exit 0
fi

step "snn-lint"
cargo run -q -p snn-lint --offline

step "snn-lint — pass registry exposes the dataflow, wire and determinism-taint passes"
LINT_LIST="$(cargo run -q -p snn-lint --offline -- --list)"
for pass in L-HELDLOCK L-LOCKGRAPH L-WIRE L-OBS L-DET-FLOW L-DET-ITER L-DET-CLOCK; do
    grep -q "^$pass" <<< "$LINT_LIST" || { echo "snn-lint --list missing pass $pass"; exit 1; }
done
grep -q "^L-NONDET" <<< "$LINT_LIST" && { echo "retired pass L-NONDET still registered"; exit 1; }

step "snn-lint — --explain documents every determinism pass"
for pass in L-DET-FLOW L-DET-ITER L-DET-CLOCK; do
    EXPLAIN_OUT="$(cargo run -q -p snn-lint --offline -- --explain "$pass")"
    grep -q "^$pass:" <<< "$EXPLAIN_OUT" \
        || { echo "snn-lint --explain $pass failed"; exit 1; }
done

step "snn-lint — whole-workspace analysis stays under 400 ms at --threads 1"
LINT_MS="$(cargo run --release -q -p snn-lint --offline -- --threads 1 2>&1 >/dev/null \
    | sed -n 's/.*analysis wall time \([0-9]*\)\(\.[0-9]*\)\? ms.*/\1/p')"
[[ -n "$LINT_MS" ]] || { echo "could not parse snn-lint wall time"; exit 1; }
(( LINT_MS < 400 )) || { echo "snn-lint took ${LINT_MS} ms at --threads 1 (budget 400 ms)"; exit 1; }

step "snn-lint — committed wire-schema baseline reproduces byte-identically"
cargo run -q -p snn-lint --offline -- --check-wire-baseline

step "snn-analyze — collapse >=10% of the example networks' fault universes, self-checked"
ANALYZE_TMP="$(mktemp -d)"
trap 'rm -rf "$ANALYZE_TMP"' EXIT
cargo run --release -q --offline -- new --input 2x16x16 --arch pool:2,dense:48,dense:10 \
    --sparsity 0.5 --out "$ANALYZE_TMP/nmnist.snn" > /dev/null
cargo run --release -q --offline -- new --input 2x24x24 --arch pool:2,conv:6:5:1:2,pool:2,dense:32,dense:11 \
    --sparsity 0.5 --out "$ANALYZE_TMP/ibm.snn" > /dev/null
cargo run --release -q --offline -- new --input 140 --arch recurrent:32,dense:20 \
    --sparsity 0.5 --out "$ANALYZE_TMP/shd.snn" > /dev/null
for m in nmnist ibm shd; do
    cargo run --release -q --offline -p snn-analyze -- "$ANALYZE_TMP/$m.snn" \
        --self-check --min-collapse 0.10 > /dev/null
done

step "observability — traced generate/verify profiles show the pipeline stages"
cargo run --release -q --offline -- new --input 6 --arch dense:12,dense:4 \
    --out "$ANALYZE_TMP/obs.snn" > /dev/null
cargo run --release -q --offline -- generate "$ANALYZE_TMP/obs.snn" --preset fast \
    --out "$ANALYZE_TMP/obs.events" --trace-out "$ANALYZE_TMP/generate.trace.jsonl" > /dev/null
PROFILE="$(cargo run --release -q --offline -- profile "$ANALYZE_TMP/generate.trace.jsonl")"
for node in generate stage1 stage2; do
    grep -q "$node" <<< "$PROFILE" || { echo "profile missing span '$node'"; exit 1; }
done
cargo run --release -q --offline -- verify "$ANALYZE_TMP/obs.snn" "$ANALYZE_TMP/obs.events" \
    --trace-out "$ANALYZE_TMP/verify.trace.jsonl" > /dev/null
cargo run --release -q --offline -- profile "$ANALYZE_TMP/verify.trace.jsonl" \
    | grep -q "faultsim.campaign" || { echo "verify profile missing span 'faultsim.campaign'"; exit 1; }

step "packed engine — digest equality with the scalar engine on the example nets"
# Same seeded campaign under both engines: the packed path promises
# bit-identical verdicts (DESIGN.md §18.3), so the digests must match
# on all three example nets — nmnist (pool prefix), ibm (conv prefix,
# exercising the scalar fallback), shd (recurrent prefix).
verdict_of() { sed -n 's/^verdict digest: \([0-9a-f]*\)$/\1/p' <<< "$1"; }
for m in nmnist ibm shd; do
    cargo run --release -q --offline -- generate "$ANALYZE_TMP/$m.snn" --preset fast --seed 5 \
        --out "$ANALYZE_TMP/$m.events" > /dev/null
    SCALAR_OUT="$(cargo run --release -q --offline -- verify "$ANALYZE_TMP/$m.snn" \
        "$ANALYZE_TMP/$m.events" --engine scalar)"
    PACKED_OUT="$(cargo run --release -q --offline -- verify "$ANALYZE_TMP/$m.snn" \
        "$ANALYZE_TMP/$m.events" --engine packed)"
    grep -q '^engine: scalar$' <<< "$SCALAR_OUT" || { echo "$m: verify ignored --engine scalar"; exit 1; }
    grep -q '^engine: packed$' <<< "$PACKED_OUT" || { echo "$m: verify ignored --engine packed"; exit 1; }
    SCALAR_DIGEST="$(verdict_of "$SCALAR_OUT")"
    PACKED_DIGEST="$(verdict_of "$PACKED_OUT")"
    [[ -n "$SCALAR_DIGEST" ]] || { echo "$m: verify printed no verdict digest"; exit 1; }
    [[ "$SCALAR_DIGEST" == "$PACKED_DIGEST" ]] \
        || { echo "$m: engine digest mismatch: scalar $SCALAR_DIGEST vs packed $PACKED_DIGEST"; exit 1; }
done

step "cluster bench — 0/1/2 workers, bit-identical verdicts + perf-regression gated"
# bench_cluster.sh reads this machine's BENCH_cluster.json (gitignored
# local state) as the perf-regression baseline (fails on >15% faults/sec
# regression against the slowest recorded run) and carries its history
# forward, so the gate runs before the cp refreshes the file.
./bench_cluster.sh "$ANALYZE_TMP/BENCH_cluster.json"
cp "$ANALYZE_TMP/BENCH_cluster.json" BENCH_cluster.json
grep -q '"speedup_2_over_1"' BENCH_cluster.json || { echo "bench output missing speedup"; exit 1; }
grep -q '"meta"' BENCH_cluster.json || { echo "bench output missing run metadata"; exit 1; }
grep -q '"phase_breakdown"' BENCH_cluster.json \
    || { echo "bench history missing phase breakdown"; exit 1; }

step "distributed tracing — 2-worker traced campaign merges into one coherent tree"
SERVE_LOG="$ANALYZE_TMP/serve.log"
./target/release/snn-mtfc serve --state-dir "$ANALYZE_TMP/trace-state" --addr 127.0.0.1:0 \
    --expect-workers 2 --chunk-size 64 \
    --trace-out "$ANALYZE_TMP/cluster.trace.jsonl" > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
SERVE_ADDR=""
for _ in $(seq 1 100); do
    SERVE_ADDR="$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' "$SERVE_LOG")"
    [[ -n "$SERVE_ADDR" ]] && break
    sleep 0.1
done
[[ -n "$SERVE_ADDR" ]] || { echo "traced serve did not come up"; cat "$SERVE_LOG"; exit 1; }
./target/release/snn-mtfc worker --addr "$SERVE_ADDR" --name trace-w1 --threads 1 --trace \
    > /dev/null 2>&1 &
W1_PID=$!
./target/release/snn-mtfc worker --addr "$SERVE_ADDR" --name trace-w2 --threads 1 --trace \
    > /dev/null 2>&1 &
W2_PID=$!
./target/release/snn-mtfc submit --synthetic 16x64x10 --preset fast --coverage --watch \
    --addr "$SERVE_ADDR" > /dev/null
./target/release/snn-mtfc shutdown --addr "$SERVE_ADDR" > /dev/null
wait "$SERVE_PID" "$W1_PID" "$W2_PID" 2>/dev/null || true
TRACED_PROFILE="$(./target/release/snn-mtfc profile "$ANALYZE_TMP/cluster.trace.jsonl" --phases)"
for node in cluster.campaign worker:trace-w1 worker:trace-w2 cluster.chunk; do
    grep -qF "$node" <<< "$TRACED_PROFILE" \
        || { echo "traced-campaign profile missing '$node'"; exit 1; }
done
grep -q "KERNEL PHASES" <<< "$TRACED_PROFILE" && grep -q "phase.forward" <<< "$TRACED_PROFILE" \
    || { echo "traced-campaign profile has no kernel-phase table"; exit 1; }
ATTRIBUTED="$(sed -n 's/^attributed: \([0-9]*\)\..*/\1/p' <<< "$TRACED_PROFILE")"
[[ -n "$ATTRIBUTED" ]] || { echo "phase table missing attribution line"; exit 1; }
(( ATTRIBUTED >= 95 )) \
    || { echo "kernel phases attribute only ${ATTRIBUTED}% of fault-sim time (need >=95%)"; exit 1; }

step "reliability — seeded fault-map campaign, single-process vs 2-worker digests gated"
RELIABILITY_ARGS=(--synthetic 6x12x4 --configs 8 --weight-ber 0.05 --mitigation range
    --seed 11 --samples 6 --steps 12 --json)
REL_LOCAL="$(cargo run --release -q --offline -- reliability "${RELIABILITY_ARGS[@]}")"
REL_DIST="$(cargo run --release -q --offline -- reliability "${RELIABILITY_ARGS[@]}" --workers 2)"
digest_of() { sed -n 's/.*"digest":"\([0-9a-f]*\)".*/\1/p' <<< "$1"; }
LOCAL_DIGEST="$(digest_of "$REL_LOCAL")"
DIST_DIGEST="$(digest_of "$REL_DIST")"
[[ -n "$LOCAL_DIGEST" ]] || { echo "reliability report missing digest"; exit 1; }
[[ "$LOCAL_DIGEST" == "$DIST_DIGEST" ]] \
    || { echo "reliability digest mismatch: local $LOCAL_DIGEST vs 2-worker $DIST_DIGEST"; exit 1; }
grep -q '"regions":\[{' <<< "$REL_LOCAL" \
    || { echo "reliability report has an empty criticality ranking"; exit 1; }
# Engine-selection invariance: reliability campaigns score accuracy
# impact, not detection, so forcing either engine on the distributed
# path must reproduce the same digest bit for bit.
for eng in packed scalar; do
    REL_ENG="$(cargo run --release -q --offline -- reliability "${RELIABILITY_ARGS[@]}" \
        --workers 2 --engine "$eng")"
    ENG_DIGEST="$(digest_of "$REL_ENG")"
    [[ "$ENG_DIGEST" == "$LOCAL_DIGEST" ]] \
        || { echo "reliability digest drifted under --engine $eng: $ENG_DIGEST vs $LOCAL_DIGEST"; exit 1; }
done

step "determinism — double-run: fresh processes reproduce bytes exactly"
# The property the L-DET passes guard, checked dynamically: two cold
# processes over the same seeded spec must emit byte-identical artifacts.
cargo run --release -q --offline -- generate "$ANALYZE_TMP/obs.snn" --preset fast \
    --out "$ANALYZE_TMP/det1.events" > /dev/null
cargo run --release -q --offline -- generate "$ANALYZE_TMP/obs.snn" --preset fast \
    --out "$ANALYZE_TMP/det2.events" > /dev/null
cmp -s "$ANALYZE_TMP/det1.events" "$ANALYZE_TMP/det2.events" \
    || { echo "seeded generate differs between two fresh processes"; exit 1; }
REL_RERUN="$(cargo run --release -q --offline -- reliability "${RELIABILITY_ARGS[@]}")"
diff <(printf '%s' "$REL_LOCAL") <(printf '%s' "$REL_RERUN") > /dev/null \
    || { echo "reliability JSON differs between two fresh processes"; exit 1; }

step "cargo test (debug, overflow-checks) — arms the numeric sanitizer and lock-order detector"
RUSTFLAGS="-C overflow-checks=on" cargo test -q --offline --workspace

step "equivalence-class property test runs under the debug sanitizer pass"
RUSTFLAGS="-C overflow-checks=on" cargo test -q --offline -p snn-analyze --test soundness

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo; echo "CI passed."
