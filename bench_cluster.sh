#!/usr/bin/env bash
# Distributed-campaign benchmark: runs one fixed coverage campaign at 0
# (in-process), 1 and 2 cluster workers over real loopback TCP, gates
# that all three verdict digests are bit-identical, and writes the
# faults/sec and speedup measurements to BENCH_cluster.json — stamped
# with run metadata (git rev, UTC timestamp, preset, host core count)
# and an appended perf-history record per invocation.
#
#   ./bench_cluster.sh [out.json]
#
# When this machine's BENCH_cluster.json exists (gitignored local
# state, refreshed by every passing run) it doubles as the
# perf-regression baseline: the run fails if 2-worker throughput drops
# more than BENCH_MAX_REGRESSION (default 0.15 = 15%) below it, and its
# history is carried forward into the new file.
#
# Runs offline; builds with the vendored dependencies. Metadata is
# gathered here in the shell and passed in as flags so the binary never
# reads clocks or VCS state itself.

set -euo pipefail
cd "$(dirname "$0")"

OUT="${1:-BENCH_cluster.json}"

GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
TIMESTAMP="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
HOST_CORES="$(nproc 2>/dev/null || echo 1)"

BASELINE_ARGS=()
if [[ -f BENCH_cluster.json ]]; then
    BASELINE_ARGS=(--baseline BENCH_cluster.json
                   --max-regression "${BENCH_MAX_REGRESSION:-0.15}")
fi

# BENCH_ENGINE=packed|scalar|auto selects the execution engine (default
# auto); the resolved engine is stamped into the meta block and every
# history record.
ENGINE_ARGS=()
if [[ -n "${BENCH_ENGINE:-}" ]]; then
    ENGINE_ARGS=(--engine "$BENCH_ENGINE")
fi

cargo build --release --offline --quiet
./target/release/snn-mtfc cluster-bench --out "$OUT" \
    --git-rev "$GIT_REV" --timestamp "$TIMESTAMP" --host-cores "$HOST_CORES" \
    "${BASELINE_ARGS[@]}" "${ENGINE_ARGS[@]}"
