#!/usr/bin/env bash
# Distributed-campaign benchmark: runs one fixed coverage campaign at 0
# (in-process), 1 and 2 cluster workers over real loopback TCP, gates
# that all three verdict digests are bit-identical, and writes the
# faults/sec and speedup measurements to BENCH_cluster.json.
#
#   ./bench_cluster.sh [out.json]
#
# Runs offline; builds with the vendored dependencies.

set -euo pipefail
cd "$(dirname "$0")"

OUT="${1:-BENCH_cluster.json}"

cargo build --release --offline --quiet
./target/release/snn-mtfc cluster-bench --out "$OUT"
