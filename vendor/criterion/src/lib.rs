//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! Provides the `criterion_group!`/`criterion_main!` harness shape and a
//! simple measured runner: each benchmark is warmed up, then timed over a
//! batch of iterations, and the mean per-iteration wall time is printed.
//! No statistics, plots or HTML reports — just comparable numbers from
//! `cargo bench` in an offline environment.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Per-iteration timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the batch size chosen by the runner.
    pub fn iter<F, R>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Mutable benchmark-group builder mirroring criterion's `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many measured samples to take (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; no cleanup needed).
    pub fn finish(self) {}
}

/// Benchmark driver; one per `criterion_group!` invocation.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Runs one stand-alone named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), 10, &mut f);
        self
    }
}

fn run_benchmark<F>(id: &str, samples: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate the batch size so one sample takes ≳10 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    // Measured samples.
    let mut total = 0.0f64;
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(2) {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let t = b.elapsed.as_secs_f64() / iters as f64;
        total += t;
        best = best.min(t);
    }
    let mean = total / samples.max(2) as f64;
    println!(
        "{id:<50} mean {:>12} best {:>12} ({} iters/sample)",
        format_time(mean),
        format_time(best),
        iters
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| black_box(1 + 1));
        });
        group.finish();
        assert!(runs >= 3, "warmup + 2 samples expected, got {runs}");
    }

    #[test]
    fn time_formatting_scales() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(0.002), "2.000 ms");
        assert_eq!(format_time(2e-6), "2.000 µs");
        assert_eq!(format_time(2e-9), "2.0 ns");
    }
}
