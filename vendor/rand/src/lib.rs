//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` entry points the workspace actually uses are
//! re-implemented here on top of a xoshiro256++ generator. The surface is
//! API-compatible with `rand` 0.8 for those entry points ([`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], [`seq::SliceRandom`]); the generated streams differ
//! from upstream `rand`, which only affects which reproducible pseudo-random
//! numbers a given seed maps to, not any statistical property relied on.

pub mod rngs;
pub mod seq;

use std::ops::Range;

/// Low-level generator interface: a source of uniform random `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Values samplable uniformly from the type's "standard" distribution
/// (`[0, 1)` for floats, the full range for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from `rng`, uniform over the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 per draw for the spans this
                // workspace uses; accepted for simplicity.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniform over `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn reborrowed_rng_is_usable() {
        fn takes_impl(mut rng: impl Rng) -> f32 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = takes_impl(&mut rng);
        let _: f32 = rng.gen();
    }

    #[test]
    fn mean_of_unit_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| f64::sample_standard(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
