//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seedable generator: xoshiro256++ with
/// SplitMix64 seed expansion.
///
/// Upstream `rand`'s `StdRng` is a ChaCha block cipher; this offline stand-in
/// trades cryptographic strength (not needed for simulation workloads) for
/// zero dependencies, while keeping the same construct-from-seed API and
/// full 2^256-state period characteristics adequate for statistical use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_short_cycles() {
        let mut rng = StdRng::seed_from_u64(0);
        let first = rng.next_u64();
        for _ in 0..10_000 {
            assert_ne!(rng.next_u64(), first, "unexpectedly short cycle");
        }
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = StdRng::seed_from_u64(5);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
