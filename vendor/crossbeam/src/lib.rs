//! Offline drop-in subset of the `crossbeam` 0.8 API.
//!
//! Only [`thread::scope`] is provided — the one entry point this workspace
//! uses — implemented directly on `std::thread::scope` (stable since Rust
//! 1.63, which post-dates crossbeam's scoped-thread design).

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention.

    use std::any::Any;

    /// Error payload of a panicked scoped thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// Handle to a scope in which borrowing threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to `'env`; the closure receives the scope
        /// so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Creates a scope in which spawned threads may borrow from the
    /// enclosing stack frame. All threads are joined before `scope`
    /// returns; the `Result` mirrors crossbeam's signature and is always
    /// `Ok` here (a panicking child that was not joined re-raises on scope
    /// exit, as with `std::thread::scope`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1, 2, 3, 4];
            let sum: i32 = super::scope(|s| {
                let handles: Vec<_> =
                    data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<i32>())).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(sum, 10);
        }

        #[test]
        fn child_panic_surfaces_through_join() {
            super::scope(|s| {
                let h = s.spawn(|_| panic!("boom"));
                assert!(h.join().is_err());
            })
            .unwrap();
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let n = super::scope(|s| {
                s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2).join().unwrap()
            })
            .unwrap();
            assert_eq!(n, 42);
        }
    }
}
