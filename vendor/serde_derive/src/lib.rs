//! `#[derive(Serialize, Deserialize)]` for the workspace's offline serde
//! subset.
//!
//! Implemented directly on `proc_macro` (no `syn`/`quote`, which are
//! unavailable offline): a small token-level parser extracts the item's
//! shape — struct field names, tuple arities, enum variants — and the
//! impls are emitted as source text. Supported shapes cover everything the
//! workspace derives on:
//!
//! * structs with named fields, tuple structs (newtype and wider), units;
//! * enums with unit, newtype, tuple and struct variants
//!   (externally-tagged representation, as upstream serde's default);
//! * no generic parameters (none of the workspace's serialized types are
//!   generic — a clear compile error is produced if one appears).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the workspace-serde `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the workspace-serde `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Shape) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(shape) => gen(&shape).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error parses"),
    }
}

// ---- item parsing --------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = ident_at(&tokens, &mut i).ok_or("expected `struct` or `enum`")?;
    let name = ident_at(&tokens, &mut i).ok_or("expected item name")?;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive stub: generic type `{name}` is not supported; serialize a concrete type"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Shape::NamedStruct { name, fields: parse_named_fields(g.stream())? })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::TupleStruct { name, arity: count_tuple_fields(g.stream()) })
            }
            _ => Ok(Shape::UnitStruct { name }),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Shape::Enum { name, variants: parse_variants(g.stream())? })
            }
            _ => Err(format!("enum `{name}` has no body")),
        },
        other => Err(format!("cannot derive serde impls for `{other}` items")),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]`
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` etc.
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn ident_at(tokens: &[TokenTree], i: &mut usize) -> Option<String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Some(id.to_string())
        }
        _ => None,
    }
}

/// Extracts field names from a named-fields body, skipping each field's
/// type (commas inside angle brackets do not split fields).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = ident_at(&tokens, &mut i)
            .ok_or_else(|| format!("expected field name, found {:?}", tokens[i].to_string()))?;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        skip_type(&tokens, &mut i);
        fields.push(field);
        // Consume the separating comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Advances past one type expression: everything up to the next comma at
/// angle-bracket depth zero.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        arity += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, &mut i)
            .ok_or_else(|| format!("expected variant name, found {:?}", tokens[i].to_string()))?;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---- code generation -----------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::serialize(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: String =
                (0..*arity).map(|k| format!("::serde::Serialize::serialize(&self.{k}),")).collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(::std::vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Null\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from({vn:?})),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Serialize::serialize(f0))]),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binders: Vec<String> =
                                (0..*arity).map(|k| format!("f{k}")).collect();
                            let items: String = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Seq(::std::vec![{items}]))]),",
                                binders.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::serialize({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Map(::std::vec![{entries}]))]),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(m, {f:?}, {name:?})?,"))
                .collect();
            format!(
                "let m = value.as_map({name:?})?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(value)?))")
        }
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|k| format!("::serde::Deserialize::deserialize(&s[{k}])?,"))
                .collect();
            format!(
                "let s = value.as_seq({name:?})?;\n\
                 if s.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"{name}: expected {arity} elements, got {{}}\", s.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))"
            )
        }
        Shape::UnitStruct { name } => {
            format!("::std::result::Result::Ok({name})")
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => ::std::result::Result::Ok({name}::{}),", v.name, v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    let ctx = format!("{name}::{vn}");
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{vn:?} => {{\n\
                                 if !inner.is_null() {{\n\
                                     return ::std::result::Result::Err(::serde::Error::msg(\
                                         ::std::format!(\"{ctx} carries no data\")));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vn})\n\
                             }}"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(inner)?)),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let items: String = (0..*arity)
                                .map(|k| format!("::serde::Deserialize::deserialize(&s[{k}])?,"))
                                .collect();
                            format!(
                                "{vn:?} => {{\n\
                                     let s = inner.as_seq({ctx:?})?;\n\
                                     if s.len() != {arity} {{\n\
                                         return ::std::result::Result::Err(::serde::Error::msg(\
                                             ::std::format!(\"{ctx}: expected {arity} elements, got {{}}\", s.len())));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vn}({items}))\n\
                                 }}"
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(fm, {f:?}, {ctx:?})?,"))
                                .collect();
                            format!(
                                "{vn:?} => {{\n\
                                     let fm = inner.as_map({ctx:?})?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                                 }}"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(tag) = value {{\n\
                     return match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::msg(\
                             ::std::format!(\"unknown {name} unit variant {{other:?}}\"))),\n\
                     }};\n\
                 }}\n\
                 let m = value.as_map({name:?})?;\n\
                 if m.len() != 1 {{\n\
                     return ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"{name}: expected single-key variant object, got {{}} keys\", m.len())));\n\
                 }}\n\
                 let (tag, inner) = (&m[0].0, &m[0].1);\n\
                 match tag.as_str() {{\n\
                     {tagged_arms}\n\
                     other => ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    let name = match shape {
        Shape::NamedStruct { name, .. }
        | Shape::TupleStruct { name, .. }
        | Shape::UnitStruct { name }
        | Shape::Enum { name, .. } => name,
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
