use crate::Error;

/// The JSON data model: the intermediate representation every
/// [`Serialize`](crate::Serialize) / [`Deserialize`](crate::Deserialize)
/// implementation goes through.
///
/// Maps preserve insertion order (they are association lists, not hash
/// maps) so serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number. Integers round-trip exactly up to 2^53.
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean, or an error naming `ctx`.
    pub fn as_bool(&self, ctx: &str) -> Result<bool, Error> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("{ctx}: expected bool, got {}", other.kind()))),
        }
    }

    /// The number, or an error naming `ctx`.
    pub fn as_num(&self, ctx: &str) -> Result<f64, Error> {
        match self {
            Value::Num(n) => Ok(*n),
            // Non-finite floats serialize as null (JSON has no NaN/Inf).
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!("{ctx}: expected number, got {}", other.kind()))),
        }
    }

    /// The string, or an error naming `ctx`.
    pub fn as_str(&self, ctx: &str) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::msg(format!("{ctx}: expected string, got {}", other.kind()))),
        }
    }

    /// The array elements, or an error naming `ctx`.
    pub fn as_seq(&self, ctx: &str) -> Result<&[Value], Error> {
        match self {
            Value::Seq(s) => Ok(s),
            other => Err(Error::msg(format!("{ctx}: expected array, got {}", other.kind()))),
        }
    }

    /// The object entries, or an error naming `ctx`.
    pub fn as_map(&self, ctx: &str) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(m) => Ok(m),
            other => Err(Error::msg(format!("{ctx}: expected object, got {}", other.kind()))),
        }
    }

    /// Member lookup on an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable name of the value's JSON kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}
