//! [`Serialize`]/[`Deserialize`] implementations for std types.

use crate::{Deserialize, Error, Serialize, Value};
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::time::Duration;

// ---- numbers -------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value.as_num(stringify!($t))?;
                if n.fract() != 0.0 || n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::msg(format!(
                        concat!("number {} does not fit ", stringify!($t)), n
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        if self.is_finite() {
            Value::Num(*self as f64)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.as_num("f32")? as f32)
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        if self.is_finite() {
            Value::Num(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_num("f64")
    }
}

// ---- scalars and strings -------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_bool("bool")
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value.as_str("char")?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.as_str("String")?.to_string())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---- references and containers -------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize(value)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            Ok(Some(T::deserialize(value)?))
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_seq("Vec")?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$n.serialize()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let s = value.as_seq("tuple")?;
                let want = [$($n),+].len();
                if s.len() != want {
                    return Err(Error::msg(format!(
                        "expected {want}-tuple, got array of {}", s.len()
                    )));
                }
                Ok(($($t::deserialize(&s[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---- maps ----------------------------------------------------------------

/// Types usable as JSON object keys (rendered to/from strings).
pub trait MapKey: Sized {
    /// Key → JSON object member name.
    fn to_key(&self) -> String;
    /// JSON object member name → key.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|e| {
                    Error::msg(format!("bad {} map key {key:?}: {e}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        // Sort by rendered key for deterministic output.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.serialize())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_map("HashMap")?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.serialize())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_map("BTreeMap")?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

// ---- time ----------------------------------------------------------------

impl Serialize for Duration {
    /// serde's representation: `{"secs": u64, "nanos": u32}`.
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::Num(self.as_secs() as f64)),
            ("nanos".to_string(), Value::Num(self.subsec_nanos() as f64)),
        ])
    }
}

impl Deserialize for Duration {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let secs: u64 = crate::field(value.as_map("Duration")?, "secs", "Duration")?;
        let nanos: u32 = crate::field(value.as_map("Duration")?, "nanos", "Duration")?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let enc = v.serialize();
        assert_eq!(T::deserialize(&enc).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(42usize);
        round_trip(-7i32);
        round_trip(1.5f32);
        round_trip(true);
        round_trip("hello".to_string());
        round_trip('x');
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Some(3.0f64));
        round_trip(Option::<u8>::None);
        round_trip((1usize, "a".to_string()));
        round_trip(Box::new(9u64));
        let mut hm: HashMap<usize, Vec<bool>> = HashMap::new();
        hm.insert(3, vec![true, false]);
        hm.insert(1, vec![]);
        round_trip(hm);
        let mut bt: BTreeMap<String, u8> = BTreeMap::new();
        bt.insert("k".into(), 1);
        round_trip(bt);
    }

    #[test]
    fn duration_round_trip() {
        round_trip(Duration::new(3, 500_000_000));
        round_trip(Duration::ZERO);
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        assert_eq!(f32::NAN.serialize(), Value::Null);
        assert!(f32::deserialize(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn int_range_checks() {
        assert!(u8::deserialize(&Value::Num(300.0)).is_err());
        assert!(u8::deserialize(&Value::Num(1.5)).is_err());
        assert!(usize::deserialize(&Value::Str("7".into())).is_err());
    }
}
