//! JSON encoding of the [`Value`] data model.
//!
//! Strict, allocation-light, and dependency-free. Numbers are emitted via
//! Rust's shortest-round-trip float formatting, with integral values
//! printed without a fractional part so object keys and ids stay readable.

use crate::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serializes `value` as compact single-line JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    out
}

/// Serializes `value` as indented multi-line JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    out.push('\n');
    out
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns a descriptive [`Error`] on malformed JSON, trailing garbage, or
/// a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::deserialize(&parse(text)?)
}

/// Parses JSON text into the raw [`Value`] tree.
///
/// # Errors
///
/// Returns a descriptive [`Error`] on malformed JSON or trailing garbage.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("JSON error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for non-BMP chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(self.err(&format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-12", "3.5", "1e3", "\"hi\""] {
            let v = parse(text).unwrap();
            let back = parse(&to_string(&v)).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"a": [1, 2.5, null], "b": {"c": "x\ny", "d": []}}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
        assert_eq!(parse(&to_string_pretty(&v)).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_seq("a").unwrap().len(), 3);
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\cAé😀""#).unwrap();
        assert_eq!(v, Value::Str("a\"b\\cAé😀".to_string()));
        // Control characters are escaped on output.
        assert_eq!(to_string(&Value::Str("a\u{1}b".into())), "\"a\\u0001b\"");
    }

    #[test]
    fn rejects_malformed_input() {
        for text in ["", "{", "[1,", "nul", "\"abc", "{\"a\" 1}", "1 2", "{'a':1}"] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(to_string(&Value::Num(3.0)), "3");
        assert_eq!(to_string(&Value::Num(3.25)), "3.25");
        assert_eq!(to_string(&Value::Num(-0.5)), "-0.5");
    }

    #[test]
    fn f32_precision_survives_round_trip() {
        let x = 0.1f32;
        let text = to_string(&crate::Serialize::serialize(&x));
        let back: f32 = crate::json::from_str(&text).unwrap();
        assert_eq!(back, x);
    }
}
