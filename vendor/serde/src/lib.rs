//! Offline drop-in subset of the `serde` API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the serialization surface the workspace uses under the same crate and
//! trait names. The design is deliberately simpler than upstream serde's
//! zero-copy visitor architecture: serialization goes through an owned
//! [`Value`] tree (the JSON data model), which is plenty for model files,
//! job stores and wire protocols at this workspace's scale.
//!
//! * [`Serialize`] / [`Deserialize`] — implemented for primitives,
//!   std containers, tuples, `Duration`, and derivable for structs and
//!   enums via `#[derive(Serialize, Deserialize)]` (the `derive` feature).
//! * [`json`] — compact/pretty JSON encoding of any `Serialize` type and
//!   strict parsing back ([`json::to_string`], [`json::from_str`]).
//!
//! Enum representation matches serde's externally-tagged default
//! (`"Variant"` / `{"Variant": …}`), and `Option` maps to `null`/value, so
//! files written by a real-serde build of this code would parse here.

mod impls;
pub mod json;
mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Error produced when a [`Value`] does not match the shape a type
/// expects, or when JSON text is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from `value`, or explains why its shape is wrong.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Looks up `field` in a struct's map representation. Missing fields read
/// as [`Value::Null`], so `Option` fields tolerate omission while any
/// other type reports a descriptive error.
pub fn field<T: Deserialize>(map: &[(String, Value)], field: &str, ty: &str) -> Result<T, Error> {
    let v = map.iter().find(|(k, _)| k == field).map(|(_, v)| v).unwrap_or(&Value::Null);
    T::deserialize(v).map_err(|e| Error::msg(format!("{ty}.{field}: {e}")))
}
