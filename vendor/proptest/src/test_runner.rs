//! Test-runner configuration.

/// How many sampled cases each property test executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Number of random cases per test (upstream default: 256).
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Upstream proptest also defaults to 256.
        Self { cases: 256 }
    }
}
