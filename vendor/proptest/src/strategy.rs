//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree or shrinking: a
/// strategy is just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.sample_value(rng))
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy producing one fixed value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample_value(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn tuple_strategies_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let (a, b) = (0usize..4, -1.0f32..1.0).sample_value(&mut rng);
        assert!(a < 4);
        assert!((-1.0..1.0).contains(&b));
        assert_eq!(Just(9).sample_value(&mut rng), 9);
    }
}
