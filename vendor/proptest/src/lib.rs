//! Offline drop-in subset of the `proptest` API.
//!
//! Property tests in this workspace use ranges and `collection::vec` as
//! strategies inside the [`proptest!`] macro, with `prop_assert!` /
//! `prop_assert_eq!` assertions and an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header. This crate
//! reimplements exactly that surface on a deterministic random-sampling
//! runner (no shrinking): each test function runs `cases` random samples
//! drawn from a seed derived from the test name, so failures are
//! reproducible run-to-run.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod bool {
    //! Strategies for `bool` (`proptest::bool::ANY`).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// Strategy type of [`ANY`]: a fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample_value(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Seeds the per-test generator from the test's name so every test draws
/// an independent, stable stream.
#[doc(hidden)]
pub fn seed_for(test_name: &str, case: u64) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `cases` sampled executions of a property-test body.
///
/// Declared like upstream proptest:
///
/// ```
/// proptest::proptest! {
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         proptest::prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (@config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                        $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample_value(&$strat, &mut rng);
                    )+
                    // Bodies may `return Ok(())` early like upstream
                    // proptest, so run them in a Result-returning closure.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("{msg}");
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Property assertion; plain `assert!` semantics in this offline subset.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; plain `assert_eq!` semantics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion; plain `assert_ne!` semantics.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_produce_in_bounds_values(x in 3usize..10, y in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_is_accepted(v in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 5));
        }
    }

    #[test]
    fn seeds_differ_between_tests_and_cases() {
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("b", 0));
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("a", 1));
        assert_eq!(crate::seed_for("a", 3), crate::seed_for("a", 3));
    }
}
