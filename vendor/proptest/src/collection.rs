//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Strategy for `Vec<T>` with a random length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors whose elements come from `element` and whose length
/// is uniform over `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.sample_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_and_elements_respect_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = vec(1usize..4, 2..7);
        for _ in 0..200 {
            let v = strat.sample_value(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| (1..4).contains(&x)));
        }
    }
}
