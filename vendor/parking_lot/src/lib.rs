//! Offline drop-in subset of the `parking_lot` 0.12 API.
//!
//! [`Mutex`], [`RwLock`] and [`Condvar`] with `parking_lot`'s
//! poison-free calling convention (`lock()` returns the guard directly),
//! implemented over the `std::sync` primitives. Poisoned std locks are
//! recovered transparently: a panic while holding a lock does not poison
//! it for other threads, matching `parking_lot` semantics.
//!
//! # Lock-order detection (debug builds)
//!
//! Beyond the upstream API, this stand-in adds a lightweight lockdep:
//! locks built with [`Mutex::named`] / [`RwLock::named`] participate in a
//! runtime acquisition-order check when `debug_assertions` are on. The
//! program registers its global order once via
//! [`lock_order::register`]; acquiring a registered lock while holding
//! one that the order places *after* it panics immediately — on the
//! first inverted acquisition, no actual deadlock required — naming both
//! locks and both acquisition sites. Release builds compile the
//! bookkeeping out entirely; unnamed locks are never tracked.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Runtime lock-order (deadlock-potential) detection for named locks.
///
/// The check is rank-based: [`register`] fixes a total order of lock
/// names, and every thread keeps a stack of the named locks it currently
/// holds. Acquiring rank *r* while holding any rank *> r* is an
/// inversion — two threads doing it in opposite orders is the classic
/// ABBA deadlock — and panics deterministically on the first occurrence,
/// which makes single-run tests able to prove the discipline. Names not
/// in the registered order are tracked (so they appear in reports) but
/// not checked.
pub mod lock_order {
    #[cfg(debug_assertions)]
    use std::cell::RefCell;
    #[cfg(debug_assertions)]
    use std::panic::Location;
    #[cfg(debug_assertions)]
    use std::sync::OnceLock;

    #[cfg(debug_assertions)]
    static ORDER: OnceLock<Vec<&'static str>> = OnceLock::new();

    /// Registers the program-wide acquisition order: earlier names must
    /// be acquired before later ones. First registration wins; calling
    /// again with the same list is a no-op, which lets every entry point
    /// register defensively.
    pub fn register(order: &[&'static str]) {
        #[cfg(debug_assertions)]
        {
            let _ = ORDER.set(order.to_vec());
        }
        #[cfg(not(debug_assertions))]
        let _ = order;
    }

    #[cfg(debug_assertions)]
    fn rank(name: &str) -> Option<usize> {
        ORDER.get().and_then(|o| o.iter().position(|n| *n == name))
    }

    #[cfg(debug_assertions)]
    struct Held {
        lock_id: usize,
        name: &'static str,
        rank: Option<usize>,
        site: &'static Location<'static>,
    }

    #[cfg(debug_assertions)]
    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    /// Records an acquisition and panics on rank inversion.
    #[cfg(debug_assertions)]
    pub(crate) fn on_acquire(
        lock_id: usize,
        name: Option<&'static str>,
        site: &'static Location<'static>,
    ) {
        let Some(name) = name else { return };
        let new_rank = rank(name);
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(new_rank) = new_rank {
                for h in held.iter() {
                    let Some(held_rank) = h.rank else { continue };
                    if held_rank > new_rank && h.lock_id != lock_id {
                        let violation = format!(
                            "lock-order violation: acquiring \"{name}\" (rank {new_rank}) at \
                             {site} while holding \"{}\" (rank {held_rank}) acquired at {} — \
                             the registered order requires \"{name}\" to be taken first",
                            h.name, h.site
                        );
                        drop(held);
                        panic!("{violation}");
                    }
                }
            }
            held.push(Held { lock_id, name, rank: new_rank, site });
        });
    }

    /// Forgets the most recent acquisition of `lock_id` (guards may drop
    /// out of LIFO order, so removal is by identity, not by position).
    #[cfg(debug_assertions)]
    pub(crate) fn on_release(lock_id: usize, name: Option<&'static str>) {
        if name.is_none() {
            return;
        }
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|h| h.lock_id == lock_id) {
                held.remove(pos);
            }
        });
    }

    /// Number of named locks the current thread holds (test support).
    #[cfg(debug_assertions)]
    pub fn held_count() -> usize {
        HELD.with(|held| held.borrow().len())
    }
}

/// The named-lock bookkeeping a guard needs to unwind its acquisition.
#[cfg(debug_assertions)]
#[derive(Clone, Copy)]
struct Trace {
    lock_id: usize,
    name: Option<&'static str>,
}

/// A mutual-exclusion lock; `lock()` never fails.
pub struct Mutex<T: ?Sized> {
    // Only read by the debug-build lock-order detector.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    name: Option<&'static str>,
    inner: std::sync::Mutex<T>,
}

/// RAII guard of a locked [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    #[cfg(debug_assertions)]
    trace: Trace,
}

impl<T> Mutex<T> {
    /// Creates the mutex (anonymous: exempt from lock-order tracking).
    pub const fn new(value: T) -> Self {
        Self { name: None, inner: std::sync::Mutex::new(value) }
    }

    /// Creates a named mutex that participates in debug-build
    /// lock-order detection (see [`lock_order`]).
    pub const fn named(name: &'static str, value: T) -> Self {
        Self { name: Some(name), inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn lock_id(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Acquires the lock, blocking until available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        lock_order::on_acquire(self.lock_id(), self.name, std::panic::Location::caller());
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            #[cfg(debug_assertions)]
            trace: Trace { lock_id: self.lock_id(), name: self.name },
        }
    }

    /// Tries to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        lock_order::on_acquire(self.lock_id(), self.name, std::panic::Location::caller());
        Some(MutexGuard {
            inner: Some(inner),
            #[cfg(debug_assertions)]
            trace: Trace { lock_id: self.lock_id(), name: self.name },
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant")
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        lock_order::on_release(self.trace.lock_id, self.trace.name);
    }
}

/// A reader–writer lock; `read()`/`write()` never fail.
pub struct RwLock<T: ?Sized> {
    // Only read by the debug-build lock-order detector.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    name: Option<&'static str>,
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    trace: Trace,
}

/// Exclusive-access guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    trace: Trace,
}

impl<T> RwLock<T> {
    /// Creates the lock (anonymous: exempt from lock-order tracking).
    pub const fn new(value: T) -> Self {
        Self { name: None, inner: std::sync::RwLock::new(value) }
    }

    /// Creates a named lock that participates in debug-build lock-order
    /// detection (see [`lock_order`]). Both read and write acquisitions
    /// are checked.
    pub const fn named(name: &'static str, value: T) -> Self {
        Self { name: Some(name), inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn lock_id(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Acquires shared access.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        lock_order::on_acquire(self.lock_id(), self.name, std::panic::Location::caller());
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            #[cfg(debug_assertions)]
            trace: Trace { lock_id: self.lock_id(), name: self.name },
        }
    }

    /// Acquires exclusive access.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        lock_order::on_acquire(self.lock_id(), self.name, std::panic::Location::caller());
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            #[cfg(debug_assertions)]
            trace: Trace { lock_id: self.lock_id(), name: self.name },
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        lock_order::on_release(self.trace.lock_id, self.trace.name);
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        lock_order::on_release(self.trace.lock_id, self.trace.name);
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates the condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, atomically releasing the guard's lock.
    /// The lock-order tracker sees the wait as a release followed by a
    /// fresh acquisition, exactly matching the real blocking behaviour.
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard invariant");
        #[cfg(debug_assertions)]
        lock_order::on_release(guard.trace.lock_id, guard.trace.name);
        let reacquired = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        #[cfg(debug_assertions)]
        lock_order::on_acquire(
            guard.trace.lock_id,
            guard.trace.name,
            std::panic::Location::caller(),
        );
        guard.inner = Some(reacquired);
    }

    /// Blocks until notified or `timeout` elapses.
    #[track_caller]
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard invariant");
        #[cfg(debug_assertions)]
        lock_order::on_release(guard.trace.lock_id, guard.trace.name);
        let (g, r) =
            self.inner.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        #[cfg(debug_assertions)]
        lock_order::on_acquire(
            guard.trace.lock_id,
            guard.trace.name,
            std::panic::Location::caller(),
        );
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: r.timed_out() }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_for(&mut done, Duration::from_secs(5));
            assert!(!r.timed_out(), "signal never arrived");
        }
    }

    #[test]
    fn panic_while_locked_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must remain usable");
    }

    // The lock-order tests below all register the same order (OnceLock:
    // first write wins process-wide) and run in fresh threads so the
    // thread-local held stack starts empty.
    #[cfg(debug_assertions)]
    const TEST_ORDER: &[&str] = &["test.outer", "test.middle", "test.inner"];

    #[cfg(debug_assertions)]
    #[test]
    fn lock_order_in_order_acquisition_is_clean() {
        lock_order::register(TEST_ORDER);
        std::thread::spawn(|| {
            let outer = Mutex::named("test.outer", 1);
            let inner = Mutex::named("test.inner", 2);
            let a = outer.lock();
            let b = inner.lock();
            assert_eq!(*a + *b, 3);
            assert_eq!(lock_order::held_count(), 2);
            drop((a, b));
            assert_eq!(lock_order::held_count(), 0);
        })
        .join()
        .expect("ordered acquisition must not panic");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn lock_order_inversion_panics_with_both_sites() {
        lock_order::register(TEST_ORDER);
        let err = std::thread::spawn(|| {
            let outer = Mutex::named("test.outer", 1);
            let inner = Mutex::named("test.inner", 2);
            let _b = inner.lock();
            let _a = outer.lock(); // inversion: outer ranks before inner
        })
        .join()
        .expect_err("inverted acquisition must panic");
        let msg =
            err.downcast_ref::<String>().cloned().expect("panic payload is the violation report");
        assert!(msg.contains("lock-order violation"), "{msg}");
        assert!(msg.contains("test.outer") && msg.contains("test.inner"), "{msg}");
        // Both acquisition sites are file:line references into this file.
        assert_eq!(msg.matches("lib.rs:").count(), 2, "{msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn lock_order_release_order_is_tracked_by_identity() {
        lock_order::register(TEST_ORDER);
        std::thread::spawn(|| {
            let outer = Mutex::named("test.outer", 1);
            let inner = Mutex::named("test.inner", 2);
            let a = outer.lock();
            let b = inner.lock();
            drop(a); // non-LIFO release
            assert_eq!(lock_order::held_count(), 1);
            drop(b);
            assert_eq!(lock_order::held_count(), 0);
            // Re-acquiring in order afterwards is still clean.
            let _a = outer.lock();
            let _b = inner.lock();
        })
        .join()
        .expect("non-LIFO release must not corrupt the held stack");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn lock_order_condvar_wait_releases_the_lock() {
        lock_order::register(TEST_ORDER);
        std::thread::spawn(|| {
            let pair = Arc::new((Mutex::named("test.middle", false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (m, cv) = &*p2;
                *m.lock() = true;
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut done = m.lock();
            while !*done {
                let r = cv.wait_for(&mut done, Duration::from_secs(5));
                assert!(!r.timed_out(), "signal never arrived");
            }
            // The reacquired guard is tracked exactly once.
            assert_eq!(lock_order::held_count(), 1);
            drop(done);
            assert_eq!(lock_order::held_count(), 0);
        })
        .join()
        .expect("condvar wait must keep the held stack balanced");
    }
}
