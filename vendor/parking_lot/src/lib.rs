//! Offline drop-in subset of the `parking_lot` 0.12 API.
//!
//! [`Mutex`], [`RwLock`] and [`Condvar`] with `parking_lot`'s
//! poison-free calling convention (`lock()` returns the guard directly),
//! implemented over the `std::sync` primitives. Poisoned std locks are
//! recovered transparently: a panic while holding a lock does not poison
//! it for other threads, matching `parking_lot` semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock; `lock()` never fails.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard of a locked [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant")
    }
}

/// A reader–writer lock; `read()`/`write()` never fail.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates the condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, atomically releasing the guard's lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard invariant");
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard invariant");
        let (g, r) =
            self.inner.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: r.timed_out() }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_for(&mut done, Duration::from_secs(5));
            assert!(!r.timed_out(), "signal never arrived");
        }
    }

    #[test]
    fn panic_while_locked_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must remain usable");
    }
}
