//! `snn-mtfc` — command-line driver for the test-generation flow.
//!
//! ```text
//! snn-mtfc new      --input 2x16x16 --arch pool:2,dense:48,dense:10 --out model.snn [--seed N]
//! snn-mtfc info     model.snn
//! snn-mtfc generate model.snn --out test.events [--preset fast|repro|paper] [--seed N]
//! snn-mtfc verify   model.snn test.events
//! ```
//!
//! `new` creates a (randomly initialized) model file so the rest of the
//! flow can be exercised immediately; real flows train the network first
//! (see `examples/post_manufacturing.rs`) and save it with
//! [`snn_mtfc::model::Network::save`].

use rand::SeedableRng;
use snn_mtfc::faults::{FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_mtfc::model::{LifParams, Network, NetworkBuilder};
use snn_mtfc::testgen::{parse_events, TestGenConfig, TestGenerator};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("new") => cmd_new(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "snn-mtfc — minimum-time maximum-fault-coverage testing of SNNs\n\n\
         USAGE:\n  \
         snn-mtfc new      --input <CxHxW|N> --arch <spec> --out <model.snn> [--seed N]\n  \
         snn-mtfc info     <model.snn>\n  \
         snn-mtfc generate <model.snn> [--out <test.events>] [--preset fast|repro|paper] [--seed N]\n  \
         snn-mtfc verify   <model.snn> <test.events>\n\n\
         ARCH SPEC (comma-separated stages):\n  \
         dense:<n> | conv:<out_c>:<k>:<stride>:<pad> | pool:<k> | recurrent:<n>\n  \
         e.g. --input 2x16x16 --arch pool:2,dense:48,dense:10"
    );
}

/// Fetches the value following `--flag`, if present.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn positional(args: &[String], index: usize) -> Option<&str> {
    args.iter()
        .filter(|a| !a.starts_with("--"))
        // skip values that directly follow a flag
        .scan(false, |skip, a| {
            let out = if *skip { None } else { Some(a.as_str()) };
            *skip = a.starts_with("--");
            Some(out)
        })
        .flatten()
        .nth(index)
}

fn seed_of(args: &[String]) -> Result<u64, String> {
    match flag(args, "--seed") {
        None => Ok(42),
        Some(s) => s.parse().map_err(|e| format!("bad --seed: {e}")),
    }
}

fn load_model(path: &str) -> Result<Network, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Network::load(&mut BufReader::new(file)).map_err(|e| format!("cannot load {path}: {e}"))
}

fn cmd_new(args: &[String]) -> Result<(), String> {
    let input = flag(args, "--input").ok_or("missing --input")?;
    let arch = flag(args, "--arch").ok_or("missing --arch")?;
    let out = flag(args, "--out").ok_or("missing --out")?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed_of(args)?);

    let dims: Vec<usize> = input
        .split('x')
        .map(|d| d.parse().map_err(|e| format!("bad --input: {e}")))
        .collect::<Result<_, _>>()?;
    let lif = LifParams::default();
    let mut builder = match dims.as_slice() {
        [n] => NetworkBuilder::new(*n, lif),
        [c, h, w] => NetworkBuilder::new_spatial(*c, *h, *w, lif),
        _ => return Err("--input must be N or CxHxW".into()),
    };
    for stage in arch.split(',') {
        let parts: Vec<&str> = stage.split(':').collect();
        let num = |i: usize| -> Result<usize, String> {
            parts
                .get(i)
                .ok_or_else(|| format!("stage `{stage}`: missing field {i}"))?
                .parse()
                .map_err(|e| format!("stage `{stage}`: {e}"))
        };
        builder = match parts[0] {
            "dense" => builder.dense(num(1)?),
            "recurrent" => builder.recurrent(num(1)?),
            "pool" => builder.avg_pool(num(1)?),
            "conv" => builder.conv(num(1)?, num(2)?, num(3)?, num(4)?),
            other => return Err(format!("unknown stage kind `{other}`")),
        };
    }
    let net = builder.build(&mut rng);
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let mut w = BufWriter::new(file);
    net.save(&mut w).map_err(|e| format!("cannot write {out}: {e}"))?;
    w.flush().map_err(|e| e.to_string())?;
    println!("{}", net.summary());
    println!("wrote {out}");
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("missing model path")?;
    let net = load_model(path)?;
    print!("{}", net.summary());
    let universe = FaultUniverse::standard(&net);
    println!(
        "fault universe: {} faults ({} neuron, {} synapse)",
        universe.len(),
        universe.neuron_fault_count(),
        universe.synapse_fault_count()
    );
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("missing model path")?;
    let net = load_model(path)?;
    let cfg = match flag(args, "--preset").unwrap_or("repro") {
        "fast" => TestGenConfig::fast(),
        "repro" => TestGenConfig::repro(),
        "paper" => TestGenConfig::paper(),
        other => return Err(format!("unknown preset `{other}`")),
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed_of(args)?);
    let test = TestGenerator::new(&net, cfg).generate(&mut rng);
    println!(
        "generated {} chunk(s), {} ticks, {:.1}% neurons activated, in {:?}",
        test.chunks.len(),
        test.test_steps(),
        test.activated_fraction() * 100.0,
        test.runtime
    );
    if let Some(out) = flag(args, "--out") {
        let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
        let mut w = BufWriter::new(file);
        test.write_events(&mut w).map_err(|e| e.to_string())?;
        w.flush().map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let model_path = positional(args, 0).ok_or("missing model path")?;
    let test_path = positional(args, 1).ok_or("missing test path")?;
    let net = load_model(model_path)?;
    let mut text = String::new();
    File::open(test_path)
        .map_err(|e| format!("cannot open {test_path}: {e}"))?
        .read_to_string(&mut text)
        .map_err(|e| e.to_string())?;
    let stimulus = parse_events(&text)?;
    if stimulus.shape().dim(1) != net.input_features() {
        return Err(format!(
            "test has {} features, model expects {}",
            stimulus.shape().dim(1),
            net.input_features()
        ));
    }
    let universe = FaultUniverse::standard(&net);
    let sim = FaultSimulator::new(&net, FaultSimConfig::default());
    let outcome = sim.detect(&universe, universe.faults(), std::slice::from_ref(&stimulus));
    println!(
        "fault coverage: {:.2}% ({}/{} detected) in {:?}",
        outcome.fault_coverage() * 100.0,
        outcome.detected_count(),
        universe.len(),
        outcome.elapsed
    );
    Ok(())
}
