//! `snn-mtfc` — command-line driver for the test-generation flow.
//!
//! ```text
//! snn-mtfc new      --input 2x16x16 --arch pool:2,dense:48,dense:10 --out model.snn [--seed N]
//! snn-mtfc info     model.snn
//! snn-mtfc generate model.snn --out test.events [--preset fast|repro|paper] [--seed N]
//!                   [--trace-out trace.jsonl]
//! snn-mtfc verify   model.snn test.events [--engine packed|scalar|auto]
//!                   [--trace-out trace.jsonl]
//! snn-mtfc profile  trace.jsonl [--phases]
//!
//! snn-mtfc reliability (--model model.snn | --synthetic IxH..xO) [--configs N]
//!                   [--weight-ber F] [--neuron-ber F] [--fault-model stuck|bitflip]
//!                   [--mitigation none|range|remap] [--window T0:T1] [--samples N]
//!                   [--steps N] [--rate F] [--seed N] [--workers N] [--json]
//!
//! snn-mtfc serve    --state-dir DIR [--addr HOST:PORT] [--workers N] [--queue N]
//!                   [--metrics-dump metrics.prom] [--expect-workers N]
//!                   [--chunk-size N] [--lease-ms MS] [--trace-out trace.jsonl]
//! snn-mtfc submit   (--model model.snn | --synthetic IxH..xO) [--preset P] [--coverage] [--watch]
//!                   [--engine packed|scalar|auto]
//! snn-mtfc status   [<job>] [--addr HOST:PORT]
//! snn-mtfc watch    <job>   [--addr HOST:PORT] [--json]
//! snn-mtfc metrics          [--addr HOST:PORT]
//! snn-mtfc cancel   <job>   [--addr HOST:PORT]
//! snn-mtfc shutdown         [--addr HOST:PORT]
//!
//! snn-mtfc worker         [--addr HOST:PORT] [--name NAME] [--threads N] [--trace]
//! snn-mtfc cluster-status [--addr HOST:PORT] [--json]
//! snn-mtfc cluster-bench  [--out BENCH_cluster.json] [--synthetic IxH..xO]
//!                         [--preset P] [--seed N] [--chunk-size N]
//!                         [--git-rev REV] [--timestamp TS] [--host-cores N]
//!                         [--baseline FILE] [--max-regression FRAC]
//!                         [--engine packed|scalar|auto]
//! ```
//!
//! `new` creates a (randomly initialized) model file so the rest of the
//! flow can be exercised immediately; real flows train the network first
//! (see `examples/post_manufacturing.rs`) and save it with
//! [`snn_mtfc::model::Network::save`]. The `serve` family talks to the
//! `snn-service` job server (see `DESIGN.md` §8 for the wire protocol).

use rand::SeedableRng;
use snn_mtfc::faults::progress::Progress;
use snn_mtfc::faults::{Engine, FaultSimConfig, FaultUniverse};
use snn_mtfc::model::{LifParams, Network, NetworkBuilder};
use snn_mtfc::obs;
use snn_mtfc::service::{
    Client, JobEvent, JobEventPayload, JobRecord, JobSpec, ModelSpec, Server, ServiceConfig,
};
use snn_mtfc::testgen::{parse_events, runtimes_from_spans, TestGenConfig, TestGenerator};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::process::ExitCode;
use std::sync::Arc;

/// Default server address for the service subcommands.
const DEFAULT_ADDR: &str = "127.0.0.1:7077";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("new") => cmd_new(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("reliability") => cmd_reliability(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("cancel") => cmd_cancel(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("cluster-status") => cmd_cluster_status(&args[1..]),
        Some("cluster-bench") => cmd_cluster_bench(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "snn-mtfc — minimum-time maximum-fault-coverage testing of SNNs\n\n\
         USAGE:\n  \
         snn-mtfc new      --input <CxHxW|N> --arch <spec> --out <model.snn> [--seed N]\n                    \
         [--sparsity FRAC]\n  \
         snn-mtfc info     <model.snn>\n  \
         snn-mtfc analyze  <model.snn> [--format text|json|sarif] [--self-check]\n                    \
         [--timing-faults] [--bitflip-bits 0,3,7] [--min-collapse FRAC]\n                    \
         [--trace-out <trace.jsonl>]\n  \
         snn-mtfc generate <model.snn> [--out <test.events>] [--preset fast|repro|paper] [--seed N]\n                    \
         [--trace-out <trace.jsonl>]\n  \
         snn-mtfc verify   <model.snn> <test.events> [--engine packed|scalar|auto]\n                    \
         [--trace-out <trace.jsonl>]\n  \
         snn-mtfc profile  <trace.jsonl> [--phases]\n\n  \
         snn-mtfc reliability (--model <model.snn> | --synthetic IxH..xO) [--configs N]\n                       \
         [--weight-ber F] [--neuron-ber F] [--fault-model stuck|bitflip]\n                       \
         [--mitigation none|range|remap] [--window T0:T1] [--samples N]\n                       \
         [--steps N] [--rate F] [--seed N] [--workers N] [--json]\n\n  \
         snn-mtfc serve    --state-dir <dir> [--addr host:port] [--workers N] [--queue N]\n                    \
         [--metrics-dump <metrics.prom>] [--expect-workers N]\n                    \
         [--chunk-size N] [--lease-ms MS] [--trace-out <trace.jsonl>]\n  \
         snn-mtfc submit   (--model <model.snn> | --synthetic IxH..xO) [--preset fast|repro|paper]\n                    \
         [--seed N] [--max-iterations N] [--t-limit SECS] [--coverage]\n                    \
         [--threads N] [--engine packed|scalar|auto] [--watch] [--addr host:port]\n                    \
         [--reliability plus the reliability flags above]\n  \
         snn-mtfc status   [<job>] [--addr host:port]\n  \
         snn-mtfc watch    <job>   [--addr host:port] [--json]\n  \
         snn-mtfc metrics          [--addr host:port]\n  \
         snn-mtfc cancel   <job>   [--addr host:port]\n  \
         snn-mtfc shutdown         [--addr host:port]\n\n  \
         snn-mtfc worker         [--addr host:port] [--name NAME] [--threads N] [--trace]\n  \
         snn-mtfc cluster-status [--addr host:port] [--json]\n  \
         snn-mtfc cluster-bench  [--out <BENCH_cluster.json>] [--synthetic IxH..xO]\n                          \
         [--preset fast|repro|paper] [--seed N] [--chunk-size N]\n                          \
         [--git-rev REV] [--timestamp TS] [--host-cores N]\n                          \
         [--baseline FILE] [--max-regression FRAC]\n                          \
         [--engine packed|scalar|auto]\n\n\
         ARCH SPEC (comma-separated stages):\n  \
         dense:<n> | conv:<out_c>:<k>:<stride>:<pad> | pool:<k> | recurrent:<n>\n  \
         e.g. --input 2x16x16 --arch pool:2,dense:48,dense:10\n\n\
         The service commands default to --addr {DEFAULT_ADDR}."
    );
}

/// Fetches the value following `--flag`, if present.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Flags that take no value; anything else starting with `--` consumes the
/// next argument.
const BOOL_FLAGS: &[&str] = &[
    "--coverage",
    "--watch",
    "--help",
    "--self-check",
    "--timing-faults",
    "--json",
    "--reliability",
    "--phases",
    "--trace",
];

fn positional(args: &[String], index: usize) -> Option<&str> {
    args.iter()
        .scan(false, |skip_value, a| {
            if *skip_value {
                *skip_value = false;
                Some(None)
            } else if a.starts_with("--") {
                *skip_value = !BOOL_FLAGS.contains(&a.as_str());
                Some(None)
            } else {
                Some(Some(a.as_str()))
            }
        })
        .flatten()
        .nth(index)
}

/// Runs `body` with a fresh global trace collector installed, restoring
/// the uninstrumented state afterwards. Returns the body's result and
/// the collector (for span summaries and `--trace-out`).
fn with_trace<T>(
    body: impl FnOnce() -> Result<T, String>,
) -> (Result<T, String>, Arc<obs::Collector>) {
    let collector = Arc::new(obs::Collector::new());
    obs::trace::install(Arc::clone(&collector));
    let result = body();
    obs::trace::uninstall();
    (result, collector)
}

/// Writes the collected trace as JSONL to `--trace-out`, when given.
fn write_trace_out(args: &[String], collector: &obs::Collector) -> Result<(), String> {
    let Some(out) = flag(args, "--trace-out") else { return Ok(()) };
    collector
        .write_jsonl(std::path::Path::new(out))
        .map_err(|e| format!("cannot write trace {out}: {e}"))?;
    println!("wrote trace {out}");
    Ok(())
}

/// Parses `--engine scalar|packed|auto` into an execution-engine request;
/// absent means `Auto` everywhere downstream (the wire default).
fn engine_flag(args: &[String]) -> Result<Option<Engine>, String> {
    flag(args, "--engine").map(|s| s.parse().map_err(|e| format!("bad --engine: {e}"))).transpose()
}

fn seed_of(args: &[String]) -> Result<u64, String> {
    match flag(args, "--seed") {
        None => Ok(42),
        Some(s) => s.parse().map_err(|e| format!("bad --seed: {e}")),
    }
}

fn load_model(path: &str) -> Result<Network, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Network::load(&mut BufReader::new(file)).map_err(|e| format!("cannot load {path}: {e}"))
}

fn cmd_new(args: &[String]) -> Result<(), String> {
    let input = flag(args, "--input").ok_or("missing --input")?;
    let arch = flag(args, "--arch").ok_or("missing --arch")?;
    let out = flag(args, "--out").ok_or("missing --out")?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed_of(args)?);

    let dims: Vec<usize> = input
        .split('x')
        .map(|d| d.parse().map_err(|e| format!("bad --input: {e}")))
        .collect::<Result<_, _>>()?;
    let lif = LifParams::default();
    let mut builder = match dims.as_slice() {
        [n] => NetworkBuilder::new(*n, lif),
        [c, h, w] => NetworkBuilder::new_spatial(*c, *h, *w, lif),
        _ => return Err("--input must be N or CxHxW".into()),
    };
    for stage in arch.split(',') {
        let parts: Vec<&str> = stage.split(':').collect();
        let num = |i: usize| -> Result<usize, String> {
            parts
                .get(i)
                .ok_or_else(|| format!("stage `{stage}`: missing field {i}"))?
                .parse()
                .map_err(|e| format!("stage `{stage}`: {e}"))
        };
        builder = match parts[0] {
            "dense" => builder.dense(num(1)?),
            "recurrent" => builder.recurrent(num(1)?),
            "pool" => builder.avg_pool(num(1)?),
            "conv" => builder.conv(num(1)?, num(2)?, num(3)?, num(4)?),
            other => return Err(format!("unknown stage kind `{other}`")),
        };
    }
    let mut net = builder.build(&mut rng);
    if let Some(sparsity) = num_flag::<f64>(args, "--sparsity")? {
        if !(0.0..=1.0).contains(&sparsity) {
            return Err(format!("--sparsity {sparsity} is outside [0, 1]"));
        }
        let zeroed = snn_mtfc::analyze::magnitude_prune(&mut net, sparsity);
        println!("pruned {zeroed} weights (magnitude, fraction {sparsity})");
    }
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let mut w = BufWriter::new(file);
    net.save(&mut w).map_err(|e| format!("cannot write {out}: {e}"))?;
    w.flush().map_err(|e| e.to_string())?;
    println!("{}", net.summary());
    println!("wrote {out}");
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("missing model path")?;
    let net = load_model(path)?;
    let timing = args.iter().any(|a| a == "--timing-faults");
    let mut bits = Vec::new();
    if let Some(list) = flag(args, "--bitflip-bits") {
        for part in list.split(',').filter(|p| !p.is_empty()) {
            let bit: u8 = part
                .trim()
                .parse()
                .map_err(|_| format!("--bitflip-bits: `{part}` is not a bit position"))?;
            if bit > 7 {
                return Err(format!("--bitflip-bits: {bit} exceeds 7 (int8 words)"));
            }
            bits.push(bit);
        }
    }
    let universe = if timing || !bits.is_empty() {
        FaultUniverse::with_config(&net, Default::default(), timing, &bits)
    } else {
        FaultUniverse::standard(&net)
    };
    let (analysis, collector) = with_trace(|| Ok(snn_mtfc::analyze::analyze(&net, &universe)));
    let analysis = analysis?;
    write_trace_out(args, &collector)?;
    let self_check_errors = if args.iter().any(|a| a == "--self-check") {
        analysis.collapsed.self_check(&net, &universe)
    } else {
        Vec::new()
    };
    use snn_mtfc::analyze::report;
    match flag(args, "--format").unwrap_or("text") {
        "text" => print!("{}", report::render_text(path, &analysis, &self_check_errors)),
        "json" => println!("{}", report::render_json(path, &analysis, &self_check_errors)),
        "sarif" => println!("{}", report::render_sarif(path, &analysis, &self_check_errors)),
        other => return Err(format!("unknown format `{other}` (text|json|sarif)")),
    }
    if !self_check_errors.is_empty() {
        return Err(format!(
            "{} collapse justification(s) failed self-check",
            self_check_errors.len()
        ));
    }
    if let Some(min) = num_flag::<f64>(args, "--min-collapse")? {
        if analysis.summary.collapse_fraction < min {
            return Err(format!(
                "collapse fraction {:.4} is below the required {min:.4}",
                analysis.summary.collapse_fraction
            ));
        }
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("missing model path")?;
    let net = load_model(path)?;
    print!("{}", net.summary());
    let universe = FaultUniverse::standard(&net);
    println!(
        "fault universe: {} faults ({} neuron, {} synapse)",
        universe.len(),
        universe.neuron_fault_count(),
        universe.synapse_fault_count()
    );
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("missing model path")?;
    let net = load_model(path)?;
    let cfg = match flag(args, "--preset").unwrap_or("repro") {
        "fast" => TestGenConfig::fast(),
        "repro" => TestGenConfig::repro(),
        "paper" => TestGenConfig::paper(),
        other => return Err(format!("unknown preset `{other}`")),
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed_of(args)?);
    let (test, collector) = with_trace(|| Ok(TestGenerator::new(&net, cfg).generate(&mut rng)));
    let test = test?;
    println!(
        "generated {} chunk(s), {} ticks, {:.1}% neurons activated, in {:?}",
        test.chunks.len(),
        test.test_steps(),
        test.activated_fraction() * 100.0,
        test.runtime
    );
    let (generation, fault_sim, total) = runtimes_from_spans(&collector.finished());
    println!("runtimes: generation {generation:.2?}, fault-sim {fault_sim:.2?}, total {total:.2?}");
    write_trace_out(args, &collector)?;
    if let Some(out) = flag(args, "--out") {
        let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
        let mut w = BufWriter::new(file);
        test.write_events(&mut w).map_err(|e| e.to_string())?;
        w.flush().map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    Ok(())
}

/// The `--addr` flag, defaulting to [`DEFAULT_ADDR`].
fn addr_of(args: &[String]) -> String {
    flag(args, "--addr").unwrap_or(DEFAULT_ADDR).to_string()
}

/// Parses an optional numeric flag.
fn num_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    match flag(args, name) {
        None => Ok(None),
        Some(s) => s.parse().map(Some).map_err(|e| format!("bad {name}: {e}")),
    }
}

fn connect(args: &[String]) -> Result<Client, String> {
    let addr = addr_of(args);
    Client::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
}

/// Parses the first non-flag argument as a job id.
fn job_id_of(args: &[String]) -> Result<u64, String> {
    let raw = positional(args, 0).ok_or("missing job id")?;
    raw.parse().map_err(|e| format!("bad job id `{raw}`: {e}"))
}

fn print_record(record: &JobRecord) {
    let mut line = format!("job {}: {}", record.id, record.state);
    if let Some(result) = &record.result {
        line.push_str(&format!(
            " — {} chunk(s), {} ticks, {:.1}% neurons activated, {} ms",
            result.chunks,
            result.test_steps,
            result.activation_coverage * 100.0,
            result.runtime_ms
        ));
        if let (Some(detected), Some(total)) = (result.faults_detected, result.faults_total) {
            line.push_str(&format!(", fault coverage {detected}/{total}"));
        }
        if let Some(analysis) = &result.analysis {
            line.push_str(&format!(
                ", analysis: {} dead neuron(s), {:.1}% faults collapsed",
                analysis.dead_neurons,
                analysis.collapse_fraction * 100.0
            ));
        }
        if let Some(t) = &result.timings {
            line.push_str(&format!(
                ", timings: queue {}ms, analyze {}ms, generation {}ms, fault-sim {}ms",
                t.queue_wait_ms, t.analyze_ms, t.generation_ms, t.fault_sim_ms
            ));
        }
        if let Some(path) = &result.events_path {
            line.push_str(&format!(", events at {path}"));
        }
        if let Some(rel) = &result.reliability {
            line.push_str(&format!(
                ", reliability: baseline {:.3} → faulty {:.3} → mitigated {:.3} \
                 ({}, {} config(s), digest {})",
                rel.baseline_accuracy,
                rel.faulty_accuracy,
                rel.mitigated_accuracy,
                rel.mitigation,
                rel.configs,
                rel.digest
            ));
        }
    } else if let Some(progress) = &record.progress {
        line.push_str(&format!(" — {}", progress_line(progress)));
    }
    if let Some(error) = &record.error {
        line.push_str(&format!(" ({error})"));
    }
    println!("{line}");
}

fn progress_line(progress: &Progress) -> String {
    match progress {
        Progress::Iteration {
            iteration,
            chunk_steps,
            newly_activated,
            activated,
            total_neurons,
            ..
        } => {
            format!(
                "iteration {iteration}: +{newly_activated} neurons \
                 ({activated}/{total_neurons} activated), chunk {chunk_steps} ticks"
            )
        }
        Progress::FaultsSimulated { done, total, detected } => {
            format!("faults {done}/{total} simulated, {detected} detected")
        }
    }
}

fn print_event(event: &JobEvent) {
    match &event.payload {
        JobEventPayload::State { job, state, error } => match error {
            Some(error) => println!("job {job}: {state} ({error})"),
            None => println!("job {job}: {state}"),
        },
        JobEventPayload::Progress { job, progress } => {
            println!("job {job}: {}", progress_line(progress))
        }
    }
}

/// Prints one event as its raw JSON wire form (the `--json` watch mode).
fn print_event_json(event: &JobEvent) {
    println!("{}", serde::json::to_string(event));
}

/// The watch event printer selected by `--json`.
fn event_printer(args: &[String]) -> fn(&JobEvent) {
    if args.iter().any(|a| a == "--json") {
        print_event_json
    } else {
        print_event
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let state_dir = flag(args, "--state-dir").ok_or("missing --state-dir")?;
    let expect_workers = num_flag(args, "--expect-workers")?.unwrap_or(0);
    let config = ServiceConfig {
        addr: addr_of(args),
        workers: num_flag(args, "--workers")?.unwrap_or(0),
        queue_capacity: num_flag(args, "--queue")?.unwrap_or(64),
        state_dir: state_dir.into(),
        expect_workers,
        chunk_size: num_flag(args, "--chunk-size")?.unwrap_or(256),
        lease_ms: num_flag(args, "--lease-ms")?.unwrap_or(5000),
    };
    let metrics_dump = flag(args, "--metrics-dump").map(str::to_string);
    let trace_out = flag(args, "--trace-out").map(str::to_string);
    // With --trace-out the server collects its own spans plus the ones
    // workers ship back with traced campaigns, and writes the merged
    // tree on shutdown.
    let collector = trace_out.as_ref().map(|_| {
        let collector = Arc::new(obs::Collector::new());
        obs::trace::install(Arc::clone(&collector));
        collector
    });
    let server = Server::bind(config).map_err(|e| format!("cannot start server: {e}"))?;
    println!("listening on {} (state in {state_dir})", server.local_addr());
    if expect_workers > 0 {
        println!("coverage campaigns wait for {expect_workers} cluster worker(s)");
    }
    server.run().map_err(|e| format!("server failed: {e}"))?;
    if let Some(path) = metrics_dump {
        let rendered = obs::metrics::render_prometheus(&obs::metrics::global().snapshot());
        std::fs::write(&path, rendered).map_err(|e| format!("cannot write metrics {path}: {e}"))?;
        println!("wrote metrics {path}");
    }
    if let (Some(path), Some(collector)) = (trace_out, collector) {
        obs::trace::uninstall();
        collector
            .write_jsonl(std::path::Path::new(&path))
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
        println!("wrote trace {path}");
    }
    Ok(())
}

/// Parses an `IxH..xO` layer-size list into a synthetic model spec.
fn synthetic_model(dims: &str, seed: u64) -> Result<ModelSpec, String> {
    let sizes: Vec<usize> = dims
        .split('x')
        .map(|d| d.parse().map_err(|e| format!("bad --synthetic: {e}")))
        .collect::<Result<_, _>>()?;
    if sizes.len() < 2 {
        return Err("--synthetic needs at least inputs and outputs, e.g. 6x12x4".into());
    }
    Ok(ModelSpec::Synthetic {
        inputs: sizes[0],
        hidden: sizes[1..sizes.len() - 1].to_vec(),
        outputs: sizes[sizes.len() - 1],
        seed,
    })
}

/// Resolves `--model`/`--synthetic` into a model spec.
fn model_spec_of(args: &[String]) -> Result<ModelSpec, String> {
    match (flag(args, "--model"), flag(args, "--synthetic")) {
        (Some(path), None) => Ok(ModelSpec::Path(path.to_string())),
        (None, Some(dims)) => synthetic_model(dims, seed_of(args)?),
        _ => Err("exactly one of --model or --synthetic is required".into()),
    }
}

/// Builds a reliability spec from the CLI flags against the resolved
/// network (the uniform fault map needs its topology).
fn reliability_spec_of(
    args: &[String],
    net: &Network,
) -> Result<snn_mtfc::reliability::ReliabilitySpec, String> {
    use snn_mtfc::reliability::{
        EvalSpec, FaultMapSpec, MitigationKind, ReliabilitySpec, WeightFaultModel,
    };
    let weight_model = match flag(args, "--fault-model").unwrap_or("stuck") {
        "stuck" => WeightFaultModel::StuckSat,
        "bitflip" => WeightFaultModel::BitFlip,
        other => return Err(format!("unknown --fault-model `{other}` (stuck|bitflip)")),
    };
    let window = match flag(args, "--window") {
        None => None,
        Some(text) => {
            let (a, b) = text
                .split_once(':')
                .ok_or_else(|| format!("bad --window `{text}` (expected T0:T1)"))?;
            let start = a.parse().map_err(|e| format!("bad --window start: {e}"))?;
            let end = b.parse().map_err(|e| format!("bad --window end: {e}"))?;
            Some(snn_mtfc::faults::TransientWindow::new(start, end))
        }
    };
    let map = FaultMapSpec::uniform(
        net,
        num_flag(args, "--weight-ber")?.unwrap_or(0.002),
        num_flag(args, "--neuron-ber")?.unwrap_or(0.0),
        num_flag(args, "--configs")?.unwrap_or(32),
        seed_of(args)?,
        weight_model,
        window,
    );
    let eval = EvalSpec {
        samples: num_flag(args, "--samples")?.unwrap_or(16),
        steps: num_flag(args, "--steps")?.unwrap_or(20),
        rate: num_flag(args, "--rate")?.unwrap_or(0.3),
        seed: num_flag(args, "--eval-seed")?.unwrap_or(7),
    };
    let mitigation = MitigationKind::parse(flag(args, "--mitigation").unwrap_or("none"))?;
    Ok(ReliabilitySpec { map, eval, mitigation })
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    let model = model_spec_of(args)?;
    let reliability = if args.iter().any(|a| a == "--reliability") {
        let net = snn_mtfc::cluster::build_model(&model)?;
        Some(reliability_spec_of(args, &net)?)
    } else {
        None
    };
    let spec = JobSpec {
        model,
        preset: flag(args, "--preset").unwrap_or("repro").to_string(),
        seed: seed_of(args)?,
        max_iterations: num_flag(args, "--max-iterations")?,
        t_limit_secs: num_flag(args, "--t-limit")?,
        evaluate_coverage: args.iter().any(|a| a == "--coverage"),
        threads: num_flag(args, "--threads")?.unwrap_or(0),
        reliability,
        engine: engine_flag(args)?,
    };
    let mut client = connect(args)?;
    let job = client.submit(spec)?;
    println!("submitted job {job}");
    if args.iter().any(|a| a == "--watch") {
        let record = client.watch(job, event_printer(args))?;
        print_record(&record);
    }
    Ok(())
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    let mut client = connect(args)?;
    match positional(args, 0) {
        Some(_) => print_record(&client.status(job_id_of(args)?)?),
        None => {
            let records = client.list()?;
            if records.is_empty() {
                println!("no jobs");
            }
            for record in &records {
                print_record(record);
            }
        }
    }
    Ok(())
}

fn cmd_watch(args: &[String]) -> Result<(), String> {
    let job = job_id_of(args)?;
    let json = args.iter().any(|a| a == "--json");
    let record = connect(args)?.watch(job, event_printer(args))?;
    if json {
        println!("{}", serde::json::to_string(&record));
    } else {
        print_record(&record);
    }
    Ok(())
}

fn cmd_cancel(args: &[String]) -> Result<(), String> {
    let job = job_id_of(args)?;
    connect(args)?.cancel(job)?;
    println!("cancellation requested for job {job}");
    Ok(())
}

fn cmd_shutdown(args: &[String]) -> Result<(), String> {
    connect(args)?.shutdown()?;
    println!("server shutting down");
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let model_path = positional(args, 0).ok_or("missing model path")?;
    let test_path = positional(args, 1).ok_or("missing test path")?;
    let net = load_model(model_path)?;
    let mut text = String::new();
    File::open(test_path)
        .map_err(|e| format!("cannot open {test_path}: {e}"))?
        .read_to_string(&mut text)
        .map_err(|e| e.to_string())?;
    let stimulus = parse_events(&text)?;
    if stimulus.shape().dim(0) == 0 {
        return Err(format!("{test_path} contains no events"));
    }
    if stimulus.shape().dim(1) != net.input_features() {
        return Err(format!(
            "test has {} features, model expects {}",
            stimulus.shape().dim(1),
            net.input_features()
        ));
    }
    let universe = FaultUniverse::standard(&net);
    let cfg = FaultSimConfig { engine: engine_flag(args)?, ..FaultSimConfig::default() };
    let resolved = snn_mtfc::batch::resolve_engine(&net, cfg.engine);
    let cancel = snn_mtfc::faults::CancelToken::new();
    let (outcome, collector) = with_trace(|| {
        snn_mtfc::batch::engine_detect(
            &net,
            cfg,
            &universe,
            universe.faults(),
            std::slice::from_ref(&stimulus),
            &snn_mtfc::faults::NullSink,
            &cancel,
        )
        .map_err(|e| format!("campaign failed: {e}"))
    });
    let outcome = outcome?;
    println!("engine: {resolved}");
    println!(
        "fault coverage: {:.2}% ({}/{} detected) in {:?}",
        outcome.fault_coverage() * 100.0,
        outcome.detected_count(),
        universe.len(),
        outcome.elapsed
    );
    // The engine-equality CI gate greps this line: packed and scalar
    // runs of the same campaign must print the same digest.
    println!("verdict digest: {}", snn_mtfc::faults::verdict_digest_hex(&outcome.per_fault));
    let (generation, fault_sim, total) = runtimes_from_spans(&collector.finished());
    println!("runtimes: generation {generation:.2?}, fault-sim {fault_sim:.2?}, total {total:.2?}");
    write_trace_out(args, &collector)?;
    Ok(())
}

/// Renders the span tree of a `--trace-out` JSONL file with per-node
/// total and self times.
fn cmd_profile(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("missing trace path")?;
    let mut text = String::new();
    File::open(path)
        .map_err(|e| format!("cannot open {path}: {e}"))?
        .read_to_string(&mut text)
        .map_err(|e| e.to_string())?;
    let records = obs::trace::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    if records.is_empty() {
        return Err(format!("{path} contains no spans"));
    }
    print!("{}", obs::profile::render(&obs::profile::build(&records)));
    if args.iter().any(|a| a == "--phases") {
        println!();
        print!("{}", obs::profile::render_phases(&records));
    }
    Ok(())
}

/// Fetches the server's metrics snapshot and prints it in Prometheus
/// text format 0.0.4.
fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let snapshot = connect(args)?.metrics()?;
    print!("{}", obs::metrics::render_prometheus(&snapshot));
    Ok(())
}

/// Runs a cluster worker process: connects to the coordinator, leases
/// chunks, simulates them, and streams results back until shutdown.
fn cmd_worker(args: &[String]) -> Result<(), String> {
    let addr = addr_of(args);
    let name = flag(args, "--name")
        .map(str::to_string)
        .unwrap_or_else(|| format!("worker-{}", std::process::id()));
    let threads = num_flag(args, "--threads")?.unwrap_or(0);
    let trace = args.iter().any(|a| a == "--trace");
    println!("worker {name} connecting to {addr}");
    let report = snn_mtfc::cluster::run_worker(&snn_mtfc::cluster::WorkerConfig {
        addr: addr.clone(),
        name: name.clone(),
        threads,
        trace,
    })
    .map_err(|e| format!("worker failed: {e}"))?;
    println!(
        "worker {name} done: {} chunk(s), {} fault(s), {} abandoned",
        report.chunks, report.faults, report.abandoned
    );
    Ok(())
}

/// Prints the coordinator's view of the cluster: known workers, their
/// held leases, and the chunk accounting counters.
fn cmd_cluster_status(args: &[String]) -> Result<(), String> {
    let status = connect(args)?.cluster_status()?;
    if args.iter().any(|a| a == "--json") {
        println!("{}", serde::json::to_string(&status));
        return Ok(());
    }
    println!(
        "cluster: {} worker(s), {} campaign(s) active",
        status.workers.len(),
        status.campaigns_active
    );
    println!(
        "chunks: {} pending, {} leased, {} completed, {} reissued, {} stale result(s)",
        status.chunks_pending,
        status.chunks_leased,
        status.chunks_completed,
        status.chunks_reissued,
        status.results_stale
    );
    for w in &status.workers {
        let lease = match &w.lease {
            Some(l) => format!(
                "lease {} (campaign {}, chunk {}, expires in {} ms)",
                l.lease, l.campaign, l.chunk, l.expires_in_ms
            ),
            None => "idle".to_string(),
        };
        println!(
            "  {}: {} chunk(s) done, busy {} ms, seen {} ms ago, {lease}",
            w.name, w.chunks_completed, w.busy_ms, w.last_seen_ms
        );
    }
    Ok(())
}

/// One `cluster-bench` measurement: a coverage campaign at a fixed
/// worker count, over the full service + wire stack.
struct BenchRun {
    workers: usize,
    fault_sim_ms: u64,
    faults_total: usize,
    faults_per_sec: f64,
    digest: String,
    engine: Option<String>,
}

/// Runs one job against a fresh in-process server with `workers` real
/// TCP cluster workers and returns its terminal record. Errors unless
/// the job ends `Done`.
fn cluster_job_run(
    workers: usize,
    spec: &JobSpec,
    chunk_size: usize,
    tag: &str,
) -> Result<JobRecord, String> {
    let state_dir =
        std::env::temp_dir().join(format!("snn-{tag}-{}-{workers}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let config = ServiceConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 4,
        state_dir: state_dir.clone(),
        expect_workers: workers,
        chunk_size,
        lease_ms: 10_000,
    };
    let server = Server::bind(config).map_err(|e| format!("cannot start {tag} server: {e}"))?;
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());
    let worker_threads: Vec<_> = (0..workers)
        .map(|i| {
            let name = format!("{tag}-{i}");
            std::thread::spawn(move || {
                // In-process worker threads share the bench process; a
                // traced worker would hijack its global collector.
                snn_mtfc::cluster::run_worker(&snn_mtfc::cluster::WorkerConfig {
                    addr: addr.to_string(),
                    name,
                    threads: 1,
                    trace: false,
                })
            })
        })
        .collect();

    let outcome = (|| -> Result<JobRecord, String> {
        let mut client =
            Client::connect(addr).map_err(|e| format!("cannot connect to {tag} server: {e}"))?;
        let job = client.submit(spec.clone())?;
        let record = client.watch(job, |_| {})?;
        client.shutdown()?;
        if record.state != snn_mtfc::service::JobState::Done {
            return Err(format!(
                "{tag} job at {workers} worker(s) ended {} ({})",
                record.state,
                record.error.clone().unwrap_or_default()
            ));
        }
        Ok(record)
    })();

    let _ = server_thread.join();
    for t in worker_threads {
        let _ = t.join();
    }
    let _ = std::fs::remove_dir_all(&state_dir);
    outcome
}

/// Runs one coverage job against a fresh in-process server with
/// `workers` real TCP cluster workers and returns the measurement.
fn bench_run(workers: usize, spec: &JobSpec, chunk_size: usize) -> Result<BenchRun, String> {
    let record = cluster_job_run(workers, spec, chunk_size, "cluster-bench")?;
    let result = record.result.ok_or("bench job finished without a result")?;
    let fault_sim_ms =
        result.timings.as_ref().map(|t| t.fault_sim_ms).ok_or("bench job has no timings")?;
    let faults_total = result.faults_total.ok_or("bench job has no fault count")?;
    let digest = result.verdict_digest.ok_or("bench job has no verdict digest")?;
    Ok(BenchRun {
        workers,
        fault_sim_ms,
        faults_total,
        faults_per_sec: faults_total as f64 / (fault_sim_ms.max(1) as f64 / 1000.0),
        digest,
        engine: result.engine,
    })
}

/// Runs a fault-map reliability campaign — in-process by default, or
/// over an in-process cluster of `--workers N` real TCP workers (the
/// digest is identical either way; CI gates on exactly that).
fn cmd_reliability(args: &[String]) -> Result<(), String> {
    use snn_mtfc::reliability::{ReliabilityEvaluator, ReliabilityReport};
    let model = model_spec_of(args)?;
    let net = snn_mtfc::cluster::build_model(&model)?;
    let rspec = reliability_spec_of(args, &net)?;
    let workers: usize = num_flag(args, "--workers")?.unwrap_or(0);

    let report = if workers == 0 {
        let evaluator = ReliabilityEvaluator::new(net.clone(), rspec.clone())?;
        let ids: Vec<usize> = (0..rspec.map.configs).collect();
        let threads = num_flag(args, "--threads")?.unwrap_or(0);
        let cancel = snn_mtfc::faults::progress::CancelToken::new();
        let outcomes = evaluator
            .evaluate_chunk(&ids, threads, &cancel)
            .map_err(|_| "campaign cancelled".to_string())?;
        ReliabilityReport::build(&net, &rspec, &outcomes)?
    } else {
        let spec = JobSpec {
            model,
            preset: "repro".into(),
            seed: seed_of(args)?,
            max_iterations: None,
            t_limit_secs: None,
            evaluate_coverage: false,
            threads: 1,
            reliability: Some(rspec),
            engine: engine_flag(args)?,
        };
        let chunk_size = num_flag(args, "--chunk-size")?.unwrap_or(4);
        let record = cluster_job_run(workers, &spec, chunk_size, "reliability")?;
        let result = record.result.ok_or("reliability job finished without a result")?;
        result.reliability.ok_or("reliability job returned no report")?
    };

    if args.iter().any(|a| a == "--json") {
        println!("{}", serde::json::to_string(&report));
    } else {
        print_reliability_report(&report);
    }
    Ok(())
}

/// Renders a reliability report in the human format.
fn print_reliability_report(report: &snn_mtfc::reliability::ReliabilityReport) {
    println!(
        "reliability: {} config(s) × {} sample(s), mitigation {}",
        report.configs, report.samples, report.mitigation
    );
    println!(
        "accuracy: baseline {:.3}, faulty {:.3}, mitigated {:.3} (recovered {:+.3})",
        report.baseline_accuracy,
        report.faulty_accuracy,
        report.mitigated_accuracy,
        report.recovered()
    );
    println!(
        "drop: mean {:.3}, p95 {:.3}, worst {:.3}; mitigated: mean {:.3}, p95 {:.3}, worst {:.3}",
        report.drop.mean,
        report.drop.p95,
        report.drop.worst,
        report.mitigated_drop.mean,
        report.mitigated_drop.p95,
        report.mitigated_drop.worst
    );
    println!("mean output-spike delta: {:.3}", report.mean_spike_delta);
    println!("regions (most critical first):");
    for r in &report.regions {
        println!(
            "  {}: hit in {} config(s), mean drop {:.3}",
            r.region, r.configs_hit, r.mean_drop
        );
    }
    println!("digest: {}", report.digest);
}

/// One kernel phase's share of the benchmarked campaigns, for the
/// perf-history records.
#[derive(serde::Serialize, serde::Deserialize)]
struct BenchPhase {
    name: String,
    seconds: f64,
    count: u64,
}

/// One appended perf-history record: the headline throughput of the
/// 2-worker run plus the kernel-phase breakdown, stamped with metadata
/// the harness passes in (the binary itself never reads clocks or VCS
/// state, keeping the determinism lints clean). `host_cores` and
/// `engine` are additive `Option`s so records written by older binaries
/// keep decoding; `host_cores` lets the regression gate discard
/// measurements taken on hosts too small to run the benched worker
/// count without oversubscription.
#[derive(serde::Serialize, serde::Deserialize)]
struct BenchHistoryRecord {
    git_rev: String,
    timestamp: String,
    faults_per_sec: f64,
    phase_breakdown: Vec<BenchPhase>,
    host_cores: Option<usize>,
    engine: Option<String>,
}

/// The slice of a previous `BENCH_cluster.json` the regression gate and
/// history carry-forward need; unknown keys are ignored by the decoder.
#[derive(serde::Deserialize)]
struct BenchBaseline {
    runs: Vec<BenchBaselineRun>,
    history: Option<Vec<BenchHistoryRecord>>,
}

#[derive(serde::Deserialize)]
struct BenchBaselineRun {
    workers: usize,
    faults_per_sec: f64,
}

/// History records kept in the bench file; older ones age out.
const BENCH_HISTORY_CAP: usize = 20;

/// Benchmarks one fixed coverage campaign at 0 (local), 1 and 2 cluster
/// workers, gates that all three verdict digests are identical, gates
/// 2-worker throughput against `--baseline` (if given), and writes the
/// measurements — with run metadata and an appended perf-history
/// record — as JSON.
fn cmd_cluster_bench(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").unwrap_or("BENCH_cluster.json");
    let seed = seed_of(args)?;
    let synthetic = flag(args, "--synthetic").unwrap_or("16x64x10");
    let spec = JobSpec {
        model: synthetic_model(synthetic, seed)?,
        preset: flag(args, "--preset").unwrap_or("fast").to_string(),
        seed,
        max_iterations: None,
        t_limit_secs: None,
        evaluate_coverage: true,
        threads: 1,
        reliability: None,
        engine: engine_flag(args)?,
    };
    let chunk_size = num_flag(args, "--chunk-size")?.unwrap_or(128);
    let git_rev = flag(args, "--git-rev").unwrap_or("unknown").to_string();
    let timestamp = flag(args, "--timestamp").unwrap_or("unknown").to_string();
    let host_cores = num_flag::<usize>(args, "--host-cores")?;
    let baseline = flag(args, "--baseline").map(load_bench_baseline).transpose()?;
    let max_regression: f64 = num_flag(args, "--max-regression")?.unwrap_or(0.15);

    // The phase accumulator is process-global and both the local run and
    // the in-process bench workers feed it; the delta across all three
    // runs is this benchmark's kernel-phase breakdown.
    let phases_before = obs::phase::faultsim().snapshot();
    let mut runs = Vec::new();
    for workers in [0usize, 1, 2] {
        let run = bench_run(workers, &spec, chunk_size)?;
        println!(
            "{} worker(s): {} faults in {} ms ({:.0} faults/sec), digest {}",
            run.workers, run.faults_total, run.fault_sim_ms, run.faults_per_sec, run.digest
        );
        runs.push(run);
    }
    let phase_breakdown: Vec<BenchPhase> = obs::phase::faultsim()
        .snapshot()
        .delta_since(&phases_before)
        .entries()
        .into_iter()
        .map(|e| BenchPhase { name: e.name, seconds: e.total.as_secs_f64(), count: e.count })
        .collect();

    // The exactness gate: every path — in-process, 1 worker, 2 workers —
    // must produce bit-identical verdicts.
    for run in &runs[1..] {
        if run.digest != runs[0].digest {
            return Err(format!(
                "verdict digest diverged at {} worker(s): {} != local {}",
                run.workers, run.digest, runs[0].digest
            ));
        }
    }
    let speedup = runs[1].fault_sim_ms.max(1) as f64 / runs[2].fault_sim_ms.max(1) as f64;
    println!("digests identical across all paths; 2-worker speedup over 1: {speedup:.2}x");

    // The regression gate: 2-worker throughput must stay within
    // `--max-regression` of the slowest recorded run — the baseline's
    // 2-worker measurement and every history record. Gating on the
    // minimum (not the latest) keeps one fast outlier from setting an
    // unattainable bar on noisy shared hosts. On hosts with fewer cores
    // than the gated worker count the 2-worker run measures
    // oversubscription, not the engine, so the gate is skipped (and
    // history records stamped by such hosts are excluded from the bar).
    let gated_workers = 2usize;
    let mut history = Vec::new();
    if let Some(baseline) = baseline {
        history = baseline.history.unwrap_or_default();
        if host_cores.is_some_and(|cores| cores < gated_workers) {
            println!(
                "regression gate skipped: host has {} core(s) < {gated_workers} bench worker(s) \
                 (multi-worker throughput on an oversubscribed host is noise)",
                host_cores.unwrap_or(0)
            );
        } else {
            let recorded = baseline
                .runs
                .iter()
                .filter(|r| r.workers == gated_workers)
                .map(|r| r.faults_per_sec)
                .chain(
                    history
                        .iter()
                        .filter(|h| h.host_cores.is_none_or(|cores| cores >= gated_workers))
                        .map(|h| h.faults_per_sec),
                )
                .fold(f64::INFINITY, f64::min);
            if recorded.is_finite() {
                let floor = recorded * (1.0 - max_regression);
                let measured = runs[2].faults_per_sec;
                if measured < floor {
                    return Err(format!(
                        "perf regression: 2-worker throughput {measured:.0} faults/sec is below \
                         {floor:.0} (slowest recorded {recorded:.0}, {:.0}% tolerance)",
                        max_regression * 100.0
                    ));
                }
                println!(
                    "regression gate ok: {measured:.0} faults/sec vs slowest recorded \
                     {recorded:.0} ({:.0}% tolerance)",
                    max_regression * 100.0
                );
            }
        }
    }
    history.push(BenchHistoryRecord {
        git_rev: git_rev.clone(),
        timestamp: timestamp.clone(),
        faults_per_sec: runs[2].faults_per_sec,
        phase_breakdown,
        host_cores,
        engine: runs[2].engine.clone(),
    });
    if history.len() > BENCH_HISTORY_CAP {
        let drop = history.len() - BENCH_HISTORY_CAP;
        history.drain(..drop);
    }

    let entries: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"workers\": {}, \"fault_sim_ms\": {}, \"faults_per_sec\": {:.2}, \
                 \"digest\": \"{}\", \"engine\": \"{}\"}}",
                r.workers,
                r.fault_sim_ms,
                r.faults_per_sec,
                r.digest,
                r.engine.as_deref().unwrap_or("unknown")
            )
        })
        .collect();
    let history_entries: Vec<String> =
        history.iter().map(|h| format!("    {}", serde::json::to_string(h))).collect();
    let host_cores_json = host_cores.map_or_else(|| "null".to_string(), |n| n.to_string());
    let engine_name = runs[0].engine.as_deref().unwrap_or("unknown");
    let json = format!(
        "{{\n  \"meta\": {{\"git_rev\": \"{git_rev}\", \"timestamp\": \"{timestamp}\", \
         \"preset\": \"{}\", \"synthetic\": \"{synthetic}\", \"seed\": {seed}, \
         \"chunk_size\": {chunk_size}, \"host_cores\": {host_cores_json}, \
         \"engine\": \"{engine_name}\"}},\n  \
         \"campaign\": {{\"synthetic\": \"{synthetic}\", \"preset\": \"{}\", \"seed\": {seed}, \
         \"chunk_size\": {chunk_size}, \"faults_total\": {}}},\n  \"runs\": [\n{}\n  ],\n  \
         \"speedup_2_over_1\": {:.4},\n  \"history\": [\n{}\n  ]\n}}\n",
        spec.preset,
        spec.preset,
        runs[0].faults_total,
        entries.join(",\n"),
        speedup,
        history_entries.join(",\n")
    );
    std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// Reads and decodes a previous bench file for the regression gate and
/// history carry-forward.
fn load_bench_baseline(path: &str) -> Result<BenchBaseline, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    serde::json::from_str(&text).map_err(|e| format!("cannot decode baseline {path}: {e}"))
}
