//! # snn-mtfc — Minimum-Time Maximum-Fault-Coverage testing of SNNs
//!
//! Façade crate re-exporting the whole workspace: a from-scratch Rust
//! reproduction of *"Minimum Time Maximum Fault Coverage Testing of Spiking
//! Neural Networks"* (Raptis & Stratigopoulos, DATE 2025).
//!
//! The workspace contains:
//!
//! * [`tensor`] — dense `f32` tensors and conv/matmul/pool kernels,
//! * [`model`] — the clocked LIF SNN simulator with surrogate-gradient
//!   BPTT, plus an event-driven cross-check engine, training, int8
//!   quantization and a binary model format,
//! * [`faults`] — behavioural fault models, the parallel prefix-cached
//!   fault simulator, criticality labelling, statistical coverage
//!   estimation and fault dictionaries for diagnosis,
//! * [`batch`] — the bit-packed fault-parallel execution engine: fault
//!   plan → lane assignment → packed LIF run over `u64` spike words,
//!   bit-identical to the scalar path and selected per campaign via
//!   `--engine packed|scalar|auto`,
//! * [`datasets`] — synthetic NMNIST / DVS-gesture / SHD-like event
//!   datasets and rate/TTFS encoders,
//! * [`testgen`] — the paper's contribution: the two-stage loss-driven
//!   test generation algorithm, plus test compaction,
//! * [`analyze`] — static testability analysis: LIF interval analysis,
//!   sound fault collapsing with machine-checkable justifications, and
//!   campaign pruning via collapsed universes,
//! * [`baselines`] — prior-art test generation methods for comparison,
//! * [`obs`] — dependency-free observability: hierarchical spans with a
//!   JSONL trace collector, a lock-free metrics registry with Prometheus
//!   text rendering, and the profile-tree renderer behind
//!   `snn-mtfc profile`,
//! * [`service`] — a concurrent job server daemonizing test generation:
//!   TCP newline-delimited-JSON protocol, worker pool, live progress
//!   streaming, cooperative cancellation and a restart-safe job store,
//! * [`cluster`] — distributed fault-simulation campaigns: a lease-based
//!   coordinator shards the fault universe into chunks farmed out to
//!   `snn-mtfc worker` processes, with epoch-fenced exactly-once
//!   accounting and results merged bit-identically to the single-process
//!   path,
//! * [`reliability`] — fault-map-driven reliability campaigns: per-region
//!   bit-error-rate fault maps sampled into deterministic fault
//!   configurations, transient injection windows, accuracy-impact
//!   scoring over an oracle-labelled evaluation set, and mitigation
//!   evaluation (range restriction, fault-aware mapping) as
//!   (baseline, faulty, mitigated) accuracy triples.
//!
//! A CLI (`snn-mtfc new/info/generate/verify/reliability` plus the
//! service commands `serve/submit/status/watch/cancel` and the cluster
//! commands `worker/cluster-status/cluster-bench`) drives the flow over
//! model and event-list files; see the repository README.
//!
//! # Quickstart
//!
//! ```
//! use snn_mtfc::model::{LifParams, Network, NetworkBuilder};
//! use snn_mtfc::tensor::{Shape, Tensor};
//!
//! // A tiny fully-connected SNN: 4 inputs → 8 hidden → 2 outputs.
//! let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
//! let net = NetworkBuilder::new(4, LifParams::default())
//!     .dense(8)
//!     .dense(2)
//!     .build(&mut rng);
//! assert_eq!(net.neuron_count(), 10);
//! ```

pub use snn_analyze as analyze;
pub use snn_baselines as baselines;
pub use snn_batch as batch;
pub use snn_cluster as cluster;
pub use snn_datasets as datasets;
pub use snn_faults as faults;
pub use snn_model as model;
pub use snn_obs as obs;
pub use snn_reliability as reliability;
pub use snn_service as service;
pub use snn_tensor as tensor;
pub use snn_testgen as testgen;
