//! In-process exercises of the coordinator's lease state machine:
//! expiry → re-issue under a bumped epoch, the exactly-once result gate,
//! heartbeat extension, shutdown and cancellation.
//!
//! No TCP, no worker processes — these tests play the worker role by
//! calling the coordinator directly, using short real-time leases with
//! wide margins.

#![allow(clippy::unwrap_used)] // test-only shorthand

use snn_cluster::coordinator::{
    CampaignProgress, ClusterError, Coordinator, CoordinatorConfig, Grant,
};
use snn_cluster::wire::{CampaignSpec, ModelSpec};
use snn_faults::progress::CancelToken;
use snn_faults::{FaultOutcome, FaultSimConfig};
use std::time::Duration;

fn spec() -> CampaignSpec {
    // The coordinator never materializes the payload — only workers do —
    // so a nominal spec is enough here.
    CampaignSpec {
        id: 0,
        model: ModelSpec::Synthetic { inputs: 3, hidden: vec![4], outputs: 2, seed: 7 },
        events: vec!["# snn-mtfc test: 1 ticks x 3 features, 1 chunks\n0 0\n".into()],
        sim: FaultSimConfig::default(),
        faults: 0,
        reliability: None,
    }
}

fn coordinator(chunk_size: usize, lease_ms: u64) -> Coordinator {
    Coordinator::new(CoordinatorConfig { chunk_size, lease_ms, heartbeat_ms: 20, idle_retry_ms: 5 })
}

fn fake_outcomes(fault_ids: &[usize]) -> Vec<FaultOutcome> {
    fault_ids
        .iter()
        .map(|&id| FaultOutcome {
            fault_id: id,
            detected: id % 2 == 0,
            distance: id as f32 * 0.5,
            class_diff: None,
        })
        .collect()
}

#[test]
fn idle_until_a_campaign_arrives() {
    let coord = coordinator(4, 5000);
    coord.hello("w1");
    assert!(matches!(coord.grant("w1"), Grant::Idle { .. }));
    coord.submit(spec(), (0..3).collect(), None);
    assert!(matches!(coord.grant("w1"), Grant::Lease(_)));
}

#[test]
fn expired_lease_is_reissued_under_a_bumped_epoch_and_stale_results_bounce() {
    let coord = coordinator(4, 80);
    coord.hello("w1");
    coord.hello("w2");
    let campaign = coord.submit(spec(), (0..10).collect(), None);

    let Grant::Lease(first) = coord.grant("w1") else { panic!("expected a lease") };
    assert_eq!(first.epoch, 0);
    assert_eq!(first.fault_ids, vec![0, 1, 2, 3]);

    // Let the lease rot well past its deadline, then hand out work again:
    // the same chunk comes back first, under a new lease and epoch 1.
    std::thread::sleep(Duration::from_millis(300));
    let Grant::Lease(second) = coord.grant("w2") else { panic!("expected a re-issue") };
    assert_eq!(second.chunk.index, first.chunk.index, "expired chunk is re-issued first");
    assert_eq!(second.epoch, 1, "re-issue bumps the epoch");
    assert_ne!(second.lease, first.lease, "re-issue gets a fresh lease id");

    // The presumed-dead worker limps home: its result must be discarded.
    let stale = coord.result(
        "w1",
        first.lease,
        campaign,
        first.chunk.index,
        first.epoch,
        fake_outcomes(&first.fault_ids),
        None,
    );
    assert!(!stale, "stale (lease, epoch) results are rejected");

    // The live lease's result lands.
    let fresh = coord.result(
        "w2",
        second.lease,
        campaign,
        second.chunk.index,
        second.epoch,
        fake_outcomes(&second.fault_ids),
        None,
    );
    assert!(fresh, "live results are accepted");

    let status = coord.status();
    assert_eq!(status.results_stale, 1);
    assert!(status.chunks_reissued >= 1);
    assert_eq!(status.chunks_completed, 1);
}

#[test]
fn heartbeats_keep_a_slow_lease_alive() {
    let coord = coordinator(8, 150);
    coord.hello("w1");
    let campaign = coord.submit(spec(), (0..8).collect(), None);
    let Grant::Lease(grant) = coord.grant("w1") else { panic!("expected a lease") };

    // Simulate a slow chunk: 6 × 60 ms ≫ the 150 ms lease, kept alive by
    // heartbeats.
    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(60));
        assert!(coord.heartbeat("w1", grant.lease), "heartbeat extends a live lease");
    }
    assert!(coord.result(
        "w1",
        grant.lease,
        campaign,
        grant.chunk.index,
        grant.epoch,
        fake_outcomes(&grant.fault_ids),
        None,
    ));
    assert!(!coord.heartbeat("w1", grant.lease), "a completed lease no longer beats");
    assert_eq!(coord.status().chunks_reissued, 0, "no expiry happened");
}

#[test]
fn wrong_length_results_are_rejected() {
    let coord = coordinator(4, 5000);
    coord.hello("w1");
    let campaign = coord.submit(spec(), (0..4).collect(), None);
    let Grant::Lease(grant) = coord.grant("w1") else { panic!("expected a lease") };
    let short = fake_outcomes(&grant.fault_ids[..2]);
    assert!(!coord.result(
        "w1",
        grant.lease,
        campaign,
        grant.chunk.index,
        grant.epoch,
        short,
        None
    ));
    assert_eq!(coord.status().results_stale, 1);
}

#[test]
fn completed_campaign_merges_in_fault_list_order() {
    let coord = coordinator(3, 5000);
    coord.hello("w1");
    // Deliberately scrambled fault ids: merge order is fault-list order,
    // not id order.
    let fault_ids: Vec<usize> = vec![9, 2, 7, 0, 5, 1, 8, 3, 6, 4];
    let campaign = coord.submit(spec(), fault_ids.clone(), None);

    // Play a single worker draining the queue out of chunk order is not
    // possible through grant() (it hands chunks in order), but results
    // can arrive in any order; complete them reversed.
    let mut grants = Vec::new();
    while let Grant::Lease(g) = coord.grant("w1") {
        grants.push(g);
    }
    assert_eq!(grants.len(), 4, "10 faults at chunk size 3 = 4 chunks");
    for g in grants.iter().rev() {
        assert!(coord.result(
            "w1",
            g.lease,
            campaign,
            g.chunk.index,
            g.epoch,
            fake_outcomes(&g.fault_ids),
            None
        ));
    }

    let mut seen = Vec::new();
    let merged =
        coord.wait(campaign, &CancelToken::new(), |p: CampaignProgress| seen.push(p)).unwrap();
    let got: Vec<usize> = merged.iter().map(|o| o.fault_id).collect();
    assert_eq!(got, fault_ids, "merged outcomes follow fault-list order");
    assert_eq!(merged, fake_outcomes(&fault_ids), "verdicts survive the round trip");

    let status = coord.status();
    assert_eq!(status.campaigns_active, 0, "waited campaigns are retired");
    let w1 = &status.workers[0];
    assert_eq!(w1.chunks_completed, 4);
}

#[test]
fn empty_campaign_completes_immediately() {
    let coord = coordinator(4, 5000);
    let campaign = coord.submit(spec(), Vec::new(), None);
    let merged = coord.wait(campaign, &CancelToken::new(), |_| {}).unwrap();
    assert!(merged.is_empty());
}

#[test]
fn waiting_on_an_unknown_campaign_is_a_typed_error() {
    let coord = coordinator(4, 5000);
    let err = coord.wait(42, &CancelToken::new(), |_| {}).unwrap_err();
    assert_eq!(err, ClusterError::UnknownCampaign { campaign: 42 });
}

#[test]
fn cancellation_aborts_a_wait() {
    let coord = coordinator(4, 5000);
    let campaign = coord.submit(spec(), (0..4).collect(), None);
    let cancel = CancelToken::new();
    cancel.cancel();
    let err = coord.wait(campaign, &cancel, |_| {}).unwrap_err();
    assert_eq!(err, ClusterError::Cancelled);
}

#[test]
fn shutdown_reaches_waiters_and_workers() {
    let coord = std::sync::Arc::new(coordinator(4, 5000));
    let campaign = coord.submit(spec(), (0..4).collect(), None);
    let waiter = {
        let coord = std::sync::Arc::clone(&coord);
        std::thread::spawn(move || coord.wait(campaign, &CancelToken::new(), |_| {}))
    };
    std::thread::sleep(Duration::from_millis(50));
    coord.shutdown();
    assert_eq!(waiter.join().unwrap().unwrap_err(), ClusterError::Shutdown);
    coord.hello("w1");
    assert!(matches!(coord.grant("w1"), Grant::Shutdown));
}

#[test]
fn wait_for_workers_reports_the_shortfall() {
    let coord = coordinator(4, 5000);
    coord.hello("only-one");
    let err =
        coord.wait_for_workers(3, &CancelToken::new(), Duration::from_millis(80)).unwrap_err();
    assert_eq!(err, ClusterError::WorkersUnavailable { expected: 3, seen: 1 });
    coord.hello("two");
    coord.hello("three");
    coord.wait_for_workers(3, &CancelToken::new(), Duration::from_millis(80)).unwrap();
}

#[test]
fn progress_reports_are_monotonic_while_chunks_land() {
    let coord = std::sync::Arc::new(coordinator(2, 5000));
    coord.hello("w1");
    let fault_ids: Vec<usize> = (0..6).collect();
    let campaign = coord.submit(spec(), fault_ids.clone(), None);
    let worker = {
        let coord = std::sync::Arc::clone(&coord);
        std::thread::spawn(move || {
            while let Grant::Lease(g) = coord.grant("w1") {
                std::thread::sleep(Duration::from_millis(30));
                assert!(coord.result(
                    "w1",
                    g.lease,
                    campaign,
                    g.chunk.index,
                    g.epoch,
                    fake_outcomes(&g.fault_ids),
                    None
                ));
            }
        })
    };
    let mut seen: Vec<CampaignProgress> = Vec::new();
    let merged = coord.wait(campaign, &CancelToken::new(), |p| seen.push(p)).unwrap();
    worker.join().unwrap();
    assert_eq!(merged.len(), 6);
    assert!(!seen.is_empty());
    assert!(seen.windows(2).all(|w| w[0].done <= w[1].done), "progress never regresses");
    assert!(seen.iter().all(|p| p.total == 6));
}
