//! Satellite property: distributed campaigns are bit-identical to the
//! single-process path — merged coverage and per-fault verdicts match
//! bitwise across worker counts 0/1/2/4 and chunk sizes 1/7/64.
//!
//! Workers here are in-process threads playing the wire-free coordinator
//! API (grant → payload → run_chunk → result), each materializing its
//! own [`PreparedCampaign`] exactly as a worker process would.

#![allow(clippy::unwrap_used)] // test-only shorthand

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_cluster::coordinator::{Coordinator, CoordinatorConfig, Grant};
use snn_cluster::wire::{CampaignSpec, ModelSpec};
use snn_cluster::{build_model, PreparedCampaign};
use snn_faults::progress::CancelToken;
use snn_faults::{verdict_digest, FaultOutcome, FaultSimConfig, FaultSimulator, FaultUniverse};
use std::sync::Arc;

/// Builds a self-contained campaign spec with `stimuli` random
/// bernoulli test inputs over a synthetic network.
fn campaign_spec(
    seed: u64,
    inputs: usize,
    hidden: usize,
    outputs: usize,
    ticks: usize,
) -> CampaignSpec {
    let model = ModelSpec::Synthetic { inputs, hidden: vec![hidden], outputs, seed };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let stim = snn_tensor::init::bernoulli(&mut rng, snn_tensor::Shape::d2(ticks, inputs), 0.4);
    let test = snn_testgen::GeneratedTest::from_chunks(vec![stim], inputs, vec![false; 3]);
    let mut events = Vec::new();
    test.write_events(&mut events).unwrap();
    CampaignSpec {
        id: 0,
        model,
        events: vec![String::from_utf8(events).unwrap()],
        sim: FaultSimConfig { threads: 1, ..FaultSimConfig::default() },
        faults: 0,
        reliability: None,
    }
}

/// The zero-worker reference: one process, whole fault list at once.
fn local_campaign(spec: &CampaignSpec) -> Vec<FaultOutcome> {
    let net = build_model(&spec.model).unwrap();
    let universe = FaultUniverse::standard(&net);
    let prepared = PreparedCampaign::new(spec, None).unwrap();
    let sim = FaultSimulator::new(&net, spec.sim);
    sim.detect(&universe, universe.faults(), &prepared.tests).per_fault
}

/// Runs the campaign through the coordinator with `workers` in-process
/// worker threads and the given chunk size.
fn distributed_campaign(
    spec: &CampaignSpec,
    workers: usize,
    chunk_size: usize,
) -> Vec<FaultOutcome> {
    let net = build_model(&spec.model).unwrap();
    let universe = FaultUniverse::standard(&net);
    let fault_ids: Vec<usize> = (0..universe.len()).collect();

    let coord = Arc::new(Coordinator::new(CoordinatorConfig {
        chunk_size,
        lease_ms: 60_000,
        heartbeat_ms: 1000,
        idle_retry_ms: 1,
    }));
    let campaign = coord.submit(spec.clone(), fault_ids, None);

    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let coord = Arc::clone(&coord);
            std::thread::spawn(move || {
                let name = format!("w{w}");
                coord.hello(&name);
                let mut prepared: Option<PreparedCampaign> = None;
                loop {
                    match coord.grant(&name) {
                        Grant::Lease(grant) => {
                            let p = match &prepared {
                                Some(p) => p,
                                None => {
                                    let spec = coord.payload(grant.campaign).expect("payload");
                                    prepared = Some(
                                        PreparedCampaign::new(&spec, Some(1)).expect("prepare"),
                                    );
                                    prepared.as_ref().unwrap()
                                }
                            };
                            let outcomes =
                                p.run_chunk(&grant.fault_ids, &CancelToken::new()).expect("chunk");
                            assert!(coord.result(
                                &name,
                                grant.lease,
                                grant.campaign,
                                grant.chunk.index,
                                grant.epoch,
                                outcomes,
                                None
                            ));
                        }
                        // No pending chunks left; any still-leased ones
                        // belong to live sibling threads.
                        Grant::Idle { .. } | Grant::Shutdown => return,
                    }
                }
            })
        })
        .collect();

    let merged = coord.wait(campaign, &CancelToken::new(), |_| {}).unwrap();
    for h in handles {
        h.join().unwrap();
    }
    merged
}

fn assert_bit_identical(local: &[FaultOutcome], merged: &[FaultOutcome], tag: &str) {
    assert_eq!(local.len(), merged.len(), "{tag}: fault count");
    for (l, m) in local.iter().zip(merged) {
        assert_eq!(l.fault_id, m.fault_id, "{tag}: fault order");
        assert_eq!(l.detected, m.detected, "{tag}: fault {} detection", l.fault_id);
        assert_eq!(
            l.distance.to_bits(),
            m.distance.to_bits(),
            "{tag}: fault {} distance bits",
            l.fault_id
        );
        assert_eq!(l.class_diff, m.class_diff, "{tag}: fault {} class diff", l.fault_id);
    }
    assert_eq!(verdict_digest(local), verdict_digest(merged), "{tag}: digest");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random small networks and stimuli: the merged distributed result
    /// equals the local result bit-for-bit, whatever the worker count
    /// and chunk size.
    #[test]
    fn distributed_campaigns_are_bit_identical_to_local(
        seed in 0u64..1000,
        inputs in 3usize..6,
        hidden in 4usize..9,
        outputs in 2usize..4,
        ticks in 8usize..16,
        workers_idx in 0usize..3,
        chunk_idx in 0usize..3,
    ) {
        let workers = [1usize, 2, 4][workers_idx];
        let chunk_size = [1usize, 7, 64][chunk_idx];
        let spec = campaign_spec(seed, inputs, hidden, outputs, ticks);
        let local = local_campaign(&spec);
        let merged = distributed_campaign(&spec, workers, chunk_size);
        assert_bit_identical(&local, &merged, &format!("w={workers} c={chunk_size}"));
    }
}

/// The fixed-grid companion of the property test: one campaign, every
/// worker count the issue names (0 = the local path), every chunk size.
#[test]
fn worker_count_grid_is_bit_identical() {
    let spec = campaign_spec(77, 5, 8, 3, 12);
    let local = local_campaign(&spec);
    for workers in [1usize, 2, 4] {
        for chunk_size in [1usize, 7, 64] {
            let merged = distributed_campaign(&spec, workers, chunk_size);
            assert_bit_identical(&local, &merged, &format!("w={workers} c={chunk_size}"));
        }
    }
}
