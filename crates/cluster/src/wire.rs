//! Protocol v5: the coordinator/worker messages of distributed
//! campaigns, plus the newline-JSON line codec both the job server and
//! the cluster share.
//!
//! Workers talk to the *same* TCP port as job clients: the server tries
//! to parse each incoming line as a service `Request` first and as a
//! [`WorkerMsg`] second (the two enums have disjoint variant names, so
//! routing is unambiguous). Every [`WorkerMsg`] is answered with exactly
//! one [`CoordMsg`]. See `DESIGN.md` §12 for the chunk/lease state
//! machine and an example `nc` session.

use serde::{Deserialize, Serialize};
use snn_faults::{ChunkRange, FaultOutcome, FaultSimConfig};
use std::io::{BufRead, Write};

/// Protocol revision; incremented on breaking wire changes.
///
/// * `2` — `JobEvent` became a sequenced envelope and
///   `Request::Metrics` was added.
/// * `3` — cluster messages ([`WorkerMsg`]/[`CoordMsg`]) joined the
///   port, `Request::ClusterStatus` was added, and job results gained a
///   `verdict_digest`.
/// * `4` — reliability campaigns: job specs/results and
///   [`CampaignSpec`] gained optional `reliability` payloads, and
///   persisted job records a `schema` version. All additions are
///   `Option` fields, so v3 records and messages still decode.
/// * `5` — distributed tracing: [`LeaseGrant`] gained an optional
///   [`TraceContext`] stamped by the coordinator, and
///   [`WorkerMsg::Result`] an optional `spans` batch of the worker's
///   finished trace spans. Both additions are `Option` fields, so v4
///   messages still decode (an untraced campaign is simply `None`).
/// * `6` — execution engines: `FaultSimConfig` (carried inside
///   [`CampaignSpec`] and job specs) gained an optional `engine`
///   selector, and job specs/results transport it end to end. All
///   additions are `Option` fields, so v5 messages still decode
///   (`None` means [`Engine::Auto`](snn_faults::Engine::Auto)); the
///   selector never changes verdicts, only execution strategy.
pub const PROTOCOL_VERSION: u64 = 6;

/// The trace context a coordinator stamps into every [`LeaseGrant`] of a
/// traced campaign. Workers root their chunk spans at this context and
/// ship them back on [`WorkerMsg::Result`]; the coordinator re-parents
/// the batch under `parent_span_id`, merging all workers into one tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// Trace identifier, unique per coordinator process (the campaign
    /// span's id doubles as the trace id).
    pub trace_id: u64,
    /// Id of the coordinator-side span (`cluster.campaign`) that worker
    /// subtrees are merged under.
    pub parent_span_id: u64,
}

/// What network a campaign (or job) runs against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Load a model file (as written by `snn-mtfc new` /
    /// `Network::save`) from this path on the **server's** filesystem.
    /// Workers resolve the same path on their own filesystem, so
    /// distributed campaigns over `Path` models require a shared one.
    Path(String),
    /// Build a randomly initialized fully-connected network in-process:
    /// `inputs → hidden[0] → … → outputs`, seeded for reproducibility.
    /// Bit-identical on every process that builds it.
    Synthetic {
        /// Input features.
        inputs: usize,
        /// Hidden dense layer widths, in order.
        hidden: Vec<usize>,
        /// Output features (classes).
        outputs: usize,
        /// Weight-initialization seed.
        seed: u64,
    },
}

/// Everything a worker needs to execute any chunk of one campaign. Sent
/// once per campaign per worker (on [`WorkerMsg::Fetch`]) and cached
/// worker-side; leases then reference the campaign by id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Coordinator-assigned campaign id.
    pub id: u64,
    /// The network under test, rebuilt deterministically by each worker.
    pub model: ModelSpec,
    /// The test stimuli in the `.events` text format
    /// (`snn_testgen::parse_events`), one entry per test input. The
    /// format is an exact transport for spike tensors.
    pub events: Vec<String>,
    /// Simulator configuration. Workers override `threads` with their
    /// own `--threads` setting — thread count never changes verdicts.
    pub sim: FaultSimConfig,
    /// Total faults in the campaign's fault list (diagnostics only; the
    /// authoritative list is carried per-lease as explicit ids).
    pub faults: usize,
    /// Reliability-campaign payload (protocol v4). When present the
    /// campaign scores accuracy impact instead of detection: lease
    /// `fault_ids` are fault-*configuration* indices re-sampled
    /// worker-side from this spec, and `events` may be empty (the
    /// evaluation set is procedural). `None` — the v3 wire shape — means
    /// a plain detection campaign.
    pub reliability: Option<snn_reliability::ReliabilitySpec>,
}

/// One granted lease: the chunk, its fencing epoch, and the explicit
/// fault ids to simulate (which makes collapsed campaigns — whose fault
/// list is the representative subset — need no worker-side knowledge of
/// collapsing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseGrant {
    /// Unique lease id (never reused within a coordinator's lifetime).
    pub lease: u64,
    /// Campaign the chunk belongs to.
    pub campaign: u64,
    /// The chunk, as planned by `snn_faults::chunk::plan`.
    pub chunk: ChunkRange,
    /// Fencing epoch of the chunk: bumped every time the chunk is
    /// re-issued, so results from expired leases are recognizably stale.
    pub epoch: u64,
    /// Universe fault ids to simulate, in outcome order.
    pub fault_ids: Vec<usize>,
    /// Milliseconds until the lease expires unless heartbeats extend it.
    pub deadline_in_ms: u64,
    /// Trace context of a traced campaign (protocol v5). `None` — the
    /// v4 wire shape — means tracing is off and the worker ships no
    /// spans back.
    pub trace: Option<TraceContext>,
}

/// Worker → coordinator messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerMsg {
    /// First message on a worker connection: announce the worker's name
    /// and protocol revision. Answered with [`CoordMsg::Welcome`].
    Hello {
        /// Worker name, unique per cluster (e.g. `worker-<pid>`).
        name: String,
        /// The worker's [`PROTOCOL_VERSION`].
        protocol: u64,
    },
    /// Ask for work. Answered with [`CoordMsg::Granted`],
    /// [`CoordMsg::Idle`] or [`CoordMsg::Shutdown`].
    Lease {
        /// Worker name.
        worker: String,
    },
    /// Fetch a campaign's payload (model, stimuli, simulator config).
    /// Answered with [`CoordMsg::Campaign`].
    Fetch {
        /// Worker name.
        worker: String,
        /// Campaign id from a [`LeaseGrant`].
        campaign: u64,
    },
    /// Keep a lease alive. Answered with [`CoordMsg::HeartbeatAck`];
    /// `live: false` means the lease expired and the chunk was (or will
    /// be) re-issued — the worker should abandon it.
    Heartbeat {
        /// Worker name.
        worker: String,
        /// The lease being extended.
        lease: u64,
    },
    /// Deliver a chunk's outcomes. Answered with
    /// [`CoordMsg::ResultAck`]; `accepted: false` marks a stale result
    /// (expired lease / wrong epoch) that was discarded — exactly-once
    /// accounting keeps only the result matching the live lease.
    Result {
        /// Worker name.
        worker: String,
        /// The lease the work ran under.
        lease: u64,
        /// Campaign id.
        campaign: u64,
        /// Chunk index within the campaign.
        chunk: usize,
        /// The fencing epoch from the lease.
        epoch: u64,
        /// Per-fault outcomes, in lease `fault_ids` order.
        outcomes: Vec<FaultOutcome>,
        /// Finished trace spans of this chunk (protocol v5), present only
        /// when the lease carried a [`TraceContext`]. Span ids are local
        /// to the worker's collector; the coordinator remaps them on
        /// adoption.
        spans: Option<Vec<snn_obs::SpanRecord>>,
    },
    /// Polite disconnect. Answered with [`CoordMsg::Shutdown`].
    Bye {
        /// Worker name.
        worker: String,
    },
}

/// Coordinator → worker messages (one per [`WorkerMsg`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoordMsg {
    /// Registration accepted; carries the cluster's timing contract.
    Welcome {
        /// The coordinator's [`PROTOCOL_VERSION`].
        protocol: u64,
        /// Lease lifetime granted per chunk, in milliseconds.
        lease_ms: u64,
        /// How often the worker should heartbeat, in milliseconds.
        heartbeat_ms: u64,
    },
    /// Work: one chunk under a lease.
    Granted(LeaseGrant),
    /// No chunk available right now; ask again in `retry_ms`.
    Idle {
        /// Suggested retry delay, in milliseconds.
        retry_ms: u64,
    },
    /// A campaign payload (answer to [`WorkerMsg::Fetch`]).
    Campaign(CampaignSpec),
    /// Lease liveness: `false` means the lease expired.
    HeartbeatAck {
        /// Whether the heartbeated lease is still live.
        live: bool,
    },
    /// Result bookkeeping: `false` means the result was stale and
    /// discarded.
    ResultAck {
        /// Whether the result was merged into the campaign.
        accepted: bool,
    },
    /// The coordinator is shutting down (or acknowledged a `Bye`);
    /// the worker should exit.
    Shutdown,
    /// The request failed.
    Error {
        /// One-line diagnostic.
        message: String,
    },
}

/// A point-in-time view of the worker pool and chunk bookkeeping,
/// served over `Request::ClusterStatus` and printed by
/// `snn-mtfc cluster-status`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterStatus {
    /// Every worker that ever said `Hello`, by name.
    pub workers: Vec<WorkerStatus>,
    /// Campaigns not yet fully merged.
    pub campaigns_active: usize,
    /// Chunks waiting for a lease, across campaigns.
    pub chunks_pending: usize,
    /// Chunks currently under a live lease.
    pub chunks_leased: usize,
    /// Chunks completed (exactly-once accounted) since start.
    pub chunks_completed: u64,
    /// Chunks re-issued after a lease expiry since start.
    pub chunks_reissued: u64,
    /// Stale results discarded since start.
    pub results_stale: u64,
}

/// One worker's view in a [`ClusterStatus`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerStatus {
    /// The name from its `Hello`.
    pub name: String,
    /// Milliseconds since the coordinator last heard from it.
    pub last_seen_ms: u64,
    /// Chunks this worker completed (accepted results).
    pub chunks_completed: u64,
    /// Cumulative lease-to-result wall-clock, in milliseconds — the
    /// coordinator-side view of worker busy time.
    pub busy_ms: u64,
    /// The lease it currently holds, if any.
    pub lease: Option<HeldLease>,
}

/// The chunk a worker currently holds, in a [`WorkerStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeldLease {
    /// Lease id.
    pub lease: u64,
    /// Campaign id.
    pub campaign: u64,
    /// Chunk index.
    pub chunk: usize,
    /// Milliseconds until the lease expires without a heartbeat.
    pub expires_in_ms: u64,
}

/// Writes `value` as one JSON line and flushes.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_line<T: serde::Serialize>(w: &mut impl Write, value: &T) -> std::io::Result<()> {
    let mut line = serde::json::to_string(value);
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads one JSON line. `Ok(None)` on clean EOF; decode failures carry a
/// one-line diagnostic.
///
/// # Errors
///
/// Propagates I/O errors from `r`.
pub fn read_line<T: serde::Deserialize>(
    r: &mut impl BufRead,
) -> std::io::Result<Option<Result<T, String>>> {
    Ok(read_raw_line(r)?.map(|line| {
        serde::json::from_str::<T>(line.trim()).map_err(|e| format!("bad message: {e}"))
    }))
}

/// Reads one non-blank line without decoding it — the server's entry
/// point for dual-protocol routing. `Ok(None)` on clean EOF.
///
/// # Errors
///
/// Propagates I/O errors from `r`.
pub fn read_raw_line(r: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        if !line.trim().is_empty() {
            return Ok(Some(line));
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only shorthand
mod tests {
    use super::*;

    fn round_trip<T: serde::Serialize + serde::Deserialize + PartialEq + std::fmt::Debug>(v: &T) {
        let s = serde::json::to_string(v);
        let back: T = serde::json::from_str(&s).unwrap();
        assert_eq!(&back, v, "round trip of {s}");
    }

    fn grant() -> LeaseGrant {
        LeaseGrant {
            lease: 7,
            campaign: 2,
            chunk: ChunkRange { index: 1, start: 64, len: 64 },
            epoch: 3,
            fault_ids: vec![64, 65, 66],
            deadline_in_ms: 5000,
            trace: Some(TraceContext { trace_id: 11, parent_span_id: 11 }),
        }
    }

    #[test]
    fn worker_messages_round_trip() {
        round_trip(&WorkerMsg::Hello { name: "w1".into(), protocol: PROTOCOL_VERSION });
        round_trip(&WorkerMsg::Lease { worker: "w1".into() });
        round_trip(&WorkerMsg::Fetch { worker: "w1".into(), campaign: 2 });
        round_trip(&WorkerMsg::Heartbeat { worker: "w1".into(), lease: 7 });
        round_trip(&WorkerMsg::Result {
            worker: "w1".into(),
            lease: 7,
            campaign: 2,
            chunk: 1,
            epoch: 3,
            outcomes: vec![FaultOutcome {
                fault_id: 64,
                detected: true,
                distance: 2.5,
                class_diff: None,
            }],
            spans: Some(vec![snn_obs::SpanRecord {
                id: 4,
                parent: None,
                name: "cluster.chunk".into(),
                start_us: 10,
                end_us: 250,
                attrs: vec![("lease".into(), "7".into())],
            }]),
        });
        round_trip(&WorkerMsg::Bye { worker: "w1".into() });
    }

    #[test]
    fn coordinator_messages_round_trip() {
        round_trip(&CoordMsg::Welcome {
            protocol: PROTOCOL_VERSION,
            lease_ms: 5000,
            heartbeat_ms: 1000,
        });
        round_trip(&CoordMsg::Granted(grant()));
        round_trip(&CoordMsg::Idle { retry_ms: 50 });
        round_trip(&CoordMsg::Campaign(CampaignSpec {
            id: 2,
            model: ModelSpec::Synthetic { inputs: 4, hidden: vec![6], outputs: 2, seed: 1 },
            events: vec!["# snn-mtfc test: 2 ticks x 4 features, 1 chunks\n0 1\n".into()],
            sim: FaultSimConfig::default(),
            faults: 128,
            reliability: None,
        }));
        round_trip(&CoordMsg::HeartbeatAck { live: false });
        round_trip(&CoordMsg::ResultAck { accepted: true });
        round_trip(&CoordMsg::Shutdown);
        round_trip(&CoordMsg::Error { message: "unknown campaign".into() });
    }

    #[test]
    fn reliability_campaign_round_trips() {
        use snn_reliability::{
            EvalSpec, FaultMapSpec, MemoryRegion, MitigationKind, RegionSpec, ReliabilitySpec,
            WeightFaultModel,
        };
        round_trip(&CampaignSpec {
            id: 3,
            model: ModelSpec::Synthetic { inputs: 4, hidden: vec![6], outputs: 2, seed: 1 },
            events: Vec::new(),
            sim: FaultSimConfig::default(),
            faults: 16,
            reliability: Some(ReliabilitySpec {
                map: FaultMapSpec {
                    regions: vec![RegionSpec {
                        region: MemoryRegion::Weights { layer: 0, tensor: 0 },
                        ber: 0.01,
                    }],
                    configs: 16,
                    seed: 42,
                    weight_model: WeightFaultModel::StuckSat,
                    window: Some(snn_faults::TransientWindow::new(2, 9)),
                },
                eval: EvalSpec { samples: 8, steps: 20, rate: 0.3, seed: 7 },
                mitigation: MitigationKind::RangeRestriction,
            }),
        });
    }

    /// A v4 lease grant (no `trace` field on the wire) and a v4 result
    /// (no `spans` field) still decode — both additions are `Option`s.
    #[test]
    fn v4_messages_still_decode() {
        let v4_grant = r#"{"Granted":{"lease":7,"campaign":2,"chunk":{"index":1,"start":64,"len":64},"epoch":3,"fault_ids":[64],"deadline_in_ms":5000}}"#;
        let msg: CoordMsg = serde::json::from_str(v4_grant).unwrap();
        let CoordMsg::Granted(g) = msg else { panic!("not a grant") };
        assert_eq!(g.lease, 7);
        assert_eq!(g.trace, None);

        let v4_result = r#"{"Result":{"worker":"w1","lease":7,"campaign":2,"chunk":1,"epoch":3,"outcomes":[]}}"#;
        let msg: WorkerMsg = serde::json::from_str(v4_result).unwrap();
        let WorkerMsg::Result { spans, .. } = msg else { panic!("not a result") };
        assert_eq!(spans, None);
    }

    /// A v3 campaign payload (no `reliability` field on the wire) still
    /// decodes — the field is additive.
    #[test]
    fn v3_campaign_spec_still_decodes() {
        let v3 = r#"{"id":2,"model":{"Synthetic":{"inputs":4,"hidden":[6],"outputs":2,"seed":1}},"events":["0 1\n"],"sim":{"threads":0,"prefix_cache":true,"early_exit":true,"activity_filter":true,"record_class_diffs":false},"faults":128}"#;
        let spec: CampaignSpec = serde::json::from_str(v3).unwrap();
        assert_eq!(spec.id, 2);
        assert_eq!(spec.reliability, None);
    }

    #[test]
    fn status_round_trips() {
        round_trip(&ClusterStatus {
            workers: vec![WorkerStatus {
                name: "w1".into(),
                last_seen_ms: 12,
                chunks_completed: 4,
                busy_ms: 880,
                lease: Some(HeldLease { lease: 7, campaign: 2, chunk: 1, expires_in_ms: 4100 }),
            }],
            campaigns_active: 1,
            chunks_pending: 3,
            chunks_leased: 2,
            chunks_completed: 9,
            chunks_reissued: 1,
            results_stale: 1,
        });
    }

    /// The bit-identity guarantee rides on this: a fault outcome's f32
    /// distance survives the JSON wire with its exact bit pattern.
    #[test]
    fn outcome_distance_bits_survive_the_wire() {
        for bits in [0x3dcc_cccd_u32, 0x3f80_0001, 0x0000_0001, 0x7f7f_ffff] {
            let o = FaultOutcome {
                fault_id: 1,
                detected: true,
                distance: f32::from_bits(bits),
                class_diff: Some(vec![f32::from_bits(bits ^ 1)]),
            };
            let s = serde::json::to_string(&o);
            let back: FaultOutcome = serde::json::from_str(&s).unwrap();
            assert_eq!(back.distance.to_bits(), bits, "wire mangled {bits:#x} ({s})");
            assert_eq!(back.class_diff.unwrap()[0].to_bits(), bits ^ 1);
        }
    }

    #[test]
    fn raw_line_reader_skips_blanks_and_reports_eof() {
        let mut r = std::io::BufReader::new(&b"\n  \n{\"x\":1}\n"[..]);
        assert_eq!(read_raw_line(&mut r).unwrap().unwrap().trim(), "{\"x\":1}");
        assert!(read_raw_line(&mut r).unwrap().is_none());
    }
}
