//! Deterministic campaign materialization: rebuilding the network, the
//! fault universe and the test stimuli of a [`CampaignSpec`] inside a
//! worker process, bit-identically to the coordinator's own view.

use crate::wire::{CampaignSpec, ModelSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_faults::chunk::select_faults;
use snn_faults::progress::{CancelToken, NullSink};
use snn_faults::{CampaignError, ChunkCampaignError, FaultOutcome, FaultUniverse};
use snn_model::{LifParams, Network, NetworkBuilder};
use snn_reliability::ReliabilityEvaluator;
use snn_tensor::Tensor;
use std::io::BufReader;

/// Builds the network a campaign (or job) runs against.
///
/// `Synthetic` models are a pure function of their spec — every process
/// that builds one gets bit-identical weights. `Path` models are read
/// from the local filesystem.
///
/// # Errors
///
/// A one-line diagnostic when a `Path` model cannot be opened or parsed.
pub fn build_model(spec: &ModelSpec) -> Result<Network, String> {
    match spec {
        ModelSpec::Path(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| format!("cannot open model {path:?}: {e}"))?;
            Network::load(&mut BufReader::new(file))
                .map_err(|e| format!("cannot load model {path:?}: {e}"))
        }
        ModelSpec::Synthetic { inputs, hidden, outputs, seed } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            let mut builder = NetworkBuilder::new(*inputs, LifParams::default());
            for &h in hidden {
                builder = builder.dense(h);
            }
            Ok(builder.dense(*outputs).build(&mut rng))
        }
    }
}

/// A campaign spec materialized for execution: the rebuilt network, its
/// standard fault universe and the decoded test stimuli. Workers build
/// one per campaign and reuse it across every leased chunk.
pub struct PreparedCampaign {
    /// Campaign id.
    pub id: u64,
    /// The rebuilt network under test.
    pub net: Network,
    /// The standard fault universe over `net` (the id space of every
    /// lease's `fault_ids`).
    pub universe: FaultUniverse,
    /// The decoded test stimuli, `[T × input_features]` each.
    pub tests: Vec<Tensor>,
    /// Simulator configuration (threads already overridden, if asked).
    pub sim: snn_faults::FaultSimConfig,
    /// Present for reliability campaigns: lease `fault_ids` are fault-map
    /// configuration indices scored by this evaluator instead of
    /// universe fault ids run through detection.
    pub reliability: Option<ReliabilityEvaluator>,
}

impl PreparedCampaign {
    /// Materializes `spec`. `threads` overrides the spec's worker thread
    /// count when `Some` — thread count never changes verdicts.
    ///
    /// # Errors
    ///
    /// A one-line diagnostic when the model cannot be built or a
    /// stimulus fails to parse.
    pub fn new(spec: &CampaignSpec, threads: Option<usize>) -> Result<Self, String> {
        let net = build_model(&spec.model)?;
        let universe = FaultUniverse::standard(&net);
        let tests = spec
            .events
            .iter()
            .enumerate()
            .map(|(i, text)| {
                snn_testgen::parse_events(text)
                    .map_err(|e| format!("campaign {} stimulus {i}: {e}", spec.id))
            })
            .collect::<Result<Vec<_>, String>>()?;
        // Reliability campaigns generate their own evaluation inputs from
        // the spec, so they legitimately carry no detection stimuli.
        if tests.is_empty() && spec.reliability.is_none() {
            return Err(format!("campaign {} carries no test stimuli", spec.id));
        }
        let reliability = spec
            .reliability
            .as_ref()
            .map(|r| {
                ReliabilityEvaluator::new(net.clone(), r.clone())
                    .map_err(|e| format!("campaign {}: {e}", spec.id))
            })
            .transpose()?;
        let mut sim = spec.sim;
        if let Some(threads) = threads {
            sim.threads = threads;
        }
        Ok(Self { id: spec.id, net, universe, tests, sim, reliability })
    }

    /// Simulates one chunk: the explicit `fault_ids` of a lease, in
    /// order. Outcomes are bit-identical to the same ids inside a
    /// single-process whole-campaign run, whichever execution engine the
    /// spec's `sim.engine` selects — chunk verdicts are engine-invariant
    /// by the packed engine's bit-exactness contract.
    ///
    /// # Errors
    ///
    /// Propagates [`ChunkCampaignError`] (unknown ids, cancellation,
    /// ill-formed faults).
    pub fn run_chunk(
        &self,
        fault_ids: &[usize],
        cancel: &CancelToken,
    ) -> Result<Vec<FaultOutcome>, ChunkCampaignError> {
        if let Some(eval) = &self.reliability {
            return eval
                .evaluate_chunk(fault_ids, self.sim.threads, cancel)
                .map_err(|_| ChunkCampaignError::Campaign(CampaignError::Cancelled));
        }
        let faults = select_faults(&self.universe, fault_ids)?;
        let outcome = snn_batch::engine_detect(
            &self.net,
            self.sim,
            &self.universe,
            &faults,
            &self.tests,
            &NullSink,
            cancel,
        )?;
        Ok(outcome.per_fault)
    }

    /// The engine chunks of this campaign actually execute under, after
    /// [`Engine::Auto`](snn_faults::Engine::Auto) resolution against the
    /// rebuilt network.
    pub fn resolved_engine(&self) -> snn_faults::Engine {
        snn_batch::resolve_engine(&self.net, self.sim.engine)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only shorthand
mod tests {
    use super::*;
    use snn_faults::{FaultSimConfig, FaultSimulator};

    fn spec() -> CampaignSpec {
        let model = ModelSpec::Synthetic { inputs: 5, hidden: vec![8], outputs: 3, seed: 21 };
        let net = build_model(&model).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let stim = snn_tensor::init::bernoulli(&mut rng, snn_tensor::Shape::d2(16, 5), 0.4);
        let test = snn_testgen::GeneratedTest::from_chunks(vec![stim], 5, vec![false; 11]);
        let mut events = Vec::new();
        test.write_events(&mut events).unwrap();
        let _ = net;
        CampaignSpec {
            id: 1,
            model,
            events: vec![String::from_utf8(events).unwrap()],
            sim: FaultSimConfig::default(),
            faults: 0,
            reliability: None,
        }
    }

    fn reliability_spec() -> CampaignSpec {
        use snn_reliability::{
            EvalSpec, FaultMapSpec, MitigationKind, ReliabilitySpec, WeightFaultModel,
        };
        let model = ModelSpec::Synthetic { inputs: 5, hidden: vec![8], outputs: 3, seed: 21 };
        let net = build_model(&model).unwrap();
        let rspec = ReliabilitySpec {
            map: FaultMapSpec::uniform(&net, 0.02, 0.01, 6, 33, WeightFaultModel::StuckSat, None),
            eval: EvalSpec { samples: 4, steps: 12, rate: 0.3, seed: 7 },
            mitigation: MitigationKind::RangeRestriction,
        };
        CampaignSpec {
            id: 2,
            model,
            events: Vec::new(),
            sim: FaultSimConfig { threads: 1, ..FaultSimConfig::default() },
            faults: rspec.map.configs,
            reliability: Some(rspec),
        }
    }

    #[test]
    fn synthetic_models_rebuild_bit_identically() {
        let spec = ModelSpec::Synthetic { inputs: 6, hidden: vec![10, 7], outputs: 4, seed: 9 };
        let a = build_model(&spec).unwrap();
        let b = build_model(&spec).unwrap();
        let mut wa = Vec::new();
        let mut wb = Vec::new();
        a.save(&mut wa).unwrap();
        b.save(&mut wb).unwrap();
        assert_eq!(wa, wb, "two builds of the same spec must serialize identically");
    }

    #[test]
    fn prepared_campaign_chunks_match_direct_simulation() {
        let spec = spec();
        let prepared = PreparedCampaign::new(&spec, Some(1)).unwrap();
        assert_eq!(prepared.sim.threads, 1, "thread override applies");
        let whole = FaultSimulator::new(&prepared.net, prepared.sim).detect(
            &prepared.universe,
            prepared.universe.faults(),
            &prepared.tests,
        );
        let ids: Vec<usize> = (3..9).collect();
        let chunk = prepared.run_chunk(&ids, &CancelToken::new()).unwrap();
        assert_eq!(chunk.as_slice(), &whole.per_fault[3..9]);
    }

    #[test]
    fn reliability_campaign_runs_without_stimuli_and_chunks_exactly() {
        let spec = reliability_spec();
        let prepared = PreparedCampaign::new(&spec, Some(1)).unwrap();
        let eval = prepared.reliability.as_ref().unwrap();
        let all: Vec<usize> = (0..spec.faults).collect();
        let whole = eval.evaluate_chunk(&all, 1, &CancelToken::new()).unwrap();
        let mut stitched = Vec::new();
        for ids in all.chunks(2) {
            stitched.extend(prepared.run_chunk(ids, &CancelToken::new()).unwrap());
        }
        assert_eq!(stitched, whole, "leased chunks must merge bit-identically");
    }

    #[test]
    fn bad_stimulus_and_empty_stimuli_are_diagnosed() {
        let mut broken = spec();
        broken.events[0] = "not an events file".into();
        let err = PreparedCampaign::new(&broken, None).map(|_| ()).unwrap_err();
        assert!(err.contains("stimulus 0"), "{err}");
        let mut empty = spec();
        empty.events.clear();
        let err = PreparedCampaign::new(&empty, None).map(|_| ()).unwrap_err();
        assert!(err.contains("no test stimuli"), "{err}");
    }
}
