//! The campaign coordinator: shards fault lists into chunks, hands
//! chunks to workers as leases with heartbeats and deadlines, re-issues
//! expired leases under a bumped epoch, and merges accepted chunk
//! results into a campaign outcome bit-identical to a single-process
//! run.
//!
//! Execution is *at-least-once* (an expired lease's chunk runs again),
//! accounting is *exactly-once*: a result is merged only while its
//! `(lease, epoch)` pair matches the chunk's live lease, so the slow
//! original and the re-issued copy can never both count.
//!
//! The coordinator holds a single lock (`cluster.coordinator`, ranked
//! last in the workspace lock order) and never calls out — progress
//! sinks, metrics and the event bus are only touched with the lock
//! released.

use crate::wire::{
    CampaignSpec, ClusterStatus, HeldLease, LeaseGrant, TraceContext, WorkerStatus,
    PROTOCOL_VERSION,
};
use parking_lot::{Condvar, Mutex};
use snn_faults::chunk::{merge_chunks, plan, MergeError};
use snn_faults::progress::CancelToken;
use snn_faults::{ChunkRange, FaultOutcome};
use snn_obs::SpanRecord;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Coordinator tunables.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorConfig {
    /// Faults per chunk (0 is treated as 1).
    pub chunk_size: usize,
    /// Lease lifetime; a chunk whose lease sees no heartbeat for this
    /// long is re-issued.
    pub lease_ms: u64,
    /// Heartbeat cadence advertised to workers (workers beat at this
    /// rate; the lease outlives several missed beats).
    pub heartbeat_ms: u64,
    /// Retry delay advertised to idle workers.
    pub idle_retry_ms: u64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self { chunk_size: 256, lease_ms: 5000, heartbeat_ms: 1000, idle_retry_ms: 50 }
    }
}

/// Lifecycle of one chunk. `Pending → Leased → Done`, with
/// `Leased → Pending` (epoch bumped) on lease expiry.
enum ChunkState {
    /// Waiting for a worker; `epoch` counts prior expired leases.
    Pending { epoch: u64 },
    /// Under a lease until `deadline` (heartbeats extend it).
    Leased { epoch: u64, lease: u64, worker: String, deadline: Duration },
    /// Outcomes accepted — terminal.
    Done { outcomes: Vec<FaultOutcome> },
}

struct CampaignState {
    spec: CampaignSpec,
    fault_ids: Vec<usize>,
    chunks: Vec<ChunkRange>,
    states: Vec<ChunkState>,
    done: usize,
    /// Trace context stamped into every lease grant of this campaign.
    trace: Option<TraceContext>,
    /// Per-worker trace bookkeeping for a traced campaign, keyed by
    /// worker name so the merged tree is deterministic.
    worker_spans: BTreeMap<String, WorkerTrace>,
}

/// One worker's subtree in a traced campaign: the pre-allocated id of
/// its synthetic `worker:<name>` wrapper span, plus the chunk spans
/// accumulated under it.
struct WorkerTrace {
    wrapper: u64,
    busy: Duration,
    chunks: u64,
}

#[derive(Default)]
struct WorkerEntry {
    last_seen: Duration,
    chunks_completed: u64,
    busy_ms: u64,
    /// `(lease, campaign, chunk, granted_at)` while one is held.
    lease: Option<(u64, u64, usize, Duration)>,
}

#[derive(Default)]
struct State {
    // BTreeMap (not HashMap) so that every iteration — lease grants,
    // gauge refreshes, status snapshots — walks workers and campaigns
    // in a deterministic order (snn-lint L-DET-ITER is clean here by
    // construction, no sorting at the use sites).
    workers: BTreeMap<String, WorkerEntry>,
    campaigns: BTreeMap<u64, CampaignState>,
    next_campaign: u64,
    next_lease: u64,
    shutdown: bool,
    chunks_completed: u64,
    chunks_reissued: u64,
    results_stale: u64,
}

/// What a lease request gets.
#[derive(Debug, Clone, PartialEq)]
pub enum Grant {
    /// A chunk under a fresh lease.
    Lease(LeaseGrant),
    /// Nothing to do; retry after this many milliseconds.
    Idle {
        /// Suggested retry delay.
        retry_ms: u64,
    },
    /// The coordinator is shutting down.
    Shutdown,
}

/// Error waiting for a campaign (or for workers) to complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The caller's cancel token tripped.
    Cancelled,
    /// The coordinator shut down mid-wait.
    Shutdown,
    /// No such campaign.
    UnknownCampaign {
        /// The requested id.
        campaign: u64,
    },
    /// Fewer workers than expected registered within the wait budget.
    WorkersUnavailable {
        /// Workers the caller required.
        expected: usize,
        /// Workers that had registered when the budget ran out.
        seen: usize,
    },
    /// Chunk results did not reassemble (a coordinator invariant
    /// violation — should be unreachable).
    Merge(MergeError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Cancelled => f.write_str("cluster campaign cancelled"),
            Self::Shutdown => f.write_str("coordinator shut down"),
            Self::UnknownCampaign { campaign } => write!(f, "no such campaign: {campaign}"),
            Self::WorkersUnavailable { expected, seen } => {
                write!(f, "expected {expected} worker(s), only {seen} registered")
            }
            Self::Merge(e) => write!(f, "chunk merge failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Aggregate progress of one campaign, for progress streaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignProgress {
    /// Faults in accepted chunks.
    pub done: usize,
    /// Faults in the campaign's fault list.
    pub total: usize,
    /// Detected faults in accepted chunks.
    pub detected: usize,
}

/// The lease-based chunk scheduler. One per server; shared between the
/// accept loop (worker messages) and job workers (campaign submission).
pub struct Coordinator {
    cfg: CoordinatorConfig,
    state: Mutex<State>,
    cv: Condvar,
}

impl Coordinator {
    /// Creates a coordinator and registers the workspace lock order.
    pub fn new(cfg: CoordinatorConfig) -> Self {
        crate::lock_order::register();
        // Touch the gauge and histogram sites once so a metrics dump
        // lists them (at zero) before the first lease or heartbeat.
        Self::refresh_gauges(&State::default());
        Self::observe_heartbeat_gap(None);
        Self {
            cfg,
            state: Mutex::named("cluster.coordinator", State::default()),
            cv: Condvar::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoordinatorConfig {
        &self.cfg
    }

    fn now() -> Duration {
        snn_obs::clock::monotonic()
    }

    /// Expires overdue leases: their chunks return to `Pending` under a
    /// bumped epoch and the holding workers' lease records are cleared.
    /// Called under the lock on every entry point, so expiry needs no
    /// reaper thread. Returns the number of leases expired.
    fn sweep(state: &mut State, now: Duration) -> u64 {
        let mut expired = 0u64;
        for campaign in state.campaigns.values_mut() {
            for chunk_state in &mut campaign.states {
                if let ChunkState::Leased { epoch, worker, deadline, .. } = chunk_state {
                    if *deadline < now {
                        let (epoch, worker) = (*epoch, worker.clone());
                        *chunk_state = ChunkState::Pending { epoch: epoch + 1 };
                        if let Some(entry) = state.workers.get_mut(&worker) {
                            entry.lease = None;
                        }
                        expired += 1;
                    }
                }
            }
        }
        state.chunks_reissued += expired;
        expired
    }

    fn record_expiries(expired: u64) {
        if expired > 0 {
            snn_obs::counter!(
                "snn_cluster_lease_expiries_total",
                "Leases that expired without a result."
            )
            .add(expired);
            snn_obs::counter!(
                "snn_cluster_chunks_reissued_total",
                "Chunks re-issued after a lease expiry."
            )
            .add(expired);
        }
    }

    fn refresh_gauges(state: &State) {
        let (mut pending, mut leased) = (0usize, 0usize);
        for campaign in state.campaigns.values() {
            for chunk_state in &campaign.states {
                match chunk_state {
                    ChunkState::Pending { .. } => pending += 1,
                    ChunkState::Leased { .. } => leased += 1,
                    ChunkState::Done { .. } => {}
                }
            }
        }
        let in_flight = state.workers.values().filter(|w| w.lease.is_some()).count();
        snn_obs::gauge!("snn_cluster_chunks_pending", "Chunks waiting for a lease.")
            .set(pending as f64);
        snn_obs::gauge!("snn_cluster_chunks_leased", "Chunks under a live lease.")
            .set(leased as f64);
        snn_obs::gauge!("snn_cluster_leases_in_flight", "Leases currently held by workers.")
            .set(in_flight as f64);
    }

    /// The single registration site for the heartbeat-latency histogram;
    /// `None` registers without observing.
    fn observe_heartbeat_gap(gap: Option<Duration>) {
        let hist = snn_obs::histogram!(
            "snn_cluster_heartbeat_gap_seconds",
            "Gap between consecutive sightings (heartbeat or result) of a worker.",
            snn_obs::metrics::DURATION_BUCKETS
        );
        if let Some(gap) = gap {
            hist.observe_duration(gap);
        }
    }

    /// Total duration of a span batch's roots — spans whose parent is
    /// absent or outside the batch — i.e. the worker-side wall clock the
    /// batch accounts for.
    fn root_total(batch: &[SpanRecord]) -> Duration {
        let ids: BTreeSet<u64> = batch.iter().map(|s| s.id).collect();
        batch
            .iter()
            .filter(|s| s.parent.is_none_or(|p| !ids.contains(&p)))
            .map(|s| Duration::from_micros(s.end_us.saturating_sub(s.start_us)))
            .sum()
    }

    /// Registers a worker (idempotent) and returns the timing contract
    /// for its `Welcome`: `(protocol, lease_ms, heartbeat_ms)`.
    pub fn hello(&self, name: &str) -> (u64, u64, u64) {
        let now = Self::now();
        {
            let mut state = self.state.lock();
            let entry = state.workers.entry(name.to_string()).or_default();
            entry.last_seen = now;
        }
        snn_obs::counter!("snn_cluster_workers_hello_total", "Worker registrations.").inc();
        (PROTOCOL_VERSION, self.cfg.lease_ms, self.cfg.heartbeat_ms)
    }

    /// Hands `worker` the next pending chunk (lowest campaign id,
    /// lowest chunk index) under a fresh lease, or tells it to idle or
    /// shut down.
    pub fn grant(&self, worker: &str) -> Grant {
        let now = Self::now();
        let mut state = self.state.lock();
        let expired = Self::sweep(&mut state, now);
        if state.shutdown {
            drop(state);
            Self::record_expiries(expired);
            return Grant::Shutdown;
        }
        if let Some(entry) = state.workers.get_mut(worker) {
            entry.last_seen = now;
        }
        // BTreeMap keys iterate in ascending campaign id already.
        let ids: Vec<u64> = state.campaigns.keys().copied().collect();
        let mut granted = None;
        'outer: for id in ids {
            let lease = state.next_lease;
            let Some(campaign) = state.campaigns.get_mut(&id) else { continue };
            for (k, chunk_state) in campaign.states.iter_mut().enumerate() {
                if let ChunkState::Pending { epoch } = *chunk_state {
                    let deadline = now + Duration::from_millis(self.cfg.lease_ms);
                    *chunk_state =
                        ChunkState::Leased { epoch, lease, worker: worker.to_string(), deadline };
                    let chunk = campaign.chunks[k];
                    let fault_ids = campaign.fault_ids[chunk.range()].to_vec();
                    granted = Some(LeaseGrant {
                        lease,
                        campaign: id,
                        chunk,
                        epoch,
                        fault_ids,
                        deadline_in_ms: self.cfg.lease_ms,
                        trace: campaign.trace,
                    });
                    break 'outer;
                }
            }
        }
        if let Some(grant) = &granted {
            state.next_lease += 1;
            if let Some(entry) = state.workers.get_mut(worker) {
                entry.lease = Some((grant.lease, grant.campaign, grant.chunk.index, now));
            }
        }
        Self::refresh_gauges(&state);
        drop(state);
        Self::record_expiries(expired);
        match granted {
            Some(grant) => {
                snn_obs::counter!("snn_cluster_chunks_issued_total", "Chunk leases granted.").inc();
                Grant::Lease(grant)
            }
            None => Grant::Idle { retry_ms: self.cfg.idle_retry_ms },
        }
    }

    /// The payload of a campaign, for a worker's `Fetch`.
    pub fn payload(&self, campaign: u64) -> Option<CampaignSpec> {
        let state = self.state.lock();
        state.campaigns.get(&campaign).map(|c| c.spec.clone())
    }

    /// Extends `worker`'s lease if it is still live; `false` tells the
    /// worker its lease expired and the chunk will run elsewhere.
    pub fn heartbeat(&self, worker: &str, lease: u64) -> bool {
        let now = Self::now();
        let mut state = self.state.lock();
        let expired = Self::sweep(&mut state, now);
        let mut gap = None;
        let held = match state.workers.get_mut(worker) {
            Some(entry) => {
                gap = Some(now.saturating_sub(entry.last_seen));
                entry.last_seen = now;
                entry.lease
            }
            None => None,
        };
        let mut live = false;
        if let Some((held_lease, campaign, chunk, _)) = held {
            if held_lease == lease {
                if let Some(campaign) = state.campaigns.get_mut(&campaign) {
                    if let Some(ChunkState::Leased { lease: l, deadline, .. }) =
                        campaign.states.get_mut(chunk)
                    {
                        if *l == lease {
                            *deadline = now + Duration::from_millis(self.cfg.lease_ms);
                            live = true;
                        }
                    }
                }
            }
        }
        drop(state);
        Self::record_expiries(expired);
        if let Some(gap) = gap {
            Self::observe_heartbeat_gap(Some(gap));
        }
        live
    }

    /// Accepts a chunk result iff `(lease, epoch)` matches the chunk's
    /// live lease — the exactly-once accounting gate. Stale results
    /// (expired lease, bumped epoch, already-done chunk, or a malformed
    /// outcome count) are discarded and reported with `false`.
    ///
    /// For a traced campaign, `spans` (the worker's drained collector)
    /// are adopted into the coordinator's collector under the worker's
    /// synthetic wrapper span; stale results' spans are discarded with
    /// the outcomes so a re-issued chunk never appears twice in the
    /// merged tree.
    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    pub fn result(
        &self,
        worker: &str,
        lease: u64,
        campaign: u64,
        chunk: usize,
        epoch: u64,
        outcomes: Vec<FaultOutcome>,
        spans: Option<Vec<SpanRecord>>,
    ) -> bool {
        let now = Self::now();
        // Grab the collector handle and size up the batch before taking
        // the coordinator lock; under the lock only atomic id allocation
        // and bookkeeping happen, adoption itself runs after release.
        let collector = snn_obs::trace::installed();
        let batch = spans.filter(|b| !b.is_empty());
        let batch_busy = batch.as_deref().map(Self::root_total).unwrap_or_default();
        let mut adopt_under = None;
        let mut state = self.state.lock();
        let expired = Self::sweep(&mut state, now);
        if let Some(entry) = state.workers.get_mut(worker) {
            entry.last_seen = now;
        }
        let mut accepted = false;
        if let Some(campaign_state) = state.campaigns.get_mut(&campaign) {
            let expected_len = campaign_state.chunks.get(chunk).map(|c| c.len);
            if let Some(chunk_state) = campaign_state.states.get_mut(chunk) {
                if let ChunkState::Leased { epoch: e, lease: l, .. } = chunk_state {
                    if *l == lease && *e == epoch && Some(outcomes.len()) == expected_len {
                        *chunk_state = ChunkState::Done { outcomes };
                        campaign_state.done += 1;
                        accepted = true;
                    }
                }
            }
        }
        if accepted {
            state.chunks_completed += 1;
            let mut busy = 0u64;
            if let Some(entry) = state.workers.get_mut(worker) {
                entry.chunks_completed += 1;
                if let Some((held_lease, _, _, granted_at)) = entry.lease {
                    if held_lease == lease {
                        busy = u64::try_from(now.saturating_sub(granted_at).as_millis())
                            .unwrap_or(u64::MAX);
                        entry.busy_ms += busy;
                        entry.lease = None;
                    }
                }
            }
            if let (Some(collector), Some(_)) = (&collector, &batch) {
                if let Some(campaign_state) = state.campaigns.get_mut(&campaign) {
                    if campaign_state.trace.is_some() {
                        let entry = campaign_state
                            .worker_spans
                            .entry(worker.to_string())
                            .or_insert_with(|| WorkerTrace {
                                wrapper: collector.allocate_id(),
                                busy: Duration::ZERO,
                                chunks: 0,
                            });
                        entry.busy += batch_busy;
                        entry.chunks += 1;
                        adopt_under = Some(entry.wrapper);
                    }
                }
            }
            Self::refresh_gauges(&state);
            drop(state);
            self.cv.notify_all();
            if let (Some(collector), Some(wrapper), Some(batch)) = (&collector, adopt_under, &batch)
            {
                collector.adopt(batch, Some(wrapper));
            }
            snn_obs::counter!("snn_cluster_chunks_completed_total", "Chunk results accepted.")
                .inc();
            snn_obs::counter!(
                "snn_cluster_worker_busy_ms_total",
                "Cumulative lease-to-result wall-clock across workers."
            )
            .add(busy);
        } else {
            state.results_stale += 1;
            drop(state);
            snn_obs::counter!(
                "snn_cluster_results_stale_total",
                "Chunk results discarded by the exactly-once gate."
            )
            .inc();
        }
        Self::record_expiries(expired);
        accepted
    }

    /// Registers a campaign over `fault_ids` (sharded per the configured
    /// chunk size) and returns its id. `spec.id` and `spec.faults` are
    /// overwritten with the assigned id and the fault count. A `trace`
    /// context is stamped into every lease grant of the campaign and
    /// turns on worker-span collection for it.
    pub fn submit(
        &self,
        mut spec: CampaignSpec,
        fault_ids: Vec<usize>,
        trace: Option<TraceContext>,
    ) -> u64 {
        let chunks = plan(fault_ids.len(), self.cfg.chunk_size);
        let states = chunks.iter().map(|_| ChunkState::Pending { epoch: 0 }).collect();
        let mut state = self.state.lock();
        let id = state.next_campaign;
        state.next_campaign += 1;
        spec.id = id;
        spec.faults = fault_ids.len();
        let done = chunks.is_empty();
        state.campaigns.insert(
            id,
            CampaignState {
                spec,
                fault_ids,
                chunks,
                states,
                done: 0,
                trace,
                worker_spans: BTreeMap::new(),
            },
        );
        Self::refresh_gauges(&state);
        drop(state);
        if done {
            self.cv.notify_all();
        }
        id
    }

    /// Blocks until `campaign` completes, streaming progress through
    /// `on_progress`, and returns its merged outcomes in fault-list
    /// order — bit-identical to a single-process campaign over the same
    /// ids. The campaign is removed from the coordinator on return.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Cancelled`] when `cancel` trips,
    /// [`ClusterError::Shutdown`] when the coordinator stops first, and
    /// [`ClusterError::UnknownCampaign`] for a bad id.
    pub fn wait(
        &self,
        campaign: u64,
        cancel: &CancelToken,
        mut on_progress: impl FnMut(CampaignProgress),
    ) -> Result<Vec<FaultOutcome>, ClusterError> {
        let mut last = CampaignProgress { done: 0, total: 0, detected: 0 };
        let mut reported = false;
        loop {
            let now = Self::now();
            let mut state = self.state.lock();
            let expired = Self::sweep(&mut state, now);
            if state.shutdown {
                state.campaigns.remove(&campaign);
                return Err(ClusterError::Shutdown);
            }
            let Some(campaign_state) = state.campaigns.get(&campaign) else {
                return Err(ClusterError::UnknownCampaign { campaign });
            };
            if campaign_state.done == campaign_state.chunks.len() {
                // snn-lint: allow(L-PANIC): presence checked three lines up; remove cannot miss
                let campaign_state = state.campaigns.remove(&campaign).expect("checked above");
                Self::refresh_gauges(&state);
                drop(state);
                Self::record_expiries(expired);
                // Emit the synthetic `worker:<name>` wrapper spans the
                // adopted chunk spans were parented under; the ids were
                // pre-allocated at adoption time, so the tree closes up
                // regardless of record order.
                if let (Some(trace), Some(collector)) =
                    (campaign_state.trace, snn_obs::trace::installed())
                {
                    for (name, wt) in &campaign_state.worker_spans {
                        collector.push_synthetic_with_id(
                            wt.wrapper,
                            &format!("worker:{name}"),
                            Some(trace.parent_span_id),
                            wt.busy,
                            vec![("chunks".to_string(), wt.chunks.to_string())],
                        );
                    }
                }
                let parts: Vec<Vec<FaultOutcome>> = campaign_state
                    .states
                    .into_iter()
                    .map(|s| match s {
                        ChunkState::Done { outcomes } => outcomes,
                        _ => Vec::new(),
                    })
                    .collect();
                return merge_chunks(&campaign_state.chunks, parts).map_err(ClusterError::Merge);
            }
            let progress = Self::progress_of(campaign_state);
            drop(state);
            Self::record_expiries(expired);
            if cancel.is_cancelled() {
                self.state.lock().campaigns.remove(&campaign);
                return Err(ClusterError::Cancelled);
            }
            if progress != last || !reported {
                on_progress(progress);
                last = progress;
                reported = true;
            }
            let mut state = self.state.lock();
            self.cv.wait_for(&mut state, Duration::from_millis(100));
        }
    }

    fn progress_of(campaign: &CampaignState) -> CampaignProgress {
        let mut done = 0usize;
        let mut detected = 0usize;
        for s in &campaign.states {
            if let ChunkState::Done { outcomes } = s {
                done += outcomes.len();
                detected += outcomes.iter().filter(|o| o.detected).count();
            }
        }
        CampaignProgress { done, total: campaign.fault_ids.len(), detected }
    }

    /// Blocks until at least `expected` workers have registered (ever),
    /// polling under `cancel` with a wall-clock budget.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Cancelled`], [`ClusterError::Shutdown`] or
    /// [`ClusterError::WorkersUnavailable`] when the budget runs out.
    pub fn wait_for_workers(
        &self,
        expected: usize,
        cancel: &CancelToken,
        budget: Duration,
    ) -> Result<(), ClusterError> {
        let started = Self::now();
        loop {
            let seen = {
                let state = self.state.lock();
                if state.shutdown {
                    return Err(ClusterError::Shutdown);
                }
                state.workers.len()
            };
            if seen >= expected {
                return Ok(());
            }
            if cancel.is_cancelled() {
                return Err(ClusterError::Cancelled);
            }
            if Self::now().saturating_sub(started) > budget {
                return Err(ClusterError::WorkersUnavailable { expected, seen });
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// A point-in-time snapshot of workers and chunk bookkeeping.
    pub fn status(&self) -> ClusterStatus {
        let now = Self::now();
        let mut state = self.state.lock();
        let expired = Self::sweep(&mut state, now);
        let workers = state
            .workers
            .iter()
            .map(|(name, entry)| {
                let lease = entry.lease.and_then(|(lease, campaign, chunk, _)| {
                    let deadline =
                        state.campaigns.get(&campaign).and_then(|c| match c.states.get(chunk) {
                            Some(ChunkState::Leased { lease: l, deadline, .. }) if *l == lease => {
                                Some(*deadline)
                            }
                            _ => None,
                        })?;
                    Some(HeldLease {
                        lease,
                        campaign,
                        chunk,
                        expires_in_ms: u64::try_from(deadline.saturating_sub(now).as_millis())
                            .unwrap_or(u64::MAX),
                    })
                });
                WorkerStatus {
                    name: name.clone(),
                    last_seen_ms: u64::try_from(now.saturating_sub(entry.last_seen).as_millis())
                        .unwrap_or(u64::MAX),
                    chunks_completed: entry.chunks_completed,
                    busy_ms: entry.busy_ms,
                    lease,
                }
            })
            .collect();
        let (mut pending, mut leased) = (0usize, 0usize);
        for campaign in state.campaigns.values() {
            for s in &campaign.states {
                match s {
                    ChunkState::Pending { .. } => pending += 1,
                    ChunkState::Leased { .. } => leased += 1,
                    ChunkState::Done { .. } => {}
                }
            }
        }
        let status = ClusterStatus {
            workers,
            campaigns_active: state.campaigns.len(),
            chunks_pending: pending,
            chunks_leased: leased,
            chunks_completed: state.chunks_completed,
            chunks_reissued: state.chunks_reissued,
            results_stale: state.results_stale,
        };
        drop(state);
        Self::record_expiries(expired);
        status
    }

    /// Number of workers that have ever registered.
    pub fn workers_seen(&self) -> usize {
        self.state.lock().workers.len()
    }

    /// Stops the coordinator: waiters return [`ClusterError::Shutdown`]
    /// and workers receive [`Grant::Shutdown`] on their next lease
    /// request.
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.cv.notify_all();
    }
}
