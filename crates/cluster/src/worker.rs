//! The worker runtime: connects to a coordinator, loops
//! lease → fetch → simulate → result, and heartbeats the held lease on
//! a second connection so a hung chunk is distinguishable from a hung
//! process.
//!
//! A heartbeat answered with `live: false` means the lease expired and
//! the chunk has been (or will be) re-issued elsewhere: the worker
//! cancels the in-flight simulation and asks for fresh work instead of
//! finishing a result the coordinator would discard anyway.

use crate::campaign::PreparedCampaign;
use crate::wire::{read_line, write_line, CoordMsg, WorkerMsg, PROTOCOL_VERSION};
use parking_lot::Mutex;
use snn_faults::progress::CancelToken;
use snn_faults::ChunkCampaignError;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Prepared campaigns a worker keeps around between leases.
const CAMPAIGN_CACHE: usize = 4;

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address, `host:port`.
    pub addr: String,
    /// Worker name reported to the coordinator (must be unique per
    /// coordinator; lease bookkeeping is keyed on it).
    pub name: String,
    /// Simulation threads per chunk (0 = one per core).
    pub threads: usize,
    /// Capture this worker's spans and ship them back with each chunk
    /// result of a traced campaign (`snn-mtfc worker --trace`).
    ///
    /// Installs a process-global trace collector for the duration of
    /// [`run_worker`], so it is meant for dedicated worker *processes* —
    /// enabling it on an in-process worker thread would hijack the host
    /// process's collector.
    pub trace: bool,
}

/// What a worker did before disconnecting, for CLI display.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Chunks simulated and submitted.
    pub chunks: u64,
    /// Faults simulated across those chunks.
    pub faults: u64,
    /// Chunks abandoned because the lease died mid-simulation.
    pub abandoned: u64,
}

/// Why a worker stopped.
#[derive(Debug)]
pub enum WorkerError {
    /// Connecting, reading or writing the coordinator link failed.
    Io(std::io::Error),
    /// The coordinator speaks a different protocol version.
    Protocol {
        /// Version the coordinator advertised.
        got: u64,
        /// Version this worker speaks.
        want: u64,
    },
    /// The coordinator sent a message this worker cannot decode, or an
    /// explicit error.
    Coordinator(String),
    /// A campaign could not be materialized or simulated locally.
    Campaign(String),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "coordinator link: {e}"),
            Self::Protocol { got, want } => {
                write!(f, "coordinator speaks protocol {got}, this worker speaks {want}")
            }
            Self::Coordinator(m) => write!(f, "coordinator: {m}"),
            Self::Campaign(m) => write!(f, "campaign: {m}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<std::io::Error> for WorkerError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Heartbeat-visible session state: which lease the main loop currently
/// holds, and the token the heartbeat thread trips when that lease dies.
#[derive(Default)]
struct Session {
    current: Option<(u64, CancelToken)>,
    stop: bool,
}

struct Link {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Link {
    fn connect(addr: &str) -> Result<Self, WorkerError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: BufWriter::new(stream) })
    }

    fn send(&mut self, msg: &WorkerMsg) -> Result<(), WorkerError> {
        write_line(&mut self.writer, msg).map_err(WorkerError::Io)
    }

    fn recv(&mut self) -> Result<Option<CoordMsg>, WorkerError> {
        match read_line::<CoordMsg>(&mut self.reader)? {
            None => Ok(None),
            Some(Ok(msg)) => Ok(Some(msg)),
            Some(Err(e)) => Err(WorkerError::Coordinator(e)),
        }
    }
}

/// Runs a worker until the coordinator shuts down or the link drops.
///
/// # Errors
///
/// [`WorkerError`] on connection failure, protocol mismatch, undecodable
/// traffic or a campaign that cannot be materialized. A coordinator that
/// closes the link (or answers `Shutdown`) is a clean stop, not an error.
pub fn run_worker(cfg: &WorkerConfig) -> Result<WorkerReport, WorkerError> {
    crate::lock_order::register();
    let mut link = Link::connect(&cfg.addr)?;
    link.send(&WorkerMsg::Hello { name: cfg.name.clone(), protocol: PROTOCOL_VERSION })?;
    let (lease_ms, heartbeat_ms) = match link.recv()? {
        Some(CoordMsg::Welcome { protocol, lease_ms, heartbeat_ms }) => {
            if protocol != PROTOCOL_VERSION {
                return Err(WorkerError::Protocol { got: protocol, want: PROTOCOL_VERSION });
            }
            (lease_ms, heartbeat_ms)
        }
        Some(CoordMsg::Error { message }) => return Err(WorkerError::Coordinator(message)),
        Some(other) => {
            return Err(WorkerError::Coordinator(format!("expected welcome, got {other:?}")))
        }
        None => return Ok(WorkerReport::default()),
    };
    let _ = lease_ms;

    // A traced worker collects its own spans and ships them back with
    // each chunk result; the previous global collector (if any) is
    // restored on exit.
    let collector = cfg.trace.then(|| {
        let collector = Arc::new(snn_obs::Collector::new());
        let prev = snn_obs::trace::install(Arc::clone(&collector));
        (collector, prev)
    });

    let session = Arc::new(Mutex::named("cluster.worker.session", Session::default()));
    let heartbeat = spawn_heartbeat(&cfg.addr, cfg.name.clone(), heartbeat_ms, &session);

    let result = lease_loop(cfg, &mut link, &session, collector.as_ref().map(|(c, _)| c));

    session.lock().stop = true;
    let _ = link.send(&WorkerMsg::Bye { worker: cfg.name.clone() });
    if let Some(handle) = heartbeat {
        let _ = handle.join();
    }
    if let Some((_, prev)) = collector {
        match prev {
            Some(prev) => drop(snn_obs::trace::install(prev)),
            None => drop(snn_obs::trace::uninstall()),
        }
    }
    result
}

/// The heartbeat thread: on its own connection, beats the currently held
/// lease every `heartbeat_ms` and cancels the chunk when the coordinator
/// reports the lease dead. Heartbeat link failures are tolerated — the
/// main loop still makes progress, it just loses hang protection.
fn spawn_heartbeat(
    addr: &str,
    worker: String,
    heartbeat_ms: u64,
    session: &Arc<Mutex<Session>>,
) -> Option<std::thread::JoinHandle<()>> {
    let mut link = Link::connect(addr).ok()?;
    let session = Arc::clone(session);
    let period = Duration::from_millis(heartbeat_ms.max(10));
    let builder = std::thread::Builder::new().name("cluster-heartbeat".into());
    builder
        .spawn(move || loop {
            std::thread::sleep(period);
            let held = {
                let session = session.lock();
                if session.stop {
                    return;
                }
                session.current.clone()
            };
            let Some((lease, cancel)) = held else { continue };
            if link.send(&WorkerMsg::Heartbeat { worker: worker.clone(), lease }).is_err() {
                return;
            }
            match link.recv() {
                Ok(Some(CoordMsg::HeartbeatAck { live: false })) => cancel.cancel(),
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => return,
            }
        })
        .ok()
}

fn lease_loop(
    cfg: &WorkerConfig,
    link: &mut Link,
    session: &Arc<Mutex<Session>>,
    collector: Option<&Arc<snn_obs::Collector>>,
) -> Result<WorkerReport, WorkerError> {
    let mut report = WorkerReport::default();
    let mut campaigns: HashMap<u64, PreparedCampaign> = HashMap::new();
    loop {
        link.send(&WorkerMsg::Lease { worker: cfg.name.clone() })?;
        match link.recv()? {
            Some(CoordMsg::Granted(grant)) => {
                if !campaigns.contains_key(&grant.campaign) {
                    if campaigns.len() >= CAMPAIGN_CACHE {
                        campaigns.clear();
                    }
                    let prepared = fetch_campaign(cfg, link, grant.campaign)?;
                    campaigns.insert(grant.campaign, prepared);
                }
                // snn-lint: allow(L-PANIC): inserted above when absent
                let prepared = campaigns.get(&grant.campaign).expect("cached above");

                let cancel = CancelToken::new();
                session.lock().current = Some((grant.lease, cancel.clone()));
                let mut span = snn_obs::span!("cluster.chunk");
                span.attr("lease", grant.lease);
                span.attr("chunk", grant.chunk.index);
                let outcome = prepared.run_chunk(&grant.fault_ids, &cancel);
                drop(span);
                session.lock().current = None;
                // Drain even when the grant is untraced or the chunk was
                // abandoned: the collector must not grow without bound.
                let drained = collector.map(|c| c.drain());
                let spans = if grant.trace.is_some() { drained } else { None };

                match outcome {
                    Ok(outcomes) => {
                        report.chunks += 1;
                        report.faults += outcomes.len() as u64;
                        link.send(&WorkerMsg::Result {
                            worker: cfg.name.clone(),
                            lease: grant.lease,
                            campaign: grant.campaign,
                            chunk: grant.chunk.index,
                            epoch: grant.epoch,
                            outcomes,
                            spans,
                        })?;
                        match link.recv()? {
                            Some(CoordMsg::ResultAck { .. }) => {}
                            Some(CoordMsg::Error { message }) => {
                                return Err(WorkerError::Coordinator(message))
                            }
                            Some(other) => {
                                return Err(WorkerError::Coordinator(format!(
                                    "expected result ack, got {other:?}"
                                )))
                            }
                            None => return Ok(report),
                        }
                    }
                    Err(ChunkCampaignError::Campaign(snn_faults::CampaignError::Cancelled)) => {
                        // Lease died mid-chunk; the coordinator re-issued
                        // it. Drop the partial work and ask for more.
                        report.abandoned += 1;
                    }
                    Err(e) => return Err(WorkerError::Campaign(e.to_string())),
                }
            }
            Some(CoordMsg::Idle { retry_ms }) => {
                std::thread::sleep(Duration::from_millis(retry_ms.clamp(1, 1000)));
            }
            Some(CoordMsg::Campaign(_))
            | Some(CoordMsg::Welcome { .. })
            | Some(CoordMsg::HeartbeatAck { .. })
            | Some(CoordMsg::ResultAck { .. }) => {
                return Err(WorkerError::Coordinator("unexpected message in lease loop".into()))
            }
            Some(CoordMsg::Shutdown) | None => return Ok(report),
            Some(CoordMsg::Error { message }) => return Err(WorkerError::Coordinator(message)),
        }
    }
}

fn fetch_campaign(
    cfg: &WorkerConfig,
    link: &mut Link,
    campaign: u64,
) -> Result<PreparedCampaign, WorkerError> {
    link.send(&WorkerMsg::Fetch { worker: cfg.name.clone(), campaign })?;
    match link.recv()? {
        Some(CoordMsg::Campaign(spec)) => {
            PreparedCampaign::new(&spec, Some(cfg.threads)).map_err(WorkerError::Campaign)
        }
        Some(CoordMsg::Error { message }) => Err(WorkerError::Coordinator(message)),
        Some(other) => {
            Err(WorkerError::Coordinator(format!("expected campaign payload, got {other:?}")))
        }
        None => Err(WorkerError::Coordinator("link closed during campaign fetch".into())),
    }
}
