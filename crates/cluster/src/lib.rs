//! Distributed fault-simulation campaigns: sharding, lease-based
//! scheduling and exact result merging across worker processes.
//!
//! A fault-detection campaign (Eq. (3)/(4) of the source paper) is
//! embarrassingly parallel across *faults*: each fault's verdict is a
//! pure function of the network, the test stimuli and the simulator
//! configuration. This crate exploits that to spread one campaign over
//! worker *processes* — potentially on other machines — without changing
//! a single verdict bit:
//!
//! * [`wire`] — protocol v4: the newline-JSON messages workers and the
//!   coordinator exchange ([`wire::WorkerMsg`], [`wire::CoordMsg`]), the
//!   self-contained [`wire::CampaignSpec`] payload — detection stimuli
//!   or, since v4, an optional reliability payload whose "fault ids" are
//!   fault-map configuration indices — and the [`wire::ClusterStatus`]
//!   snapshot served to CLI clients.
//! * [`coordinator`] — the lease state machine. Chunks move
//!   `Pending → Leased → Done`; a lease that misses its heartbeat
//!   deadline returns the chunk to `Pending` under a bumped *epoch*, and
//!   a result is merged only while its `(lease, epoch)` matches — so
//!   execution is at-least-once but accounting is exactly-once, even
//!   when a presumed-dead worker limps home late.
//! * [`campaign`] — deterministic rematerialization: a worker rebuilds
//!   the network (synthetic specs are pure functions of their seed),
//!   re-parses the stimuli (the events text format is an exact transport
//!   for spike tensors) and runs its chunk with the campaign's exact
//!   simulator configuration, so chunk outcomes are bit-identical to the
//!   same fault ids inside a single-process run.
//! * [`worker`] — the worker runtime: lease → fetch → simulate → result,
//!   with a heartbeat side-channel that cancels a chunk the moment its
//!   lease dies elsewhere.
//!
//! Merged campaign results are bit-identical to the single-process path
//! (`snn_faults::chunk` provides the digest that CI gates on), so
//! distribution is purely an execution detail — never a numerics one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod coordinator;
pub mod lock_order;
pub mod wire;
pub mod worker;

pub use campaign::{build_model, PreparedCampaign};
pub use coordinator::{CampaignProgress, ClusterError, Coordinator, CoordinatorConfig, Grant};
pub use wire::{CampaignSpec, ClusterStatus, ModelSpec, PROTOCOL_VERSION};
pub use worker::{run_worker, WorkerConfig, WorkerError, WorkerReport};
