//! The workspace-wide lock acquisition order, as seen from the cluster
//! crate.
//!
//! The runtime detector in the vendored `parking_lot` accepts exactly
//! one order list per process (first registration wins), and `snn-mtfc`
//! processes routinely hold service and cluster locks in the same
//! process — the server's accept loop takes `cluster.coordinator` while
//! job workers take the service locks. So the cluster crate registers
//! the *combined* order, identical to
//! `snn-service`'s `lock_order::LOCK_ORDER`; a test in the service crate
//! asserts the two lists never drift apart.

/// Lock names in their required acquisition order (earlier first).
///
/// Service names come first, unchanged; the cluster names rank after
/// them:
///
/// * `cluster.coordinator` ranks after every service lock because job
///   workers call into the coordinator (submit, wait, status) from code
///   that also takes service locks. Today every such call site releases
///   its service guard first (`snn-lint`'s `L-LOCKGRAPH` pass proves the
///   static acquisition graph has no service→cluster edge), but ranking
///   the coordinator below keeps any future nesting one-directional. The
///   coordinator itself calls nothing while locked.
/// * `cluster.worker.session` is a leaf in the worker process: the
///   heartbeat thread and the lease loop exchange the current lease
///   through it and acquire nothing else while holding it. Worker
///   processes never take service locks, but a single combined order
///   keeps in-process tests (coordinator and worker in one process)
///   checkable.
pub const LOCK_ORDER: &[&str] = &[
    "service.queue",
    "service.running",
    "service.sink.last_persist",
    "service.store.jobs",
    "service.bus.subscribers",
    "service.analysis.cache",
    "cluster.coordinator",
    "cluster.worker.session",
];

/// Registers [`LOCK_ORDER`] with the runtime detector. Idempotent —
/// the coordinator constructor and the worker entry point both call it
/// defensively.
pub fn register() {
    parking_lot::lock_order::register(LOCK_ORDER);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_names_are_unique_and_crate_prefixed() {
        for (i, name) in LOCK_ORDER.iter().enumerate() {
            assert!(
                name.starts_with("service.") || name.starts_with("cluster."),
                "lock name {name} must be crate-prefixed"
            );
            assert!(!LOCK_ORDER[i + 1..].contains(name), "duplicate lock name {name}");
        }
        assert!(
            LOCK_ORDER
                .windows(2)
                .any(|w| w[0] == "service.analysis.cache" && w[1] == "cluster.coordinator"),
            "cluster locks must rank directly after the service locks"
        );
    }
}
