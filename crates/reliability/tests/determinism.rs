//! Satellite properties of reliability campaigns:
//!
//! * fault-map sampling is deterministic — the same seed and BER yield
//!   an identical fault universe however the campaign is split across
//!   workers (1/2/4) and chunk sizes (1/7/64), with digest-equal merges;
//! * mitigation soundness — range restriction never lowers fault-free
//!   accuracy on example networks (it is the identity on clean weights).

#![allow(clippy::unwrap_used)] // test-only shorthand
#![allow(clippy::float_cmp)] // soundness asserts exact accuracy values

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_faults::chunk::{merge_chunks, plan};
use snn_faults::progress::CancelToken;
use snn_faults::{verdict_digest, FaultOutcome};
use snn_model::{LifParams, Network, NetworkBuilder};
use snn_reliability::{
    sample_config, EvalSpec, FaultMapSpec, Mitigation, MitigationKind, RangeRestriction,
    ReliabilityEvaluator, ReliabilitySpec, WeightFaultModel,
};

fn example_net(seed: u64, inputs: usize, hidden: usize, outputs: usize) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    NetworkBuilder::new(inputs, LifParams::default()).dense(hidden).dense(outputs).build(&mut rng)
}

fn spec(
    net: &Network,
    weight_ber: f32,
    neuron_ber: f32,
    configs: usize,
    seed: u64,
) -> ReliabilitySpec {
    ReliabilitySpec {
        map: FaultMapSpec::uniform(
            net,
            weight_ber,
            neuron_ber,
            configs,
            seed,
            WeightFaultModel::StuckSat,
            None,
        ),
        eval: EvalSpec { samples: 4, steps: 10, rate: 0.35, seed: 9 },
        mitigation: MitigationKind::RangeRestriction,
    }
}

/// The single-process reference: one evaluator, the whole id list.
fn whole_campaign(net: &Network, rspec: &ReliabilitySpec) -> Vec<FaultOutcome> {
    let eval = ReliabilityEvaluator::new(net.clone(), rspec.clone()).unwrap();
    let ids: Vec<usize> = (0..rspec.map.configs).collect();
    eval.evaluate_chunk(&ids, 1, &CancelToken::new()).unwrap()
}

/// Splits the campaign into `chunk_size` chunks dealt round-robin to
/// `workers` evaluators — each built independently from the spec, as a
/// worker process would — and merges the parts in chunk order.
fn split_campaign(
    net: &Network,
    rspec: &ReliabilitySpec,
    workers: usize,
    chunk_size: usize,
) -> Vec<FaultOutcome> {
    let evaluators: Vec<ReliabilityEvaluator> = (0..workers)
        .map(|_| ReliabilityEvaluator::new(net.clone(), rspec.clone()).unwrap())
        .collect();
    let chunks = plan(rspec.map.configs, chunk_size);
    let parts: Vec<Vec<FaultOutcome>> = chunks
        .iter()
        .enumerate()
        .map(|(i, chunk)| {
            let ids: Vec<usize> = chunk.range().collect();
            evaluators[i % workers].evaluate_chunk(&ids, 1, &CancelToken::new()).unwrap()
        })
        .collect();
    merge_chunks(&chunks, parts).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same seed + BER ⇒ identical fault universe: every worker split
    /// and chunk size merges to the bit-identical outcome list.
    #[test]
    fn fault_map_campaigns_are_split_invariant(
        seed in 0u64..500,
        net_seed in 0u64..100,
        weight_ber in 0.005f32..0.08,
        workers_idx in 0usize..3,
        chunk_idx in 0usize..3,
    ) {
        let workers = [1usize, 2, 4][workers_idx];
        let chunk_size = [1usize, 7, 64][chunk_idx];
        let net = example_net(net_seed, 5, 8, 3);
        let rspec = spec(&net, weight_ber, 0.01, 9, seed);

        // Sampling itself is a pure function of (spec, topology, index).
        for k in 0..rspec.map.configs {
            let a = sample_config(&net, &rspec.map, k);
            let b = sample_config(&net, &rspec.map, k);
            prop_assert_eq!(&a.hits, &b.hits, "config {} hits", k);
            prop_assert_eq!(a.realize(&net), b.realize(&net), "config {} patches", k);
        }

        let whole = whole_campaign(&net, &rspec);
        let merged = split_campaign(&net, &rspec, workers, chunk_size);
        prop_assert_eq!(&whole, &merged, "w={} c={}", workers, chunk_size);
        prop_assert_eq!(verdict_digest(&whole), verdict_digest(&merged));
    }
}

/// The fixed-grid companion: one campaign, every worker count × chunk
/// size the issue names, digest-equal throughout.
#[test]
fn worker_chunk_grid_merges_digest_equal() {
    let net = example_net(3, 6, 10, 4);
    let rspec = spec(&net, 0.03, 0.02, 13, 77);
    let whole = whole_campaign(&net, &rspec);
    let reference = verdict_digest(&whole);
    for workers in [1usize, 2, 4] {
        for chunk_size in [1usize, 7, 64] {
            let merged = split_campaign(&net, &rspec, workers, chunk_size);
            assert_eq!(whole, merged, "w={workers} c={chunk_size}");
            assert_eq!(verdict_digest(&merged), reference, "w={workers} c={chunk_size}");
        }
    }
}

/// Range restriction is sound: on a fault-free network (zero BER, so
/// every sampled configuration is empty) it changes nothing, and the
/// mitigated accuracy equals the clean baseline on example nets.
#[test]
fn range_restriction_never_lowers_fault_free_accuracy() {
    for net_seed in [0u64, 5, 11] {
        let net = example_net(net_seed, 5, 9, 3);
        // An explicit zero-BER region: addressed, but sampling no faults.
        // (`uniform` omits rate-0 regions entirely, and a fault map must
        // address at least one region to validate.)
        let mut rspec = spec(&net, 0.5, 0.0, 4, 21);
        rspec.map.regions = vec![snn_reliability::RegionSpec {
            region: snn_reliability::MemoryRegion::Weights { layer: 0, tensor: 0 },
            ber: 0.0,
        }];

        // No faults sampled ⇒ no patches: the mitigation is the identity.
        for k in 0..rspec.map.configs {
            let config = sample_config(&net, &rspec.map, k);
            assert!(config.is_empty(), "zero BER must sample empty configs");
            assert!(RangeRestriction.patches(&net, &config).is_empty());
        }

        let outcomes = whole_campaign(&net, &rspec);
        let report = snn_reliability::ReliabilityReport::build(&net, &rspec, &outcomes).unwrap();
        assert_eq!(report.baseline_accuracy, 1.0);
        assert_eq!(
            report.mitigated_accuracy, report.baseline_accuracy,
            "net {net_seed}: range restriction lowered fault-free accuracy"
        );
        assert_eq!(report.faulty_accuracy, 1.0, "no faults, no drop");
    }
}

/// Under nonzero BER with saturating stuck-at faults, range restriction
/// must not do worse than no mitigation — and on these nets it strictly
/// recovers accuracy.
#[test]
fn range_restriction_recovers_accuracy_under_nonzero_ber() {
    let net = example_net(7, 6, 12, 4);
    let mut rspec = spec(&net, 0.05, 0.0, 12, 11);
    rspec.eval.samples = 8;
    rspec.eval.steps = 14;
    let outcomes = whole_campaign(&net, &rspec);
    let report = snn_reliability::ReliabilityReport::build(&net, &rspec, &outcomes).unwrap();
    assert!(
        report.mitigated_accuracy >= report.faulty_accuracy,
        "mitigation made things worse: {} < {}",
        report.mitigated_accuracy,
        report.faulty_accuracy
    );
    assert!(
        report.recovered() > 0.0,
        "expected measurable recovery at BER 0.05, got {:+}",
        report.recovered()
    );
}
