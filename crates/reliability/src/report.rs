//! Campaign report: accuracy-drop distributions, per-region criticality
//! ranking and the deterministic verdict digest.

use crate::campaign::{fraction, ConfigOutcome, ReliabilitySpec};
use crate::fault_map::sample_config;
use serde::{Deserialize, Serialize};
use snn_faults::FaultOutcome;
use snn_model::Network;

/// Mean / 95th-percentile / worst-case of a drop distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DropStats {
    /// Mean accuracy drop over all configurations.
    pub mean: f32,
    /// 95th percentile (nearest-rank) of the per-config drops.
    pub p95: f32,
    /// Largest per-config drop.
    pub worst: f32,
}

impl DropStats {
    /// Computes the statistics of `drops` (all zeros when empty).
    pub fn of(drops: &[f32]) -> Self {
        if drops.is_empty() {
            return Self { mean: 0.0, p95: 0.0, worst: 0.0 };
        }
        let mut sorted = drops.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mean = sorted.iter().sum::<f32>() / sorted.len() as f32;
        // Nearest-rank p95: ceil(0.95·n) - 1, clamped into range.
        let rank = ((0.95 * sorted.len() as f32).ceil() as usize).clamp(1, sorted.len()) - 1;
        Self { mean, p95: sorted[rank], worst: sorted[sorted.len() - 1] }
    }
}

/// Accuracy impact attributed to one fault-map region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionCriticality {
    /// Region label (see `MemoryRegion::label`).
    pub region: String,
    /// Configurations in which the region received at least one fault.
    pub configs_hit: usize,
    /// Mean unmitigated accuracy drop over those configurations.
    pub mean_drop: f32,
}

/// The full result of a reliability campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityReport {
    /// Configurations evaluated.
    pub configs: usize,
    /// Evaluation-set size per configuration.
    pub samples: usize,
    /// Mitigation strategy evaluated.
    pub mitigation: String,
    /// Accuracy of the clean network against the oracle labels (1.0 by
    /// construction; reported for the triple's completeness).
    pub baseline_accuracy: f32,
    /// Mean accuracy under unmitigated faults.
    pub faulty_accuracy: f32,
    /// Mean accuracy under mitigated faults.
    pub mitigated_accuracy: f32,
    /// Unmitigated accuracy-drop distribution.
    pub drop: DropStats,
    /// Mitigated accuracy-drop distribution.
    pub mitigated_drop: DropStats,
    /// Mean summed L1 output-spike delta per configuration.
    pub mean_spike_delta: f32,
    /// Regions ranked by mean unmitigated drop, most critical first.
    pub regions: Vec<RegionCriticality>,
    /// FNV-1a digest over the encoded outcomes — identical for any
    /// worker count or chunk size that evaluated the same spec.
    pub digest: String,
}

impl ReliabilityReport {
    /// Builds the report from merged campaign outcomes.
    ///
    /// Region attribution re-samples each configuration from the spec
    /// (sampling is pure, so this reproduces exactly the fault sets the
    /// workers evaluated) rather than shipping hit lists over the wire.
    pub fn build(
        net: &Network,
        spec: &ReliabilitySpec,
        outcomes: &[FaultOutcome],
    ) -> Result<Self, String> {
        let decoded: Vec<ConfigOutcome> =
            outcomes.iter().map(ConfigOutcome::decode).collect::<Result<_, _>>()?;
        if decoded.len() != spec.map.configs {
            return Err(format!(
                "campaign returned {} outcomes for {} configurations",
                decoded.len(),
                spec.map.configs
            ));
        }

        let samples = decoded.first().map_or(0, |o| o.samples);
        let drops: Vec<f32> = decoded.iter().map(ConfigOutcome::accuracy_drop).collect();
        let mitigated_drops: Vec<f32> = decoded.iter().map(ConfigOutcome::mitigated_drop).collect();

        // Per-region attribution via deterministic re-sampling.
        let mut hit_counts = vec![0usize; spec.map.regions.len()];
        let mut drop_sums = vec![0.0f32; spec.map.regions.len()];
        for o in &decoded {
            let config = sample_config(net, &spec.map, o.config);
            for &ri in &config.hit_regions {
                hit_counts[ri] += 1;
                drop_sums[ri] += o.accuracy_drop();
            }
        }
        let mut regions: Vec<RegionCriticality> = spec
            .map
            .regions
            .iter()
            .zip(hit_counts.iter().zip(drop_sums.iter()))
            .filter(|(_, (&hits, _))| hits > 0)
            .map(|(r, (&hits, &sum))| RegionCriticality {
                region: r.region.label(),
                configs_hit: hits,
                mean_drop: sum / hits as f32,
            })
            .collect();
        // Total order: mean drop descending, then region label ascending.
        // The label tie-break matters — labels are unique per region, so
        // equal drops (common with coarse samples) still rank identically
        // on every worker, keeping the rendered report byte-stable.
        regions.sort_by(|a, b| {
            b.mean_drop
                .partial_cmp(&a.mean_drop)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.region.cmp(&b.region))
        });

        let n = decoded.len();
        let mean = |f: &dyn Fn(&ConfigOutcome) -> f32| -> f32 {
            if n == 0 {
                return 0.0;
            }
            decoded.iter().map(f).sum::<f32>() / n as f32
        };

        Ok(Self {
            configs: n,
            samples,
            mitigation: spec.mitigation.instance().name().to_string(),
            baseline_accuracy: mean(&|o| fraction(o.baseline_correct, o.samples)),
            faulty_accuracy: mean(&|o| fraction(o.faulty_correct, o.samples)),
            mitigated_accuracy: mean(&|o| fraction(o.mitigated_correct, o.samples)),
            drop: DropStats::of(&drops),
            mitigated_drop: DropStats::of(&mitigated_drops),
            mean_spike_delta: mean(&|o| o.spike_delta),
            regions,
            digest: snn_faults::verdict_digest_hex(outcomes),
        })
    }

    /// Accuracy the mitigation recovered, in accuracy points (mean
    /// mitigated accuracy minus mean faulty accuracy).
    pub fn recovered(&self) -> f32 {
        self.mitigated_accuracy - self.faulty_accuracy
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact statistics
mod tests {
    use super::*;
    use crate::campaign::{EvalSpec, ReliabilityEvaluator};
    use crate::fault_map::{FaultMapSpec, WeightFaultModel};
    use crate::mitigation::MitigationKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_faults::progress::CancelToken;
    use snn_model::{LifParams, NetworkBuilder};

    #[test]
    fn drop_stats_handle_empty_and_singleton() {
        let empty = DropStats::of(&[]);
        assert_eq!(empty, DropStats { mean: 0.0, p95: 0.0, worst: 0.0 });
        let one = DropStats::of(&[0.25]);
        assert_eq!(one, DropStats { mean: 0.25, p95: 0.25, worst: 0.25 });
    }

    #[test]
    fn drop_stats_nearest_rank_p95() {
        let drops: Vec<f32> = (1..=20).map(|i| i as f32 / 20.0).collect();
        let s = DropStats::of(&drops);
        assert_eq!(s.worst, 1.0);
        assert_eq!(s.p95, 0.95); // ceil(0.95·20) = 19 → sorted[18]
    }

    #[test]
    fn end_to_end_report_has_ranking_and_digest() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = NetworkBuilder::new(4, LifParams::default()).dense(8).dense(3).build(&mut rng);
        let spec = crate::ReliabilitySpec {
            map: FaultMapSpec::uniform(&net, 0.1, 0.02, 6, 42, WeightFaultModel::StuckSat, None),
            eval: EvalSpec { samples: 5, steps: 12, rate: 0.4, seed: 9 },
            mitigation: MitigationKind::RangeRestriction,
        };
        let eval = ReliabilityEvaluator::new(net.clone(), spec.clone()).unwrap();
        let ids: Vec<usize> = (0..spec.map.configs).collect();
        let outcomes = eval.evaluate_chunk(&ids, 0, &CancelToken::new()).unwrap();
        let report = ReliabilityReport::build(&net, &spec, &outcomes).unwrap();

        assert_eq!(report.configs, 6);
        assert_eq!(report.samples, 5);
        assert_eq!(report.baseline_accuracy, 1.0);
        assert!(!report.regions.is_empty(), "BER 0.1 must hit at least one region");
        assert_eq!(report.digest.len(), 16);
        // Ranking is sorted most-critical-first.
        for w in report.regions.windows(2) {
            assert!(w[0].mean_drop >= w[1].mean_drop);
        }
        // Mitigated accuracy can never be hurt by clamping into the clean
        // range relative to unmitigated saturation on these nets.
        assert!(report.mitigated_accuracy >= report.faulty_accuracy - 1e-6);
    }

    #[test]
    fn build_rejects_wrong_cardinality() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = NetworkBuilder::new(3, LifParams::default()).dense(2).build(&mut rng);
        let spec = crate::ReliabilitySpec {
            map: FaultMapSpec::uniform(&net, 0.1, 0.0, 4, 1, WeightFaultModel::BitFlip, None),
            eval: EvalSpec::default(),
            mitigation: MitigationKind::None,
        };
        assert!(ReliabilityReport::build(&net, &spec, &[]).is_err());
    }
}
