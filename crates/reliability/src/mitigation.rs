//! Mitigation strategies evaluated by reliability campaigns.
//!
//! A [`Mitigation`] turns a sampled [`FaultConfig`] into the weight
//! patches the *protected* deployment would actually suffer. Two
//! literature strategies are provided:
//!
//! * [`RangeRestriction`] (SoftSNN) — the accelerator clamps every
//!   weight read into the clean network's magnitude range, so corrupted
//!   values can be outliers no more. On a fault-free network this is the
//!   identity (no clean weight exceeds its own maximum), which the
//!   soundness tests pin down.
//! * [`FaultAwareMapping`] (ReSpawn) — the compiler remaps logical
//!   weight rows so the *least-critical* rows (smallest L1 norm, a
//!   significance proxy) are the ones stored in faulty physical rows.
//!   Faulty cells still corrupt whatever they host — but they host the
//!   rows whose corruption matters least.
//!
//! Neuron-state faults pass through every mitigation unchanged: both
//! strategies protect *weight memories*, and scoring them against
//! configurations that also carry neuron faults keeps the comparison
//! honest rather than flattering.

use crate::fault_map::{FaultConfig, WeightCorruption, WeightHit};
use serde::{Deserialize, Serialize};
use snn_faults::bit_flip_int8;
use snn_model::{Network, WeightRef};

/// A deterministic, pure weight-fault mitigation strategy.
pub trait Mitigation {
    /// Short identifier used in reports.
    fn name(&self) -> &'static str;

    /// The weight patches the protected deployment suffers under
    /// `config` — same addresses/values as `config.realize(net)` for the
    /// identity mitigation, fewer or tamer corruptions for real ones.
    fn patches(&self, net: &Network, config: &FaultConfig) -> Vec<(WeightRef, f32)>;
}

/// No mitigation: faults land exactly as sampled.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unmitigated;

impl Mitigation for Unmitigated {
    fn name(&self) -> &'static str {
        "none"
    }

    fn patches(&self, net: &Network, config: &FaultConfig) -> Vec<(WeightRef, f32)> {
        config.realize(net)
    }
}

/// SoftSNN-style range restriction: every weight value read from memory
/// is clamped into `[-max|w|, +max|w|]` of the clean network.
#[derive(Debug, Clone, Copy, Default)]
pub struct RangeRestriction;

impl Mitigation for RangeRestriction {
    fn name(&self) -> &'static str {
        "range-restriction"
    }

    fn patches(&self, net: &Network, config: &FaultConfig) -> Vec<(WeightRef, f32)> {
        let bound = net.max_abs_weight();
        config.realize(net).into_iter().map(|(at, v)| (at, v.clamp(-bound, bound))).collect()
    }
}

/// ReSpawn-style fault-aware mapping: logical rows are re-assigned to
/// physical rows so faulty rows host the least-critical (smallest-L1)
/// logical rows. Modelled by relocating each faulty row's hits onto a
/// least-critical row of the same tensor (same column), then re-deriving
/// the corrupted values at the new cells.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultAwareMapping;

impl Mitigation for FaultAwareMapping {
    fn name(&self) -> &'static str {
        "fault-aware-mapping"
    }

    fn patches(&self, net: &Network, config: &FaultConfig) -> Vec<(WeightRef, f32)> {
        let max_abs = net.max_abs_weight();
        let mut remapped: Vec<WeightHit> = Vec::with_capacity(config.hits.len());

        // Group hits per (layer, tensor) so each tensor computes its row
        // ranking once.
        let mut groups: Vec<((usize, usize), Vec<WeightHit>)> = Vec::new();
        for &hit in &config.hits {
            let key = (hit.at.layer, hit.at.tensor);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push(hit),
                None => groups.push((key, vec![hit])),
            }
        }

        for ((layer, tensor), hits) in groups {
            let t = net.layers()[layer].weight_tensors()[tensor];
            let dims = t.shape().dims();
            let (rows, cols) = if dims.len() >= 2 {
                (dims[0], t.as_slice().len() / dims[0].max(1))
            } else {
                (1, t.as_slice().len())
            };
            if rows <= 1 {
                remapped.extend(hits);
                continue;
            }
            // Rank rows by L1 norm ascending (least critical first);
            // ties break toward the lower index for determinism.
            let data = t.as_slice();
            let mut ranked: Vec<usize> = (0..rows).collect();
            ranked.sort_by(|&a, &b| {
                let na: f32 = data[a * cols..(a + 1) * cols].iter().map(|v| v.abs()).sum();
                let nb: f32 = data[b * cols..(b + 1) * cols].iter().map(|v| v.abs()).sum();
                na.partial_cmp(&nb).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
            });
            // Distinct faulty rows, in first-hit order, get the
            // least-critical physical assignments in rank order.
            let mut faulty_rows: Vec<usize> = Vec::new();
            for h in &hits {
                let row = h.at.offset / cols;
                if !faulty_rows.contains(&row) {
                    faulty_rows.push(row);
                }
            }
            let targets: Vec<usize> = ranked.into_iter().take(faulty_rows.len()).collect();
            for h in hits {
                let row = h.at.offset / cols;
                let col = h.at.offset % cols;
                // snn-lint: allow(L-PANIC): `row` was pushed into faulty_rows above
                let idx = faulty_rows.iter().position(|&r| r == row).expect("row registered");
                let new_offset = targets[idx] * cols + col;
                remapped.push(WeightHit {
                    at: WeightRef { layer, tensor, offset: new_offset },
                    corruption: h.corruption,
                });
            }
        }

        remapped
            .into_iter()
            .map(|h| {
                let value = match h.corruption {
                    WeightCorruption::BitFlip { bit } => {
                        bit_flip_int8(net.weight(h.at), max_abs, bit)
                    }
                    WeightCorruption::StuckAt { value } => value,
                };
                (h.at, value)
            })
            .collect()
    }
}

/// Wire-friendly selector for the built-in mitigations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MitigationKind {
    /// [`Unmitigated`].
    None,
    /// [`RangeRestriction`].
    RangeRestriction,
    /// [`FaultAwareMapping`].
    FaultAwareMapping,
}

impl MitigationKind {
    /// The strategy instance this selector names.
    pub fn instance(&self) -> &'static dyn Mitigation {
        match self {
            Self::None => &Unmitigated,
            Self::RangeRestriction => &RangeRestriction,
            Self::FaultAwareMapping => &FaultAwareMapping,
        }
    }

    /// Parses the CLI spelling (`none` / `range` / `remap`).
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "none" => Ok(Self::None),
            "range" | "range-restriction" => Ok(Self::RangeRestriction),
            "remap" | "fault-aware-mapping" => Ok(Self::FaultAwareMapping),
            other => Err(format!("unknown mitigation '{other}' (expected none|range|remap)")),
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact patched values
mod tests {
    use super::*;
    use crate::fault_map::{
        sample_config, FaultMapSpec, MemoryRegion, RegionSpec, WeightFaultModel,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder};

    fn test_net() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        NetworkBuilder::new(4, LifParams::default()).dense(6).dense(3).build(&mut rng)
    }

    fn stuck_spec(_net: &Network) -> FaultMapSpec {
        FaultMapSpec {
            regions: vec![RegionSpec {
                region: MemoryRegion::Weights { layer: 0, tensor: 0 },
                ber: 0.2,
            }],
            configs: 4,
            seed: 11,
            weight_model: WeightFaultModel::StuckSat,
            window: None,
        }
    }

    #[test]
    fn unmitigated_is_plain_realization() {
        let net = test_net();
        let spec = stuck_spec(&net);
        let c = sample_config(&net, &spec, 0);
        assert_eq!(Unmitigated.patches(&net, &c), c.realize(&net));
    }

    #[test]
    fn range_restriction_clamps_saturated_cells_into_range() {
        let net = test_net();
        let spec = stuck_spec(&net);
        let bound = net.max_abs_weight();
        let c = sample_config(&net, &spec, 1);
        assert!(!c.hits.is_empty(), "expected at least one hit at BER 0.2");
        let raw = Unmitigated.patches(&net, &c);
        assert!(raw.iter().any(|(_, v)| v.abs() > bound));
        for (at, v) in RangeRestriction.patches(&net, &c) {
            assert!(v.abs() <= bound, "cell {at:?} left out of range: {v}");
        }
    }

    #[test]
    fn fault_aware_mapping_moves_hits_to_least_critical_rows() {
        let net = test_net();
        let spec = stuck_spec(&net);
        let c = sample_config(&net, &spec, 2);
        assert!(!c.hits.is_empty());
        let patched = FaultAwareMapping.patches(&net, &c);
        assert_eq!(patched.len(), c.hits.len());

        // Columns are preserved; target rows are the least-critical ones.
        let t = net.layers()[0].weight_tensors()[0];
        let cols = t.shape().dims()[1];
        for (hit, (at, _)) in c.hits.iter().zip(patched.iter()) {
            assert_eq!(hit.at.offset % cols, at.offset % cols);
        }
    }

    #[test]
    fn mitigations_are_deterministic() {
        let net = test_net();
        let spec = stuck_spec(&net);
        let c = sample_config(&net, &spec, 3);
        for kind in [
            MitigationKind::None,
            MitigationKind::RangeRestriction,
            MitigationKind::FaultAwareMapping,
        ] {
            let m = kind.instance();
            assert_eq!(m.patches(&net, &c), m.patches(&net, &c), "{}", m.name());
        }
    }

    #[test]
    fn kind_parses_cli_spellings() {
        assert_eq!(MitigationKind::parse("none").unwrap(), MitigationKind::None);
        assert_eq!(MitigationKind::parse("range").unwrap(), MitigationKind::RangeRestriction);
        assert_eq!(MitigationKind::parse("remap").unwrap(), MitigationKind::FaultAwareMapping);
        assert!(MitigationKind::parse("magic").is_err());
    }
}
