//! Fault maps: per-memory-region bit-error-rate specifications,
//! deterministically sampled into concrete fault configurations.
//!
//! A reliability campaign does not enumerate every possible fault the way
//! a detection campaign does — it asks what a *distribution* of faults
//! costs. A [`FaultMapSpec`] assigns a bit-error rate to each memory
//! region of the deployed network (one region per weight tensor, one per
//! spiking layer's neuron-state memory), and sampling it `configs` times
//! from a seed yields that many concrete [`FaultConfig`]s. Sampling is a
//! pure function of `(spec, network topology, config index)` — every
//! cluster worker that re-samples config `k` obtains the identical fault
//! set, which is what lets reliability campaigns ship only the spec over
//! the wire and still merge digest-identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use snn_faults::{bit_flip_int8, TransientWindow};
use snn_model::{Network, NeuronBehaviorFault, NeuronFaultMap, WeightRef};

/// Saturation magnitude for stuck-at weight corruptions, as a multiple of
/// the network's largest absolute weight — matching the detection path's
/// default saturation factor so both campaigns stress the same outliers.
pub const STUCK_SAT_FACTOR: f32 = 1.5;

/// One addressable memory region of the deployed network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryRegion {
    /// The weight memory of one tensor (`tensor` indexes the layer's
    /// weight tensors: 0 for dense/conv weights and recurrent `W_in`,
    /// 1 for recurrent `W_rec`).
    Weights {
        /// Layer index within the network.
        layer: usize,
        /// Weight-tensor index within the layer.
        tensor: usize,
    },
    /// The neuron-state memory (membrane/threshold registers) of one
    /// spiking layer.
    Neurons {
        /// Layer index within the network.
        layer: usize,
    },
}

impl MemoryRegion {
    /// Short human-readable label used in criticality rankings.
    pub fn label(&self) -> String {
        match self {
            Self::Weights { layer, tensor } => format!("weights[L{layer}.T{tensor}]"),
            Self::Neurons { layer } => format!("neurons[L{layer}]"),
        }
    }
}

/// A memory region together with its bit-error rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// The addressed region.
    pub region: MemoryRegion,
    /// Per-cell fault probability in `[0, 1]`.
    pub ber: f32,
}

/// How a sampled weight-memory hit corrupts the stored value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeightFaultModel {
    /// Flip one uniformly-chosen bit of the int8 memory word (the
    /// SoftSNN soft-error model; uses [`snn_faults::bit_flip_int8`]).
    BitFlip,
    /// Stick the cell at ±[`STUCK_SAT_FACTOR`]·max|w| with a fair sign
    /// coin (permanent-defect model; the case range-restriction targets).
    StuckSat,
}

/// A complete fault-map specification: regions, rates, sample count and
/// the seed everything derives from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultMapSpec {
    /// Regions under fault, in a fixed order (sampling iterates this
    /// order, so the order is part of the deterministic contract).
    pub regions: Vec<RegionSpec>,
    /// Number of fault configurations to sample.
    pub configs: usize,
    /// Root seed; config `k` derives its own RNG stream from it.
    pub seed: u64,
    /// Corruption model for weight-memory hits.
    pub weight_model: WeightFaultModel,
    /// Timestep window the faults are live in (`None` = permanent).
    pub window: Option<TransientWindow>,
}

impl FaultMapSpec {
    /// A spec covering *every* memory region of `net` uniformly:
    /// `weight_ber` on each weight tensor, `neuron_ber` on each spiking
    /// layer's neuron-state memory (regions with rate 0 are omitted).
    pub fn uniform(
        net: &Network,
        weight_ber: f32,
        neuron_ber: f32,
        configs: usize,
        seed: u64,
        weight_model: WeightFaultModel,
        window: Option<TransientWindow>,
    ) -> Self {
        let mut regions = Vec::new();
        for (layer, l) in net.layers().iter().enumerate() {
            if weight_ber > 0.0 {
                for tensor in 0..l.weight_tensors().len() {
                    regions.push(RegionSpec {
                        region: MemoryRegion::Weights { layer, tensor },
                        ber: weight_ber,
                    });
                }
            }
            if neuron_ber > 0.0 && l.is_spiking() {
                regions
                    .push(RegionSpec { region: MemoryRegion::Neurons { layer }, ber: neuron_ber });
            }
        }
        Self { regions, configs, seed, weight_model, window }
    }

    /// Checks the spec against a concrete network, returning a
    /// description of the first problem found.
    pub fn validate(&self, net: &Network) -> Result<(), String> {
        if self.configs == 0 {
            return Err("fault map samples zero configurations".into());
        }
        if self.regions.is_empty() {
            return Err("fault map addresses no memory regions".into());
        }
        for (i, r) in self.regions.iter().enumerate() {
            if !(0.0..=1.0).contains(&r.ber) || r.ber.is_nan() {
                return Err(format!("region {i}: bit-error rate {} outside [0, 1]", r.ber));
            }
            match r.region {
                MemoryRegion::Weights { layer, tensor } => {
                    let Some(l) = net.layers().get(layer) else {
                        return Err(format!("region {i}: layer {layer} out of range"));
                    };
                    if tensor >= l.weight_tensors().len() {
                        return Err(format!(
                            "region {i}: layer {layer} has no weight tensor {tensor}"
                        ));
                    }
                }
                MemoryRegion::Neurons { layer } => {
                    let Some(l) = net.layers().get(layer) else {
                        return Err(format!("region {i}: layer {layer} out of range"));
                    };
                    if !l.is_spiking() {
                        return Err(format!("region {i}: layer {layer} has no neuron state"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A corruption of one weight-memory cell, kept symbolic so mitigations
/// can relocate the hit and re-derive the faulty value at the new cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightCorruption {
    /// One flipped bit of the int8 word (bit `0..8`).
    BitFlip {
        /// Flipped bit index.
        bit: u8,
    },
    /// Cell stuck at a fixed value regardless of the stored weight.
    StuckAt {
        /// The stuck value.
        value: f32,
    },
}

/// One sampled weight-memory hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightHit {
    /// The afflicted cell.
    pub at: WeightRef,
    /// How the cell's content is corrupted.
    pub corruption: WeightCorruption,
}

/// One concrete fault configuration sampled from a [`FaultMapSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Index of this configuration within the spec's sample set.
    pub id: usize,
    /// Sampled weight-memory hits, in deterministic region/offset order.
    pub hits: Vec<WeightHit>,
    /// Sampled neuron-state faults.
    pub neurons: NeuronFaultMap,
    /// Indices into `spec.regions` that received at least one hit.
    pub hit_regions: Vec<usize>,
}

impl FaultConfig {
    /// Realizes the weight hits against `net`'s current weights as
    /// `(address, faulty value)` patches, with no mitigation applied.
    pub fn realize(&self, net: &Network) -> Vec<(WeightRef, f32)> {
        let max_abs = net.max_abs_weight();
        self.hits
            .iter()
            .map(|h| {
                let value = match h.corruption {
                    WeightCorruption::BitFlip { bit } => {
                        bit_flip_int8(net.weight(h.at), max_abs, bit)
                    }
                    WeightCorruption::StuckAt { value } => value,
                };
                (h.at, value)
            })
            .collect()
    }

    /// `true` if the configuration perturbs nothing.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty() && self.neurons.is_empty()
    }
}

/// SplitMix64 finalizer — decorrelates per-config seeds derived from the
/// root seed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG stream of config `k` under root seed `seed`.
fn config_rng(seed: u64, k: usize) -> StdRng {
    StdRng::seed_from_u64(splitmix64(seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Samples fault configuration `k` of `spec` on `net`.
///
/// This is a pure function: any process sampling the same
/// `(spec, net topology, k)` obtains the identical configuration, which
/// is the determinism contract distributed reliability campaigns rely on.
pub fn sample_config(net: &Network, spec: &FaultMapSpec, k: usize) -> FaultConfig {
    let mut rng = config_rng(spec.seed, k);
    let sat = net.max_abs_weight() * STUCK_SAT_FACTOR;
    let mut hits = Vec::new();
    let mut neurons = NeuronFaultMap::new();
    let mut hit_regions = Vec::new();

    for (ri, r) in spec.regions.iter().enumerate() {
        let mut region_hit = false;
        match r.region {
            MemoryRegion::Weights { layer, tensor } => {
                let len = net.layers()[layer].weight_tensors()[tensor].as_slice().len();
                for offset in 0..len {
                    if rng.gen::<f32>() >= r.ber {
                        continue;
                    }
                    region_hit = true;
                    let corruption = match spec.weight_model {
                        WeightFaultModel::BitFlip => {
                            WeightCorruption::BitFlip { bit: rng.gen_range(0..8u8) }
                        }
                        WeightFaultModel::StuckSat => WeightCorruption::StuckAt {
                            value: if rng.gen_bool(0.5) { sat } else { -sat },
                        },
                    };
                    hits.push(WeightHit { at: WeightRef { layer, tensor, offset }, corruption });
                }
            }
            MemoryRegion::Neurons { layer } => {
                let n = net.layers()[layer].out_features();
                for index in 0..n {
                    if rng.gen::<f32>() >= r.ber {
                        continue;
                    }
                    region_hit = true;
                    let fault = if rng.gen_bool(0.5) {
                        NeuronBehaviorFault::Dead
                    } else {
                        NeuronBehaviorFault::Saturated
                    };
                    neurons.insert(layer, index, fault);
                }
            }
        }
        if region_hit {
            hit_regions.push(ri);
        }
    }
    FaultConfig { id: k, hits, neurons, hit_regions }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact sampled values
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use snn_model::{LifParams, NetworkBuilder};

    fn test_net() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        NetworkBuilder::new(4, LifParams::default()).dense(6).dense(3).build(&mut rng)
    }

    fn test_spec(net: &Network) -> FaultMapSpec {
        FaultMapSpec::uniform(net, 0.05, 0.05, 8, 42, WeightFaultModel::BitFlip, None)
    }

    #[test]
    fn uniform_covers_all_regions() {
        let net = test_net();
        let spec = test_spec(&net);
        // Two dense layers: one weight tensor + one neuron region each.
        assert_eq!(spec.regions.len(), 4);
        assert!(spec.validate(&net).is_ok());
    }

    #[test]
    fn sampling_is_deterministic_per_config() {
        let net = test_net();
        let spec = test_spec(&net);
        for k in 0..spec.configs {
            assert_eq!(sample_config(&net, &spec, k), sample_config(&net, &spec, k));
        }
    }

    #[test]
    fn different_configs_differ() {
        let net = test_net();
        let spec = FaultMapSpec::uniform(&net, 0.2, 0.2, 8, 42, WeightFaultModel::BitFlip, None);
        let all: Vec<_> = (0..8).map(|k| sample_config(&net, &spec, k)).collect();
        assert!(all.windows(2).any(|w| w[0].hits != w[1].hits || w[0].neurons != w[1].neurons));
    }

    #[test]
    fn zero_ber_samples_nothing() {
        let net = test_net();
        let spec = FaultMapSpec {
            regions: vec![RegionSpec {
                region: MemoryRegion::Weights { layer: 0, tensor: 0 },
                ber: 0.0,
            }],
            configs: 3,
            seed: 7,
            weight_model: WeightFaultModel::StuckSat,
            window: None,
        };
        for k in 0..3 {
            assert!(sample_config(&net, &spec, k).is_empty());
        }
    }

    #[test]
    fn unit_ber_hits_every_cell() {
        let net = test_net();
        let spec = FaultMapSpec {
            regions: vec![RegionSpec {
                region: MemoryRegion::Weights { layer: 0, tensor: 0 },
                ber: 1.0,
            }],
            configs: 1,
            seed: 7,
            weight_model: WeightFaultModel::StuckSat,
            window: None,
        };
        let c = sample_config(&net, &spec, 0);
        assert_eq!(c.hits.len(), 4 * 6);
        assert_eq!(c.hit_regions, vec![0]);
    }

    #[test]
    fn stuck_sat_realizes_outliers() {
        let net = test_net();
        let spec = FaultMapSpec {
            regions: vec![RegionSpec {
                region: MemoryRegion::Weights { layer: 0, tensor: 0 },
                ber: 1.0,
            }],
            configs: 1,
            seed: 3,
            weight_model: WeightFaultModel::StuckSat,
            window: None,
        };
        let c = sample_config(&net, &spec, 0);
        let sat = net.max_abs_weight() * STUCK_SAT_FACTOR;
        for (_, v) in c.realize(&net) {
            assert_eq!(v.abs(), sat);
        }
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let net = test_net();
        let mut spec = test_spec(&net);
        spec.configs = 0;
        assert!(spec.validate(&net).is_err());

        let mut spec = test_spec(&net);
        spec.regions.clear();
        assert!(spec.validate(&net).is_err());

        let mut spec = test_spec(&net);
        spec.regions[0].ber = 1.5;
        assert!(spec.validate(&net).is_err());

        let mut spec = test_spec(&net);
        spec.regions[0].region = MemoryRegion::Weights { layer: 9, tensor: 0 };
        assert!(spec.validate(&net).is_err());

        let mut spec = test_spec(&net);
        spec.regions[0].region = MemoryRegion::Weights { layer: 0, tensor: 2 };
        assert!(spec.validate(&net).is_err());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let net = test_net();
        let spec = FaultMapSpec::uniform(
            &net,
            0.01,
            0.02,
            5,
            99,
            WeightFaultModel::StuckSat,
            Some(TransientWindow::new(3, 9)),
        );
        let json = serde::json::to_string(&spec);
        let back: FaultMapSpec = serde::json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
