//! Fault-map-driven reliability campaigns for spiking neural networks:
//! accuracy-impact scoring and mitigation evaluation.
//!
//! The detection campaigns of the source paper ask *"does a test detect
//! this fault?"*; the reliability literature (ReSpawn, SoftSNN,
//! RescueSNN — see PAPERS.md) asks the dual question: *"how much
//! accuracy does a fault cost, and does a mitigation recover it?"* This
//! crate points the workspace's existing fault machinery at that
//! question:
//!
//! * [`fault_map`] — per-memory-region bit-error-rate specs
//!   ([`FaultMapSpec`]) deterministically sampled into concrete fault
//!   configurations ([`FaultConfig`]) from a seed. Sampling is a pure
//!   function of `(spec, topology, config index)`, so distributed
//!   workers re-sample instead of receiving fault lists over the wire.
//! * transient injection windows — faults live only for `[t0, t1)`
//!   timesteps, via [`snn_faults::TransientWindow`] and the segmented
//!   simulator path ([`snn_faults::windowed_forward`]).
//! * [`campaign`] — the accuracy-impact campaign: each configuration is
//!   scored on a deterministic oracle-labelled evaluation set as a
//!   (baseline, faulty, mitigated) accuracy triple plus spike-activity
//!   delta, encoded as mergeable [`snn_faults::FaultOutcome`]s so the
//!   cluster's chunking, leases and FNV-1a verdict digest apply
//!   unchanged.
//! * [`mitigation`] — strategies behind the [`Mitigation`] trait:
//!   SoftSNN-style weight [`RangeRestriction`] and ReSpawn-style
//!   [`FaultAwareMapping`].
//! * [`report`] — drop distributions (mean/p95/worst), per-region
//!   criticality ranking and the campaign digest.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use snn_reliability::{
//!     EvalSpec, FaultMapSpec, MitigationKind, ReliabilityEvaluator, ReliabilityReport,
//!     ReliabilitySpec, WeightFaultModel,
//! };
//! use snn_model::{LifParams, NetworkBuilder};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = NetworkBuilder::new(4, LifParams::default()).dense(6).dense(2).build(&mut rng);
//! let spec = ReliabilitySpec {
//!     map: FaultMapSpec::uniform(&net, 0.05, 0.0, 4, 42, WeightFaultModel::StuckSat, None),
//!     eval: EvalSpec { samples: 3, steps: 10, rate: 0.4, seed: 7 },
//!     mitigation: MitigationKind::RangeRestriction,
//! };
//! let eval = ReliabilityEvaluator::new(net.clone(), spec.clone()).unwrap();
//! let ids: Vec<usize> = (0..spec.map.configs).collect();
//! let outcomes = eval
//!     .evaluate_chunk(&ids, 1, &snn_faults::CancelToken::new())
//!     .unwrap();
//! let report = ReliabilityReport::build(&net, &spec, &outcomes).unwrap();
//! assert_eq!(report.configs, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod fault_map;
pub mod mitigation;
pub mod report;

pub use campaign::{eval_inputs, ConfigOutcome, EvalSpec, ReliabilityEvaluator, ReliabilitySpec};
pub use fault_map::{
    sample_config, FaultConfig, FaultMapSpec, MemoryRegion, RegionSpec, WeightCorruption,
    WeightFaultModel, WeightHit, STUCK_SAT_FACTOR,
};
pub use mitigation::{
    FaultAwareMapping, Mitigation, MitigationKind, RangeRestriction, Unmitigated,
};
pub use report::{DropStats, RegionCriticality, ReliabilityReport};
