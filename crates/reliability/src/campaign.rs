//! The accuracy-impact campaign: evaluate every sampled fault
//! configuration against a labelled evaluation set, as (baseline,
//! faulty, mitigated) accuracy triples plus spike-activity deltas.
//!
//! ## Labelling
//!
//! The evaluation set is procedural (Bernoulli spike trains from the
//! spec's seed) and *oracle-labelled*: each sample's label is the clean
//! network's own top-1 prediction. Baseline accuracy is therefore 1.0 by
//! construction, and "accuracy drop" measures exactly the behavioural
//! divergence the fault causes — no training-set noise involved. This
//! also makes mitigation soundness exact: a mitigation that is the
//! identity on clean weights can never lower fault-free accuracy.
//!
//! ## Distribution
//!
//! Config outcomes are encoded as [`snn_faults::FaultOutcome`] values
//! (`fault_id` = config index, `class_diff` = the accuracy triple), so
//! the cluster's chunk planner, lease scheduler, merge and FNV-1a digest
//! apply unchanged — a distributed reliability campaign merges
//! bit-identically to a single-process run.

use crate::fault_map::{sample_config, FaultMapSpec};
use crate::mitigation::MitigationKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use snn_faults::progress::{CancelToken, Cancelled};
use snn_faults::{parallel, windowed_forward, FaultOutcome};
use snn_model::{Network, RecordOptions, Trace};
use snn_tensor::{Shape, Tensor};

/// Procedural evaluation-set specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalSpec {
    /// Number of evaluation samples.
    pub samples: usize,
    /// Timesteps per sample.
    pub steps: usize,
    /// Input spike probability per (tick, feature).
    pub rate: f32,
    /// Seed of the evaluation-set stream (independent of the fault seed).
    pub seed: u64,
}

impl Default for EvalSpec {
    fn default() -> Self {
        Self { samples: 16, steps: 20, rate: 0.3, seed: 7 }
    }
}

/// A full reliability-campaign specification: the fault map, the
/// evaluation set and the mitigation under test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilitySpec {
    /// Fault-map regions, rates, sample count, seed and window.
    pub map: FaultMapSpec,
    /// Evaluation-set shape.
    pub eval: EvalSpec,
    /// Mitigation strategy evaluated alongside the unmitigated run.
    pub mitigation: MitigationKind,
}

impl ReliabilitySpec {
    /// Checks the spec against a concrete network.
    pub fn validate(&self, net: &Network) -> Result<(), String> {
        self.map.validate(net)?;
        if self.eval.samples == 0 {
            return Err("evaluation set has zero samples".into());
        }
        if self.eval.steps == 0 {
            return Err("evaluation samples have zero timesteps".into());
        }
        if !(0.0..=1.0).contains(&self.eval.rate) || self.eval.rate.is_nan() {
            return Err(format!("input rate {} outside [0, 1]", self.eval.rate));
        }
        Ok(())
    }
}

/// Accuracy triple and activity delta of one evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigOutcome {
    /// Configuration index within the spec's sample set.
    pub config: usize,
    /// Samples the clean network classifies per its own oracle labels —
    /// always `samples` by construction; carried for report clarity.
    pub baseline_correct: usize,
    /// Samples still classified correctly under the unmitigated fault.
    pub faulty_correct: usize,
    /// Samples classified correctly under the mitigated fault.
    pub mitigated_correct: usize,
    /// Evaluation-set size.
    pub samples: usize,
    /// Summed L1 distance between faulty and baseline output spike
    /// trains across the evaluation set.
    pub spike_delta: f32,
}

impl ConfigOutcome {
    /// Unmitigated accuracy drop in `[0, 1]` (0.0 on an empty set).
    pub fn accuracy_drop(&self) -> f32 {
        fraction(
            self.baseline_correct - self.faulty_correct.min(self.baseline_correct),
            self.samples,
        )
    }

    /// Mitigated accuracy drop in `[0, 1]` (0.0 on an empty set).
    pub fn mitigated_drop(&self) -> f32 {
        fraction(
            self.baseline_correct - self.mitigated_correct.min(self.baseline_correct),
            self.samples,
        )
    }

    /// Encodes the outcome as a detection-campaign [`FaultOutcome`] so
    /// chunk planning, merging and the verdict digest apply unchanged:
    /// `fault_id` carries the config index, `detected` flags any accuracy
    /// loss, `distance` the spike delta, and `class_diff` the exact
    /// `[baseline, faulty, mitigated, samples]` counts (exact in f32 —
    /// evaluation sets are far below 2^24 samples).
    pub fn encode(&self) -> FaultOutcome {
        let counts = vec![
            self.baseline_correct as f32,
            self.faulty_correct as f32,
            self.mitigated_correct as f32,
            self.samples as f32,
        ];
        FaultOutcome {
            fault_id: self.config,
            detected: self.faulty_correct < self.baseline_correct,
            distance: self.spike_delta,
            class_diff: Some(counts),
        }
    }

    /// Decodes an outcome produced by [`ConfigOutcome::encode`].
    pub fn decode(outcome: &FaultOutcome) -> Result<Self, String> {
        let counts = outcome
            .class_diff
            .as_ref()
            .ok_or_else(|| format!("config {}: outcome carries no counts", outcome.fault_id))?;
        if counts.len() != 4 {
            return Err(format!(
                "config {}: expected 4 encoded counts, found {}",
                outcome.fault_id,
                counts.len()
            ));
        }
        Ok(Self {
            config: outcome.fault_id,
            baseline_correct: counts[0] as usize,
            faulty_correct: counts[1] as usize,
            mitigated_correct: counts[2] as usize,
            samples: counts[3] as usize,
            spike_delta: outcome.distance,
        })
    }
}

/// `num / den` guarding the empty denominator to 0.0, not NaN.
pub(crate) fn fraction(num: usize, den: usize) -> f32 {
    if den == 0 {
        return 0.0;
    }
    (num as f32) / (den as f32)
}

/// Generates the deterministic evaluation inputs of `spec` for a network
/// with `features` input features.
pub fn eval_inputs(spec: &EvalSpec, features: usize) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.samples)
        .map(|_| snn_tensor::init::bernoulli(&mut rng, Shape::d2(spec.steps, features), spec.rate))
        .collect()
}

/// A prepared reliability campaign: the clean network, the evaluation
/// inputs, and the oracle labels/baseline traces computed once.
pub struct ReliabilityEvaluator {
    net: Network,
    spec: ReliabilitySpec,
    inputs: Vec<Tensor>,
    baselines: Vec<Trace>,
    predictions: Vec<usize>,
}

impl ReliabilityEvaluator {
    /// Prepares the campaign: validates the spec, generates the
    /// evaluation set and runs the clean baseline over it.
    pub fn new(net: Network, spec: ReliabilitySpec) -> Result<Self, String> {
        spec.validate(&net)?;
        let _span = snn_obs::span!("reliability.prepare");
        let inputs = eval_inputs(&spec.eval, net.input_features());
        let baselines: Vec<Trace> =
            inputs.iter().map(|s| net.forward(s, RecordOptions::spikes_only())).collect();
        let predictions: Vec<usize> = baselines.iter().map(Trace::predict).collect();
        Ok(Self { net, spec, inputs, baselines, predictions })
    }

    /// The campaign spec.
    pub fn spec(&self) -> &ReliabilitySpec {
        &self.spec
    }

    /// The clean network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Total number of configurations the spec samples.
    pub fn total_configs(&self) -> usize {
        self.spec.map.configs
    }

    /// Evaluates one configuration on a scratch clone of the network.
    ///
    /// Single-threaded and sequential over samples, so the f32 spike
    /// delta accumulates in a fixed order — the result is bit-identical
    /// no matter which worker or chunk evaluates the config.
    pub fn evaluate_config(&self, scratch: &mut Network, id: usize) -> ConfigOutcome {
        let started = snn_obs::clock::monotonic();
        let config = sample_config(&self.net, &self.spec.map, id);
        let raw = config.realize(&self.net);
        let mitigated = self.spec.mitigation.instance().patches(&self.net, &config);
        let window = self.spec.map.window;

        let samples = self.inputs.len();
        let mut faulty_correct = 0usize;
        let mut mitigated_correct = 0usize;
        let mut spike_delta = 0.0f32;
        for ((input, baseline), &label) in
            self.inputs.iter().zip(self.baselines.iter()).zip(self.predictions.iter())
        {
            let faulty = windowed_forward(
                scratch,
                input,
                &raw,
                &config.neurons,
                window,
                RecordOptions::spikes_only(),
            );
            if faulty.predict() == label {
                faulty_correct += 1;
            }
            spike_delta += baseline.output_distance(&faulty);
            let shielded = windowed_forward(
                scratch,
                input,
                &mitigated,
                &config.neurons,
                window,
                RecordOptions::spikes_only(),
            );
            if shielded.predict() == label {
                mitigated_correct += 1;
            }
        }

        snn_obs::counter!(
            "snn_reliability_configs_evaluated_total",
            "Fault configurations evaluated across reliability campaigns."
        )
        .inc();
        snn_obs::counter!(
            "snn_reliability_samples_total",
            "Evaluation samples simulated across reliability campaigns."
        )
        // Each sample runs faulty + mitigated.
        .add((samples * 2) as u64);
        snn_obs::histogram!(
            "snn_reliability_config_seconds",
            "Per-configuration evaluation time.",
            snn_obs::metrics::FINE_DURATION_BUCKETS
        )
        .observe_duration(snn_obs::clock::monotonic().saturating_sub(started));

        ConfigOutcome {
            config: id,
            baseline_correct: samples,
            faulty_correct,
            mitigated_correct,
            samples,
            spike_delta,
        }
    }

    /// Evaluates the given configuration ids (a cluster chunk, or the
    /// whole campaign), encoded as mergeable [`FaultOutcome`]s.
    pub fn evaluate_chunk(
        &self,
        ids: &[usize],
        threads: usize,
        cancel: &CancelToken,
    ) -> Result<Vec<FaultOutcome>, Cancelled> {
        let mut span = snn_obs::span!("reliability.chunk");
        span.attr("configs", ids.len().to_string());
        parallel::try_map_indexed(
            ids.len(),
            threads,
            cancel,
            || self.net.clone(),
            |scratch, i| self.evaluate_config(scratch, ids[i]).encode(),
        )
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact encoded counts
mod tests {
    use super::*;
    use crate::fault_map::WeightFaultModel;
    use rand::rngs::StdRng;
    use snn_model::{LifParams, NetworkBuilder};

    fn test_net() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        NetworkBuilder::new(4, LifParams::default()).dense(8).dense(3).build(&mut rng)
    }

    fn test_spec(net: &Network, ber: f32) -> ReliabilitySpec {
        ReliabilitySpec {
            map: FaultMapSpec::uniform(net, ber, 0.0, 6, 42, WeightFaultModel::StuckSat, None),
            eval: EvalSpec { samples: 4, steps: 12, rate: 0.4, seed: 9 },
            mitigation: MitigationKind::RangeRestriction,
        }
    }

    #[test]
    fn outcome_round_trips_through_fault_outcome() {
        let o = ConfigOutcome {
            config: 5,
            baseline_correct: 16,
            faulty_correct: 11,
            mitigated_correct: 14,
            samples: 16,
            spike_delta: 3.25,
        };
        let decoded = ConfigOutcome::decode(&o.encode()).unwrap();
        assert_eq!(decoded, o);
        assert!(o.encode().detected);
        assert_eq!(o.accuracy_drop(), 5.0 / 16.0);
        assert_eq!(o.mitigated_drop(), 2.0 / 16.0);
    }

    #[test]
    fn decode_rejects_foreign_outcomes() {
        let detection =
            FaultOutcome { fault_id: 0, detected: true, distance: 1.0, class_diff: None };
        assert!(ConfigOutcome::decode(&detection).is_err());
        let short = FaultOutcome {
            fault_id: 0,
            detected: true,
            distance: 1.0,
            class_diff: Some(vec![1.0, 2.0]),
        };
        assert!(ConfigOutcome::decode(&short).is_err());
    }

    #[test]
    fn zero_ber_campaign_costs_no_accuracy() {
        let net = test_net();
        let mut spec = test_spec(&net, 0.0);
        // A region list with rate 0 everywhere: uniform() would omit the
        // regions, so build one explicitly.
        spec.map = FaultMapSpec {
            regions: vec![crate::fault_map::RegionSpec {
                region: crate::fault_map::MemoryRegion::Weights { layer: 0, tensor: 0 },
                ber: 0.0,
            }],
            configs: 3,
            seed: 1,
            weight_model: WeightFaultModel::StuckSat,
            window: None,
        };
        let eval = ReliabilityEvaluator::new(net.clone(), spec).unwrap();
        let mut scratch = net;
        for id in 0..3 {
            let o = eval.evaluate_config(&mut scratch, id);
            assert_eq!(o.faulty_correct, o.samples);
            assert_eq!(o.mitigated_correct, o.samples);
            assert_eq!(o.spike_delta, 0.0);
        }
    }

    #[test]
    fn chunked_evaluation_is_bit_identical_to_whole() {
        let net = test_net();
        let spec = test_spec(&net, 0.1);
        let eval = ReliabilityEvaluator::new(net, spec).unwrap();
        let all: Vec<usize> = (0..eval.total_configs()).collect();
        let whole = eval.evaluate_chunk(&all, 1, &CancelToken::new()).unwrap();
        let mut pieces = Vec::new();
        for chunk in all.chunks(2) {
            pieces.extend(eval.evaluate_chunk(chunk, 2, &CancelToken::new()).unwrap());
        }
        assert_eq!(
            snn_faults::verdict_digest(&whole),
            snn_faults::verdict_digest(&pieces),
            "chunked evaluation must merge digest-identically"
        );
    }

    #[test]
    fn validate_rejects_degenerate_eval_sets() {
        let net = test_net();
        let mut spec = test_spec(&net, 0.1);
        spec.eval.samples = 0;
        assert!(spec.validate(&net).is_err());
        let mut spec = test_spec(&net, 0.1);
        spec.eval.steps = 0;
        assert!(spec.validate(&net).is_err());
        let mut spec = test_spec(&net, 0.1);
        spec.eval.rate = 1.5;
        assert!(spec.validate(&net).is_err());
    }
}
