//! Property-based invariants of the SNN simulator, checked over randomly
//! generated networks, parameters and stimuli.

#![allow(clippy::float_cmp)] // tests assert exact spike/gradient values

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_model::{event_forward, LifParams, Network, NetworkBuilder, NeuronFaultMap, RecordOptions};
use snn_tensor::{Shape, Tensor};

/// Strategy: a small random dense/recurrent network plus a stimulus.
fn arbitrary_net_and_input() -> impl Strategy<Value = (Network, Tensor)> {
    (
        0u64..1000,      // weight seed
        2usize..6,       // inputs
        2usize..10,      // hidden
        1usize..4,       // outputs
        0u32..4,         // refractory
        50u32..101,      // leak %
        5usize..30,      // steps
        prop::bool::ANY, // recurrent hidden?
        0.0f32..0.8,     // input density
    )
        .prop_map(
            |(seed, inputs, hidden, outputs, refrac, leak, steps, recurrent, density)| {
                let mut rng = StdRng::seed_from_u64(seed);
                let lif =
                    LifParams { threshold: 1.0, leak: leak as f32 / 100.0, refrac_steps: refrac };
                let builder = NetworkBuilder::new(inputs, lif);
                let builder =
                    if recurrent { builder.recurrent(hidden) } else { builder.dense(hidden) };
                let net = builder.dense(outputs).build(&mut rng);
                let input =
                    snn_tensor::init::bernoulli(&mut rng, Shape::d2(steps, inputs), density);
                (net, input)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All outputs of all layers are strictly binary spike trains.
    #[test]
    fn outputs_are_binary((net, input) in arbitrary_net_and_input()) {
        let trace = net.forward(&input, RecordOptions::spikes_only());
        for lt in &trace.layers {
            prop_assert!(lt.output.is_binary());
        }
    }

    /// No neuron ever fires twice within its refractory window: for
    /// refractory R, consecutive spikes are at least R+1 ticks apart.
    #[test]
    fn refractory_spacing_is_respected((net, input) in arbitrary_net_and_input()) {
        let trace = net.forward(&input, RecordOptions::spikes_only());
        for (idx, layer) in net.layers().iter().enumerate() {
            let Some(lif) = layer.lif() else { continue };
            let min_gap = lif.refrac_steps as usize + 1;
            let n = layer.out_features();
            let out = trace.layers[idx].output.as_slice();
            let steps = input.shape().dim(0);
            for i in 0..n {
                let mut last: Option<usize> = None;
                for t in 0..steps {
                    if out[t * n + i] == 1.0 {
                        if let Some(prev) = last {
                            prop_assert!(
                                t - prev >= min_gap,
                                "layer {idx} neuron {i}: spikes at {prev} and {t} violate refrac {}",
                                lif.refrac_steps
                            );
                        }
                        last = Some(t);
                    }
                }
            }
        }
    }

    /// Simulation is a pure function: repeated runs agree exactly.
    #[test]
    fn forward_is_pure((net, input) in arbitrary_net_and_input()) {
        let a = net.forward(&input, RecordOptions::full());
        let b = net.forward(&input, RecordOptions::full());
        prop_assert_eq!(a, b);
    }

    /// The event-driven engine agrees with the clocked engine on every
    /// random network (including recurrent ones) — cross-oracle check.
    #[test]
    fn engines_are_equivalent((net, input) in arbitrary_net_and_input()) {
        let dense = net.forward(&input, RecordOptions::spikes_only());
        let (event, _) = event_forward(&net, &input, &NeuronFaultMap::new());
        for (idx, (d, e)) in dense.layers.iter().zip(event.iter()).enumerate() {
            prop_assert_eq!(&d.output, e, "layer {} diverged", idx);
        }
    }

    /// Save/load round trips preserve behaviour bit-exactly.
    #[test]
    fn serialization_preserves_behaviour((net, input) in arbitrary_net_and_input()) {
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        let loaded = Network::load(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(&loaded, &net);
        let a = net.forward(&input, RecordOptions::spikes_only());
        let b = loaded.forward(&input, RecordOptions::spikes_only());
        prop_assert_eq!(a.output(), b.output());
    }

    /// A dead neuron's spike train is empty. In a *feedforward* layer the
    /// fault is also local: no other neuron of the same layer changes
    /// (in a recurrent layer the victim's missing spikes do perturb its
    /// neighbours through the recurrent weights, so locality only applies
    /// to the dense case).
    #[test]
    fn dead_fault_is_local_to_its_neuron((net, input) in arbitrary_net_and_input()) {
        let (layer, n) = {
            let spiking: Vec<(usize, usize)> = net.neuron_layout();
            spiking[0]
        };
        let victim = n / 2;
        let faults = NeuronFaultMap::single(layer, victim, snn_model::NeuronBehaviorFault::Dead);
        let nominal = net.forward(&input, RecordOptions::spikes_only());
        let faulty = net.forward_faulty(&input, RecordOptions::spikes_only(), &faults);
        let steps = input.shape().dim(0);
        let out_n = net.layers()[layer].out_features();
        let recurrent = matches!(net.layers()[layer], snn_model::Layer::Recurrent(_));
        let fo = faulty.layers[layer].output.as_slice();
        let no = nominal.layers[layer].output.as_slice();
        for t in 0..steps {
            prop_assert_eq!(fo[t * out_n + victim], 0.0, "victim fired at t={}", t);
            if recurrent {
                continue;
            }
            for i in 0..out_n {
                if i != victim {
                    prop_assert_eq!(fo[t * out_n + i], no[t * out_n + i]);
                }
            }
        }
    }

    /// Monotone stimulus growth: prepending ticks to a stimulus never
    /// changes the response to the original window start when the network
    /// state is fresh (prefix property of causal simulation).
    #[test]
    fn simulation_is_causal((net, input) in arbitrary_net_and_input()) {
        let steps = input.shape().dim(0);
        if steps < 4 {
            return Ok(());
        }
        // Truncate to the first half: outputs over that window must match
        // the full run exactly (the future cannot affect the past).
        let half = steps / 2;
        let features = input.shape().dim(1);
        let head = Tensor::from_vec(
            Shape::d2(half, features),
            input.as_slice()[..half * features].to_vec(),
        ).unwrap();
        let full = net.forward(&input, RecordOptions::spikes_only());
        let part = net.forward(&head, RecordOptions::spikes_only());
        let classes = net.output_features();
        prop_assert_eq!(
            &full.output().as_slice()[..half * classes],
            part.output().as_slice()
        );
    }
}
