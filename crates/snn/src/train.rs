//! Surrogate-gradient training of SNN classifiers.
//!
//! The benchmarks of the paper are *trained* networks (Table I reports
//! their prediction accuracy); faults are labelled critical or benign by
//! their effect on the trained model's predictions. This module provides a
//! compact trainer: softmax cross-entropy on output spike counts
//! (rate-coded readout), BPTT through the simulator, Adam on all weights,
//! plus a mild spike-rate regularizer that keeps hidden activity alive —
//! standard practice in surrogate-gradient SNN training.

use crate::{optim::Adam, InjectedGrads, Network, RecordOptions, Surrogate, Trace};
use snn_tensor::{Shape, Tensor};

/// Hyper-parameters for [`Trainer`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Adam learning rate.
    pub lr: f32,
    /// Surrogate derivative for BPTT.
    pub surrogate: Surrogate,
    /// Weight of the hidden spike-rate regularizer pulling the mean hidden
    /// rate toward `target_rate` (0 disables it).
    pub rate_reg: f32,
    /// Target mean spikes-per-neuron-per-tick for hidden layers.
    pub target_rate: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { lr: 0.01, surrogate: Surrogate::default(), rate_reg: 0.01, target_rate: 0.08 }
    }
}

/// Mini-batch trainer owning per-tensor Adam state.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_model::train::{TrainConfig, Trainer};
/// use snn_model::{LifParams, NetworkBuilder};
/// use snn_tensor::{Shape, Tensor};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = NetworkBuilder::new(4, LifParams::default())
///     .dense(8)
///     .dense(2)
///     .build(&mut rng);
/// let mut trainer = Trainer::new(&net, TrainConfig::default());
/// let sample = (Tensor::full(Shape::d2(6, 4), 1.0), 1usize);
/// let loss = trainer.train_batch(&mut net, std::slice::from_ref(&sample));
/// assert!(loss.is_finite());
/// ```
#[derive(Debug)]
pub struct Trainer {
    cfg: TrainConfig,
    adam: Vec<Vec<Adam>>,
}

impl Trainer {
    /// Creates a trainer with fresh optimizer state matching `net`'s
    /// weight tensors.
    pub fn new(net: &Network, cfg: TrainConfig) -> Self {
        let adam = net
            .layers()
            .iter()
            .map(|l| l.weight_tensors().into_iter().map(|t| Adam::new(t.shape().clone())).collect())
            .collect();
        Self { cfg, adam }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Accumulates gradients over `batch` and applies one Adam update.
    /// Returns the mean cross-entropy loss over the batch.
    ///
    /// Each sample is `(input [T × features], class label)`.
    ///
    /// # Panics
    ///
    /// Panics if a label is out of range or input shapes mismatch the
    /// network.
    pub fn train_batch(&mut self, net: &mut Network, batch: &[(Tensor, usize)]) -> f32 {
        assert!(!batch.is_empty(), "training batch must be non-empty");
        let classes = net.output_features();
        let num_layers = net.layers().len();
        let mut acc: Vec<Vec<Tensor>> = net
            .layers()
            .iter()
            .map(|l| {
                l.weight_tensors().into_iter().map(|t| Tensor::zeros(t.shape().clone())).collect()
            })
            .collect();
        let mut total_loss = 0.0f32;

        for (input, label) in batch {
            assert!(*label < classes, "label {label} out of range (<{classes})");
            let trace = net.forward(input, RecordOptions::full());
            let steps = trace.steps;
            let (loss, grad_counts) = softmax_xent(&trace, *label);
            total_loss += loss;

            let mut injected = InjectedGrads::none(num_layers);
            // Output-layer gradient: count = Σ_t s[t], so ∂L/∂s[t,k] is the
            // count gradient replicated over time.
            let last = num_layers - 1;
            let mut g_out = Tensor::zeros(Shape::d2(steps, classes));
            {
                let gd = g_out.as_mut_slice();
                for t in 0..steps {
                    gd[t * classes..(t + 1) * classes].copy_from_slice(&grad_counts);
                }
            }
            injected.set(last, g_out);

            // Hidden-rate regularizer: ½·reg·(mean_rate − target)² per layer.
            if self.cfg.rate_reg > 0.0 {
                for (idx, layer) in net.layers().iter().enumerate() {
                    if idx == last || !layer.is_spiking() {
                        continue;
                    }
                    let n = layer.out_features();
                    // snn-lint: allow(L-CAST): steps×neurons stays far below f32's 2^24 exact-integer limit
                    let rate = trace.layers[idx].output.sum() / (steps * n) as f32;
                    // snn-lint: allow(L-CAST): steps×neurons stays far below f32's 2^24 exact-integer limit
                    let g = self.cfg.rate_reg * (rate - self.cfg.target_rate) / (steps * n) as f32;
                    injected.set(idx, Tensor::full(Shape::d2(steps, n), g));
                }
            }

            let grads = net.backward(input, &trace, &injected, self.cfg.surrogate, true);
            for (la, lg) in acc.iter_mut().zip(grads.weights) {
                for (ta, tg) in la.iter_mut().zip(lg) {
                    // snn-lint: allow(L-CAST): batch sizes are small, exactly representable in f32
                    ta.axpy(1.0 / batch.len() as f32, &tg);
                }
            }
        }

        for (layer_idx, layer) in net.layers_mut().iter_mut().enumerate() {
            for (tensor_idx, t) in layer.weight_tensors_mut().into_iter().enumerate() {
                self.adam[layer_idx][tensor_idx].step(t, &acc[layer_idx][tensor_idx], self.cfg.lr);
            }
        }
        // snn-lint: allow(L-CAST): batch sizes are small, exactly representable in f32
        total_loss / batch.len() as f32
    }
}

/// Softmax cross-entropy on output spike counts. Returns the loss and
/// `∂L/∂count` per class.
fn softmax_xent(trace: &Trace, label: usize) -> (f32, Vec<f32>) {
    let counts = trace.class_counts();
    let max = counts.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = counts.iter().map(|&c| (c - max).exp()).collect();
    let z: f32 = exps.iter().sum();
    let probs: Vec<f32> = exps.iter().map(|&e| e / z).collect();
    let loss = -probs[label].max(1e-9).ln();
    let grad =
        probs.iter().enumerate().map(|(k, &p)| p - if k == label { 1.0 } else { 0.0 }).collect();
    (loss, grad)
}

/// Top-1 accuracy of `net` over labelled samples (rate-coded readout).
pub fn evaluate(net: &Network, samples: &[(Tensor, usize)]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = samples
        .iter()
        .filter(|(input, label)| {
            net.forward(input, RecordOptions::spikes_only()).predict() == *label
        })
        .count();
    // snn-lint: allow(L-CAST): sample counts stay far below f32's 2^24 exact-integer limit
    correct as f32 / samples.len() as f32
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use crate::{LifParams, NetworkBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two linearly separable "temporal rate" classes: class 0 spikes on
    /// the first half of channels, class 1 on the second half.
    fn toy_dataset(
        rng: &mut StdRng,
        n: usize,
        features: usize,
        steps: usize,
    ) -> Vec<(Tensor, usize)> {
        (0..n)
            .map(|i| {
                let label = i % 2;
                let mut input = Tensor::zeros(Shape::d2(steps, features));
                for t in 0..steps {
                    for f in 0..features {
                        let hot = if label == 0 { f < features / 2 } else { f >= features / 2 };
                        let p = if hot { 0.7 } else { 0.05 };
                        if rng.gen::<f32>() < p {
                            input[[t, f]] = 1.0;
                        }
                    }
                }
                (input, label)
            })
            .collect()
    }

    #[test]
    fn training_improves_accuracy_on_separable_task() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = NetworkBuilder::new(8, LifParams { refrac_steps: 1, ..LifParams::default() })
            .dense(16)
            .dense(2)
            .build(&mut rng);
        let train: Vec<_> = toy_dataset(&mut rng, 40, 8, 12);
        let test: Vec<_> = toy_dataset(&mut rng, 20, 8, 12);

        let before = evaluate(&net, &test);
        let mut trainer = Trainer::new(&net, TrainConfig { lr: 0.02, ..TrainConfig::default() });
        let mut last_loss = f32::INFINITY;
        for _epoch in 0..15 {
            for chunk in train.chunks(8) {
                last_loss = trainer.train_batch(&mut net, chunk);
            }
        }
        let after = evaluate(&net, &test);
        assert!(
            after >= before && after >= 0.8,
            "accuracy before={before} after={after} loss={last_loss}"
        );
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = NetworkBuilder::new(6, LifParams { refrac_steps: 0, ..LifParams::default() })
            .dense(10)
            .dense(2)
            .build(&mut rng);
        let data = toy_dataset(&mut rng, 16, 6, 10);
        let mut trainer = Trainer::new(&net, TrainConfig::default());
        let first = trainer.train_batch(&mut net, &data);
        let mut last = first;
        for _ in 0..20 {
            last = trainer.train_batch(&mut net, &data);
        }
        assert!(last < first, "loss did not decrease: {first} → {last}");
    }

    #[test]
    fn evaluate_empty_is_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = NetworkBuilder::new(2, LifParams::default()).dense(2).build(&mut rng);
        assert_eq!(evaluate(&net, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn train_rejects_out_of_range_label() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = NetworkBuilder::new(2, LifParams::default()).dense(2).build(&mut rng);
        let mut trainer = Trainer::new(&net, TrainConfig::default());
        let bad = (Tensor::zeros(Shape::d2(3, 2)), 5usize);
        trainer.train_batch(&mut net, std::slice::from_ref(&bad));
    }

    #[test]
    fn softmax_xent_gradient_sums_to_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = NetworkBuilder::new(3, LifParams::default()).dense(4).build(&mut rng);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(8, 3), 0.5);
        let trace = net.forward(&input, RecordOptions::spikes_only());
        let (loss, grad) = softmax_xent(&trace, 2);
        assert!(loss >= 0.0);
        let s: f32 = grad.iter().sum();
        assert!(s.abs() < 1e-5);
        assert!(grad[2] <= 0.0); // true-class gradient pushes count up
    }
}
