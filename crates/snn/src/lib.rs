//! Clocked Leaky-Integrate-and-Fire (LIF) spiking neural network simulator
//! with surrogate-gradient backpropagation-through-time (BPTT).
//!
//! This crate is the substrate that replaces SLAYER/PyTorch in the Rust
//! reproduction of *"Minimum Time Maximum Fault Coverage Testing of Spiking
//! Neural Networks"* (DATE 2025). It provides:
//!
//! * [`LifParams`] — the discrete-time LIF neuron model of the paper's
//!   Fig. 1: leaky integration, threshold firing, reset, refractory period;
//! * [`Layer`] — dense, 2-D convolutional, recurrent and (non-spiking)
//!   average-pooling layers;
//! * [`Network`] / [`NetworkBuilder`] — a layer-sequential SNN with exact
//!   neuron and synapse (weight) accounting, matching the way the paper's
//!   Table I counts network elements;
//! * [`Trace`] — full spatio-temporal state recording of a forward pass
//!   (spike trains `O`, membrane potentials, integration gates);
//! * behavioural neuron-fault hooks ([`NeuronBehaviorFault`]) that let the
//!   fault-injection crate force neurons dead/saturated or perturb their
//!   parameters without touching the simulator internals;
//! * [`Network::backward`] — hand-written BPTT with configurable
//!   [`Surrogate`] spike derivatives and per-layer *injected* spike-train
//!   gradients, which is exactly what the paper's loss functions L1–L5 need
//!   (they differentiate w.r.t. hidden spike trains, not just the output);
//! * [`optim`] — Adam with annealing schedules;
//! * [`gumbel`] — the binary-concrete (Gumbel-Softmax) input relaxation and
//!   straight-through estimator of the paper's Fig. 3;
//! * [`train`] — surrogate-gradient training so benchmark networks have
//!   realistic, trained weights.
//!
//! # Example: simulate a small SNN
//!
//! ```
//! use rand::SeedableRng;
//! use snn_model::{LifParams, NetworkBuilder, RecordOptions};
//! use snn_tensor::{Shape, Tensor};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = NetworkBuilder::new(4, LifParams::default())
//!     .dense(8)
//!     .dense(2)
//!     .build(&mut rng);
//!
//! // 10 timesteps of all-ones input spikes.
//! let input = Tensor::full(Shape::d2(10, 4), 1.0);
//! let trace = net.forward(&input, RecordOptions::spikes_only());
//! assert_eq!(trace.output().shape().dims(), &[10, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backward;
mod builder;
mod event_sim;
mod fault_hooks;
mod io;
mod layer;
mod network;
mod params;
mod quantize;
mod sim;

pub mod gumbel;
pub mod optim;
pub mod train;

pub use backward::{BackwardError, Gradients, InjectedGrads};
pub use builder::NetworkBuilder;
pub use event_sim::{event_forward, EventStats};
pub use fault_hooks::{NeuronBehaviorFault, NeuronFaultMap};
pub use layer::{ConvLayer, DenseLayer, Layer, PoolLayer, RecurrentLayer};
pub use network::{Network, WeightRef};
pub use params::{LifParams, Surrogate};
pub use quantize::{is_quantized, quantize_weights, QuantReport};
pub use sim::{LayerState, LayerTrace, LifState, RecordOptions, Trace};
