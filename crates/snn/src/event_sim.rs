//! Event-driven (sparse) reference simulator.
//!
//! Neuromorphic accelerators process *events*, not dense frames: a spike
//! is routed to its fan-out and updates only the post-synaptic membranes
//! it touches. This module implements that execution model with
//! *identical discrete-time semantics* to the dense simulator in
//! [`crate::Network::forward`] — same LIF update, same reset, same
//! refractory behaviour, same layer ordering.
//!
//! It serves two purposes:
//!
//! 1. **Cross-check oracle.** Two independently written simulators that
//!    must agree spike-for-spike catch each other's bugs — the
//!    behavioural-model vs reference-model equivalence checking a
//!    hardware test flow relies on (and the property tests in this crate
//!    enforce it on random networks and inputs).
//! 2. **Sparse performance model.** Its cost scales with *spike traffic*
//!    rather than network size, which is exactly how the paper's stage-2
//!    loss (minimizing hidden activity) translates into test energy/time
//!    on a real event-driven accelerator. The criterion benches compare
//!    both engines as activity varies.
//!
//! Only inference (spike recording) is supported — BPTT stays with the
//! dense engine where full traces are recorded anyway.

use crate::{Layer, Network, NeuronBehaviorFault, NeuronFaultMap};
use snn_tensor::{Shape, Tensor};

/// Per-layer event-driven LIF state.
struct LayerState {
    /// Carried membrane potential per neuron.
    carried: Vec<f32>,
    /// Remaining refractory ticks per neuron.
    refrac: Vec<u32>,
    /// Synaptic accumulator for the current tick.
    drive: Vec<f32>,
    /// Neurons whose drive is non-zero this tick (sparse set).
    touched: Vec<usize>,
    /// Dirty flags parallel to `drive` (dedup for `touched`).
    dirty: Vec<bool>,
    /// Neurons with non-zero carried potential (they leak even without
    /// input and must be visited).
    charged: Vec<usize>,
    /// 0 = normal, 1 = dead, 2 = saturated.
    forced: Vec<u8>,
    threshold: Vec<f32>,
    leak: Vec<f32>,
    refrac_steps: Vec<u32>,
}

impl LayerState {
    fn new(
        n: usize,
        lif: &crate::LifParams,
        faults: Option<&std::collections::HashMap<usize, NeuronBehaviorFault>>,
    ) -> Self {
        let mut s = Self {
            carried: vec![0.0; n],
            refrac: vec![0; n],
            drive: vec![0.0; n],
            touched: Vec::new(),
            dirty: vec![false; n],
            charged: Vec::new(),
            forced: vec![0; n],
            threshold: vec![lif.threshold; n],
            leak: vec![lif.leak; n],
            refrac_steps: vec![lif.refrac_steps; n],
        };
        if let Some(map) = faults {
            for (&i, fault) in map {
                if i >= n {
                    continue;
                }
                match *fault {
                    NeuronBehaviorFault::Dead => s.forced[i] = 1,
                    NeuronBehaviorFault::Saturated => s.forced[i] = 2,
                    NeuronBehaviorFault::ParamScale {
                        threshold_scale,
                        leak_scale,
                        refrac_delta,
                    } => {
                        s.threshold[i] = (lif.threshold * threshold_scale).max(f32::EPSILON);
                        s.leak[i] = (lif.leak * leak_scale).clamp(f32::EPSILON, 1.0);
                        s.refrac_steps[i] =
                            // snn-lint: allow(L-CAST): clamped non-negative and refractory periods are tiny, truncation unreachable
                            (i64::from(lif.refrac_steps) + i64::from(refrac_delta)).max(0) as u32;
                    }
                }
            }
        }
        s
    }

    fn add_drive(&mut self, neuron: usize, amount: f32) {
        self.drive[neuron] += amount;
        if !self.dirty[neuron] {
            self.dirty[neuron] = true;
            self.touched.push(neuron);
        }
    }

    /// Advances this layer one tick, emitting spiking neuron indices into
    /// `spikes_out`.
    fn tick(&mut self, n: usize, spikes_out: &mut Vec<usize>) {
        spikes_out.clear();
        // Union of driven and charged neurons must be visited; everyone
        // else provably keeps v = 0 and cannot fire. Forced neurons are
        // handled separately below.
        let mut visit: Vec<usize> = Vec::with_capacity(self.touched.len() + self.charged.len());
        visit.extend_from_slice(&self.touched);
        for &i in &self.charged {
            if !self.dirty[i] {
                visit.push(i);
            }
        }
        let mut next_charged = Vec::new();
        for &i in &visit {
            let z = self.drive[i];
            if self.forced[i] != 0 {
                continue; // resolved in the forced pass
            }
            if self.refrac[i] > 0 {
                continue; // refractory: ignores input, carried stays 0
            }
            let v = self.leak[i] * self.carried[i] + z;
            if v >= self.threshold[i] {
                spikes_out.push(i);
                self.carried[i] = 0.0;
                // +1 biases against the uniform end-of-tick countdown
                // below, so the neuron skips exactly `refrac_steps` ticks —
                // matching the dense engine, which decrements only on the
                // refractory ticks themselves.
                self.refrac[i] = self.refrac_steps[i] + 1;
            } else {
                self.carried[i] = v;
                // snn-lint: allow(L-FLOATEQ): exact-zero sparsity test — only charged neurons are tracked
                if v != 0.0 {
                    next_charged.push(i);
                }
            }
        }
        // Uniform refractory countdown: all neurons age one tick,
        // including ones that received no events.
        for r in self.refrac.iter_mut() {
            if *r > 0 {
                *r -= 1;
            }
        }
        // Forced neurons: saturated fire every tick, dead never.
        for i in 0..n {
            match self.forced[i] {
                2 => spikes_out.push(i),
                1 => {}
                _ => {}
            }
        }
        if self.forced.contains(&2) {
            spikes_out.sort_unstable();
            spikes_out.dedup();
        }
        // Reset tick-local state.
        for &i in &self.touched {
            self.drive[i] = 0.0;
            self.dirty[i] = false;
        }
        self.touched.clear();
        self.charged = next_charged;
    }
}

/// Event statistics of an event-driven run — the accelerator cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventStats {
    /// Total spikes routed (network input + all layers).
    pub routed_spikes: usize,
    /// Total synaptic membrane updates performed.
    pub synaptic_ops: usize,
}

/// Event-driven forward pass producing the same spike trains as
/// [`Network::forward`] plus traffic statistics.
///
/// # Panics
///
/// Panics if `input` is not `[T × input_features]`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_model::{event_forward, LifParams, NetworkBuilder, NeuronFaultMap, RecordOptions};
/// use snn_tensor::Shape;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let net = NetworkBuilder::new(6, LifParams::default()).dense(9).dense(3).build(&mut rng);
/// let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(20, 6), 0.4);
///
/// let dense = net.forward(&input, RecordOptions::spikes_only());
/// let (event, stats) = event_forward(&net, &input, &NeuronFaultMap::new());
/// assert_eq!(event.last().unwrap(), dense.output()); // spike-for-spike equal
/// assert!(stats.synaptic_ops > 0);
/// ```
pub fn event_forward(
    net: &Network,
    input: &Tensor,
    faults: &NeuronFaultMap,
) -> (Vec<Tensor>, EventStats) {
    let dims = input.shape().dims();
    assert_eq!(dims.len(), 2, "input must be [T × features]");
    let (steps, in_features) = (dims[0], dims[1]);
    assert_eq!(in_features, net.input_features(), "input feature mismatch");

    let layers = net.layers();
    let mut stats = EventStats::default();

    // Pool layers carry real-valued (non-event) activations; to keep
    // exact equivalence with the dense engine we fall back to dense maths
    // for them while staying sparse for spiking layers.
    let mut states: Vec<Option<LayerState>> = layers
        .iter()
        .enumerate()
        .map(|(idx, l)| {
            l.lif().map(|lif| LayerState::new(l.out_features(), lif, faults.layer_faults(idx)))
        })
        .collect();

    let mut outputs: Vec<Tensor> =
        layers.iter().map(|l| Tensor::zeros(Shape::d2(steps, l.out_features()))).collect();

    // Per-layer dense value buffer for the *current tick* (input to next
    // layer). Spiking layers fill it from their spike list.
    let mut spike_buf: Vec<usize> = Vec::new();
    let mut values: Vec<Vec<f32>> = layers.iter().map(|l| vec![0.0; l.out_features()]).collect();
    let mut prev_spikes: Vec<Vec<usize>> = layers.iter().map(|_| Vec::new()).collect();

    let in_data = input.as_slice();
    for t in 0..steps {
        // Network-input events.
        let mut carry_events: Vec<(usize, f32)> = Vec::new();
        for f in 0..in_features {
            let v = in_data[t * in_features + f];
            // snn-lint: allow(L-FLOATEQ): exact-zero sparsity test — spike trains store exact values
            if v != 0.0 {
                carry_events.push((f, v));
                stats.routed_spikes += 1;
            }
        }

        for (idx, layer) in layers.iter().enumerate() {
            match layer {
                Layer::Dense(l) => {
                    // snn-lint: allow(L-PANIC): states[idx] is Some for every spiking layer by the setup loop above
                    let state = states[idx].as_mut().expect("dense layer has LIF state");
                    let cols = l.weight.shape().dim(1);
                    let wd = l.weight.as_slice();
                    let rows = layer.out_features();
                    for &(j, v) in &carry_events {
                        // Column j of W drives every post neuron.
                        for r in 0..rows {
                            state.add_drive(r, wd[r * cols + j] * v);
                        }
                        stats.synaptic_ops += rows;
                    }
                    state.tick(rows, &mut spike_buf);
                    record(&mut outputs[idx], t, &spike_buf);
                    carry_events = spike_buf.iter().map(|&i| (i, 1.0)).collect();
                    stats.routed_spikes += carry_events.len();
                }
                Layer::Conv(l) => {
                    // snn-lint: allow(L-PANIC): states[idx] is Some for every spiking layer by the setup loop above
                    let state = states[idx].as_mut().expect("conv layer has LIF state");
                    let (h, w) = l.in_hw;
                    let (oh, ow) = l.out_hw();
                    let k = l.spec.kernel;
                    let wd = l.weight.as_slice();
                    for &(flat, v) in &carry_events {
                        // Scatter the event to all output positions whose
                        // receptive field contains it.
                        let ic = flat / (h * w);
                        let rem = flat % (h * w);
                        let iy = rem / w;
                        let ix = rem % w;
                        for oc in 0..l.spec.out_channels {
                            let w_base = (oc * l.spec.in_channels + ic) * k * k;
                            for ky in 0..k {
                                // oy·stride + ky − pad = iy
                                let oy_num = iy as isize + l.spec.padding as isize - ky as isize;
                                if oy_num < 0 || oy_num % l.spec.stride as isize != 0 {
                                    continue;
                                }
                                let oy = (oy_num / l.spec.stride as isize) as usize;
                                if oy >= oh {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ox_num =
                                        ix as isize + l.spec.padding as isize - kx as isize;
                                    if ox_num < 0 || ox_num % l.spec.stride as isize != 0 {
                                        continue;
                                    }
                                    let ox = (ox_num / l.spec.stride as isize) as usize;
                                    if ox >= ow {
                                        continue;
                                    }
                                    let post = (oc * oh + oy) * ow + ox;
                                    state.add_drive(post, wd[w_base + ky * k + kx] * v);
                                    stats.synaptic_ops += 1;
                                }
                            }
                        }
                    }
                    state.tick(layer.out_features(), &mut spike_buf);
                    record(&mut outputs[idx], t, &spike_buf);
                    carry_events = spike_buf.iter().map(|&i| (i, 1.0)).collect();
                    stats.routed_spikes += carry_events.len();
                }
                Layer::Pool(l) => {
                    // Dense fallback: pooling is a fixed linear reduction.
                    let (h, w) = l.in_hw;
                    let n_in = layer.in_features();
                    let n_out = layer.out_features();
                    let vin = &mut values[idx];
                    vin.resize(n_in, 0.0);
                    vin.iter_mut().for_each(|v| *v = 0.0);
                    for &(i, v) in &carry_events {
                        vin[i] = v;
                    }
                    let mut vout = vec![0.0f32; n_out];
                    snn_tensor::ops::avg_pool2d(vin, l.channels, h, w, l.k, &mut vout);
                    {
                        let od = outputs[idx].as_mut_slice();
                        od[t * n_out..(t + 1) * n_out].copy_from_slice(&vout);
                    }
                    carry_events = vout
                        .iter()
                        .enumerate()
                        // snn-lint: allow(L-FLOATEQ): exact-zero sparsity test on pooled spike values
                        .filter(|(_, &v)| v != 0.0)
                        .map(|(i, &v)| (i, v))
                        .collect();
                    stats.routed_spikes += carry_events.len();
                    stats.synaptic_ops += n_in;
                }
                Layer::Recurrent(l) => {
                    // snn-lint: allow(L-PANIC): states[idx] is Some for every spiking layer by the setup loop above
                    let state = states[idx].as_mut().expect("recurrent layer has LIF state");
                    let units = l.w_in.shape().dim(0);
                    let cols = l.w_in.shape().dim(1);
                    let wd = l.w_in.as_slice();
                    for &(j, v) in &carry_events {
                        for r in 0..units {
                            state.add_drive(r, wd[r * cols + j] * v);
                        }
                        stats.synaptic_ops += units;
                    }
                    // Recurrent events from the previous tick.
                    let wr = l.w_rec.as_slice();
                    for &j in &prev_spikes[idx] {
                        for r in 0..units {
                            state.add_drive(r, wr[r * units + j]);
                        }
                        stats.synaptic_ops += units;
                    }
                    state.tick(units, &mut spike_buf);
                    record(&mut outputs[idx], t, &spike_buf);
                    prev_spikes[idx] = spike_buf.clone();
                    carry_events = spike_buf.iter().map(|&i| (i, 1.0)).collect();
                    stats.routed_spikes += carry_events.len();
                }
            }
        }
    }

    (outputs, stats)
}

fn record(output: &mut Tensor, t: usize, spikes: &[usize]) {
    let n = output.shape().dim(1);
    let data = output.as_mut_slice();
    for &i in spikes {
        data[t * n + i] = 1.0;
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use crate::{LifParams, NetworkBuilder, RecordOptions};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_equivalent(net: &Network, input: &Tensor, faults: &NeuronFaultMap) {
        let dense = net.forward_faulty(input, RecordOptions::spikes_only(), faults);
        let (event, _) = event_forward(net, input, faults);
        for (idx, (d, e)) in dense.layers.iter().zip(event.iter()).enumerate() {
            assert_eq!(&d.output, e, "layer {idx} diverged");
        }
    }

    #[test]
    fn dense_network_equivalence() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = NetworkBuilder::new(8, LifParams::default()).dense(14).dense(5).build(&mut rng);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(40, 8), 0.3);
        assert_equivalent(&net, &input, &NeuronFaultMap::new());
    }

    #[test]
    fn conv_pool_network_equivalence() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = NetworkBuilder::new_spatial(2, 8, 8, LifParams::default())
            .avg_pool(2)
            .conv(4, 3, 1, 1)
            .dense(6)
            .build(&mut rng);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(25, 128), 0.2);
        assert_equivalent(&net, &input, &NeuronFaultMap::new());
    }

    #[test]
    fn strided_conv_equivalence() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = NetworkBuilder::new_spatial(1, 9, 9, LifParams::default())
            .conv(3, 3, 2, 1)
            .dense(4)
            .build(&mut rng);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(20, 81), 0.25);
        assert_equivalent(&net, &input, &NeuronFaultMap::new());
    }

    #[test]
    fn recurrent_network_equivalence() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = NetworkBuilder::new(10, LifParams { refrac_steps: 2, ..LifParams::default() })
            .recurrent(12)
            .dense(4)
            .build(&mut rng);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(30, 10), 0.35);
        assert_equivalent(&net, &input, &NeuronFaultMap::new());
    }

    #[test]
    fn equivalence_under_neuron_faults() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = NetworkBuilder::new(6, LifParams::default()).dense(10).dense(3).build(&mut rng);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(25, 6), 0.4);
        for fault in [
            NeuronBehaviorFault::Dead,
            NeuronBehaviorFault::Saturated,
            NeuronBehaviorFault::ParamScale {
                threshold_scale: 1.5,
                leak_scale: 0.7,
                refrac_delta: 2,
            },
        ] {
            let map = NeuronFaultMap::single(0, 3, fault);
            assert_equivalent(&net, &input, &map);
        }
    }

    #[test]
    fn stats_scale_with_activity() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = NetworkBuilder::new(8, LifParams::default()).dense(12).build(&mut rng);
        let quiet = snn_tensor::init::bernoulli(&mut rng, Shape::d2(30, 8), 0.05);
        let busy = snn_tensor::init::bernoulli(&mut rng, Shape::d2(30, 8), 0.6);
        let (_, s_quiet) = event_forward(&net, &quiet, &NeuronFaultMap::new());
        let (_, s_busy) = event_forward(&net, &busy, &NeuronFaultMap::new());
        assert!(s_busy.routed_spikes > s_quiet.routed_spikes);
        assert!(s_busy.synaptic_ops > s_quiet.synaptic_ops);
    }

    #[test]
    fn zero_input_costs_almost_nothing() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = NetworkBuilder::new(8, LifParams::default()).dense(12).build(&mut rng);
        let zero = Tensor::zeros(Shape::d2(50, 8));
        let (out, stats) = event_forward(&net, &zero, &NeuronFaultMap::new());
        assert_eq!(out.last().unwrap().sum(), 0.0);
        assert_eq!(stats.routed_spikes, 0);
        assert_eq!(stats.synaptic_ops, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The two engines agree spike-for-spike on random dense networks,
        /// inputs, and LIF parameters.
        #[test]
        fn engines_agree_on_random_dense_nets(
            seed in 0u64..500,
            density in 0.05f32..0.7,
            refrac in 0u32..3,
            leak_pct in 50u32..100,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let lif = LifParams {
                threshold: 1.0,
                leak: leak_pct as f32 / 100.0,
                refrac_steps: refrac,
            };
            let net = NetworkBuilder::new(5, lif).dense(9).dense(3).build(&mut rng);
            let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(20, 5), density);
            let dense = net.forward(&input, RecordOptions::spikes_only());
            let (event, _) = event_forward(&net, &input, &NeuronFaultMap::new());
            for (d, e) in dense.layers.iter().zip(event.iter()) {
                prop_assert_eq!(&d.output, e);
            }
        }
    }
}
