use crate::Layer;
use serde::{Deserialize, Serialize};
use snn_tensor::Shape;

/// Address of a single synaptic weight inside a [`Network`].
///
/// `tensor` selects among a layer's weight tensors (0 for dense/conv
/// weights and recurrent `W_in`, 1 for recurrent `W_rec`); `offset` is the
/// row-major element index within that tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WeightRef {
    /// Layer index within the network.
    pub layer: usize,
    /// Weight-tensor index within the layer.
    pub tensor: usize,
    /// Row-major element offset within the tensor.
    pub offset: usize,
}

/// A layer-sequential spiking neural network.
///
/// The network is an ordered list of [`Layer`]s whose in/out feature counts
/// chain. Neuron and synapse accounting follows the paper's Table I
/// convention: only spiking layers contribute neurons, and synapses are the
/// *unique trainable weights* (so convolutions count kernel parameters, not
/// connections).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_model::{LifParams, NetworkBuilder};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = NetworkBuilder::new(10, LifParams::default())
///     .dense(20)
///     .dense(5)
///     .build(&mut rng);
/// assert_eq!(net.neuron_count(), 25);
/// assert_eq!(net.synapse_count(), 10 * 20 + 20 * 5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    pub(crate) layers: Vec<Layer>,
    pub(crate) input_features: usize,
    pub(crate) input_shape: Shape,
}

impl Network {
    /// Assembles a network from explicit layers.
    ///
    /// `input_shape` describes one timestep of input (e.g. `[2×34×34]` for
    /// an NMNIST-like DVS stream, or `[700]` for SHD-like audio).
    ///
    /// # Panics
    ///
    /// Panics if consecutive layers disagree on feature counts or the first
    /// layer does not accept `input_shape.len()` features.
    pub fn new(input_shape: Shape, layers: Vec<Layer>) -> Self {
        let input_features = input_shape.len();
        assert!(!layers.is_empty(), "network needs at least one layer");
        let mut features = input_features;
        for (i, layer) in layers.iter().enumerate() {
            assert_eq!(
                layer.in_features(),
                features,
                "layer {i} ({}) expects {} input features, previous stage provides {features}",
                layer.kind(),
                layer.in_features()
            );
            features = layer.out_features();
        }
        Self { layers, input_features, input_shape }
    }

    /// The layers in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (used by training and fault injection).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Flattened input feature count per timestep.
    pub fn input_features(&self) -> usize {
        self.input_features
    }

    /// Structured per-timestep input shape.
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// Number of output classes (features of the last layer).
    pub fn output_features(&self) -> usize {
        // snn-lint: allow(L-PANIC): Network::new asserts at least one layer, so last() cannot fail
        self.layers.last().expect("network is non-empty").out_features()
    }

    /// Total LIF neuron count (spiking layers only).
    pub fn neuron_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_spiking()).map(|l| l.out_features()).sum()
    }

    /// Total synapse count: unique trainable weights.
    pub fn synapse_count(&self) -> usize {
        self.layers.iter().map(|l| l.weight_count()).sum()
    }

    /// Indices and sizes of the spiking layers, in order. Global neuron ids
    /// enumerate these blocks consecutively.
    pub fn neuron_layout(&self) -> Vec<(usize, usize)> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_spiking())
            .map(|(i, l)| (i, l.out_features()))
            .collect()
    }

    /// Maps a global neuron id (over all spiking layers) to
    /// `(layer index, neuron index within layer)`.
    ///
    /// # Panics
    ///
    /// Panics if `global` is out of range.
    pub fn locate_neuron(&self, global: usize) -> (usize, usize) {
        let mut remaining = global;
        for (layer, count) in self.neuron_layout() {
            if remaining < count {
                return (layer, remaining);
            }
            remaining -= count;
        }
        // snn-lint: allow(L-PANIC): documented `# Panics` contract — out-of-range ids are caller bugs
        panic!(
            "global neuron id {global} out of range for network with {} neurons",
            self.neuron_count()
        );
    }

    /// Maps a global synapse id to a [`WeightRef`].
    ///
    /// # Panics
    ///
    /// Panics if `global` is out of range.
    pub fn locate_weight(&self, global: usize) -> WeightRef {
        let mut remaining = global;
        for (layer_idx, layer) in self.layers.iter().enumerate() {
            for (tensor_idx, t) in layer.weight_tensors().into_iter().enumerate() {
                if remaining < t.len() {
                    return WeightRef { layer: layer_idx, tensor: tensor_idx, offset: remaining };
                }
                remaining -= t.len();
            }
        }
        // snn-lint: allow(L-PANIC): documented `# Panics` contract — out-of-range ids are caller bugs
        panic!(
            "global synapse id {global} out of range for network with {} synapses",
            self.synapse_count()
        );
    }

    /// Reads the weight addressed by `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn weight(&self, r: WeightRef) -> f32 {
        let tensors = self.layers[r.layer].weight_tensors();
        tensors[r.tensor].as_slice()[r.offset]
    }

    /// Overwrites the weight addressed by `r`, returning the old value.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn set_weight(&mut self, r: WeightRef, value: f32) -> f32 {
        let mut tensors = self.layers[r.layer].weight_tensors_mut();
        let slot = &mut tensors[r.tensor].as_mut_slice()[r.offset];
        std::mem::replace(slot, value)
    }

    /// Largest absolute weight in the network (used to choose saturation
    /// fault magnitudes).
    pub fn max_abs_weight(&self) -> f32 {
        self.layers
            .iter()
            .flat_map(|l| l.weight_tensors())
            .flat_map(|t| t.as_slice().iter().copied())
            .fold(0.0f32, |acc, v| acc.max(v.abs()))
    }

    /// Human-readable architecture summary, one line per layer.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "input {} → {} layers, {} neurons, {} synapses\n",
            self.input_shape,
            self.layers.len(),
            self.neuron_count(),
            self.synapse_count()
        );
        for (i, l) in self.layers.iter().enumerate() {
            out.push_str(&format!(
                "  [{i}] {:<9} {} → {} ({} weights)\n",
                l.kind(),
                l.in_features(),
                l.out_features(),
                l.weight_count()
            ));
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use crate::{DenseLayer, LifParams, PoolLayer, RecurrentLayer};
    use snn_tensor::Tensor;

    fn toy_network() -> Network {
        // input 8 → pool(2, on 2×2×2) is awkward; use dense chain instead
        let lif = LifParams::default();
        Network::new(
            Shape::d1(8),
            vec![
                Layer::Dense(DenseLayer::new(Tensor::zeros(Shape::d2(6, 8)), lif)),
                Layer::Dense(DenseLayer::new(Tensor::zeros(Shape::d2(4, 6)), lif)),
            ],
        )
    }

    #[test]
    fn counts_follow_table1_convention() {
        let net = toy_network();
        assert_eq!(net.neuron_count(), 10);
        assert_eq!(net.synapse_count(), 48 + 24);
        assert_eq!(net.output_features(), 4);
    }

    #[test]
    fn pool_layers_add_no_neurons() {
        let lif = LifParams::default();
        let net = Network::new(
            Shape::d3(1, 4, 4),
            vec![
                Layer::Pool(PoolLayer::new(1, (4, 4), 2)),
                Layer::Dense(DenseLayer::new(Tensor::zeros(Shape::d2(3, 4)), lif)),
            ],
        );
        assert_eq!(net.neuron_count(), 3);
        assert_eq!(net.neuron_layout(), vec![(1, 3)]);
    }

    #[test]
    fn locate_neuron_walks_spiking_layers() {
        let net = toy_network();
        assert_eq!(net.locate_neuron(0), (0, 0));
        assert_eq!(net.locate_neuron(5), (0, 5));
        assert_eq!(net.locate_neuron(6), (1, 0));
        assert_eq!(net.locate_neuron(9), (1, 3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_neuron_rejects_overflow() {
        toy_network().locate_neuron(10);
    }

    #[test]
    fn locate_weight_covers_all_tensors() {
        let lif = LifParams::default();
        let net = Network::new(
            Shape::d1(3),
            vec![Layer::Recurrent(RecurrentLayer::new(
                Tensor::zeros(Shape::d2(2, 3)),
                Tensor::zeros(Shape::d2(2, 2)),
                lif,
            ))],
        );
        assert_eq!(net.synapse_count(), 10);
        let r = net.locate_weight(6); // first element of W_rec
        assert_eq!(r, WeightRef { layer: 0, tensor: 1, offset: 0 });
    }

    #[test]
    fn set_weight_round_trips() {
        let mut net = toy_network();
        let r = net.locate_weight(7);
        let old = net.set_weight(r, 3.5);
        assert_eq!(old, 0.0);
        assert_eq!(net.weight(r), 3.5);
        assert_eq!(net.max_abs_weight(), 3.5);
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn new_rejects_feature_mismatch() {
        let lif = LifParams::default();
        Network::new(
            Shape::d1(8),
            vec![Layer::Dense(DenseLayer::new(Tensor::zeros(Shape::d2(6, 7)), lif))],
        );
    }

    #[test]
    fn summary_mentions_every_layer() {
        let s = toy_network().summary();
        assert!(s.contains("[0] dense"));
        assert!(s.contains("[1] dense"));
        assert!(s.contains("10 neurons"));
    }
}
