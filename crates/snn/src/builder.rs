use crate::{ConvLayer, DenseLayer, Layer, LifParams, Network, PoolLayer, RecurrentLayer};
use rand::Rng;
use snn_tensor::{init, ops::Conv2dSpec, Shape};

/// Incremental constructor for a [`Network`].
///
/// The builder tracks the running feature count and (for conv/pool stages)
/// spatial geometry, so layers only need their own hyper-parameters.
/// Weights are Kaiming-initialized with the supplied RNG at
/// [`NetworkBuilder::build`] time, making whole experiments seedable.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_model::{LifParams, NetworkBuilder};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// // IBM-DVS-like topology at reduced scale:
/// let net = NetworkBuilder::new_spatial(2, 32, 32, LifParams::default())
///     .conv(8, 5, 1, 2)
///     .avg_pool(2)
///     .conv(16, 3, 1, 1)
///     .avg_pool(2)
///     .dense(128)
///     .dense(11)
///     .build(&mut rng);
/// assert_eq!(net.output_features(), 11);
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    input_shape: Shape,
    // Running geometry: Some((c, h, w)) while the tensor is spatial.
    spatial: Option<(usize, usize, usize)>,
    features: usize,
    lif: LifParams,
    gain: f32,
    layers: Vec<PendingLayer>,
}

#[derive(Debug)]
enum PendingLayer {
    Dense { out: usize, lif: LifParams },
    Conv { spec: Conv2dSpec, in_hw: (usize, usize), lif: LifParams },
    Pool { channels: usize, in_hw: (usize, usize), k: usize },
    Recurrent { units: usize, lif: LifParams },
}

impl NetworkBuilder {
    /// Starts a network with a flat (vector) input of `input_features` per
    /// timestep — e.g. 700 for SHD-like audio.
    pub fn new(input_features: usize, lif: LifParams) -> Self {
        Self {
            input_shape: Shape::d1(input_features),
            spatial: None,
            features: input_features,
            lif,
            gain: 2.5,
            layers: Vec::new(),
        }
    }

    /// Starts a network with a spatial `c × h × w` input per timestep —
    /// e.g. `2 × 34 × 34` for an NMNIST-like DVS stream.
    pub fn new_spatial(c: usize, h: usize, w: usize, lif: LifParams) -> Self {
        Self {
            input_shape: Shape::d3(c, h, w),
            spatial: Some((c, h, w)),
            features: c * h * w,
            lif,
            gain: 2.5,
            layers: Vec::new(),
        }
    }

    /// Changes the LIF parameters used by layers added *after* this call.
    pub fn lif(mut self, lif: LifParams) -> Self {
        self.lif = lif;
        self
    }

    /// Changes the Kaiming initialization gain for subsequently added
    /// layers (larger gain = more spiking activity out of the box).
    pub fn init_gain(mut self, gain: f32) -> Self {
        self.gain = gain;
        self
    }

    /// Appends a fully-connected spiking layer with `out` neurons.
    /// Any spatial structure is flattened.
    pub fn dense(mut self, out: usize) -> Self {
        self.layers.push(PendingLayer::Dense { out, lif: self.lif });
        self.features = out;
        self.spatial = None;
        self
    }

    /// Appends a recurrent spiking layer with `units` neurons.
    pub fn recurrent(mut self, units: usize) -> Self {
        self.layers.push(PendingLayer::Recurrent { units, lif: self.lif });
        self.features = units;
        self.spatial = None;
        self
    }

    /// Appends a convolutional spiking layer.
    ///
    /// # Panics
    ///
    /// Panics if the running tensor is not spatial (conv after dense).
    pub fn conv(
        mut self,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        let (c, h, w) = self
            .spatial
            // snn-lint: allow(L-PANIC): documented `# Panics` contract — a mis-sequenced builder is a caller bug
            .expect("conv layer requires a spatial (c,h,w) input; use new_spatial or avoid conv after dense");
        let spec = Conv2dSpec::new(c, out_channels, kernel, stride, padding);
        let (oh, ow) = spec.out_hw(h, w);
        self.layers.push(PendingLayer::Conv { spec, in_hw: (h, w), lif: self.lif });
        self.spatial = Some((out_channels, oh, ow));
        self.features = out_channels * oh * ow;
        self
    }

    /// Appends a non-spiking average-pooling stage with window/stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if the running tensor is not spatial or `k` does not divide
    /// its extents.
    pub fn avg_pool(mut self, k: usize) -> Self {
        // snn-lint: allow(L-PANIC): documented `# Panics` contract — a mis-sequenced builder is a caller bug
        let (c, h, w) = self.spatial.expect("avg_pool requires a spatial (c,h,w) input");
        let layer = PoolLayer::new(c, (h, w), k);
        let (oh, ow) = layer.out_hw();
        self.layers.push(PendingLayer::Pool { channels: c, in_hw: (h, w), k });
        self.spatial = Some((c, oh, ow));
        self.features = c * oh * ow;
        self
    }

    /// Materializes the network, initializing all weights with the given
    /// RNG.
    ///
    /// # Panics
    ///
    /// Panics if no layers were added.
    pub fn build(self, rng: &mut impl Rng) -> Network {
        assert!(!self.layers.is_empty(), "builder has no layers");
        let mut features = self.input_shape.len();
        let mut layers = Vec::with_capacity(self.layers.len());
        for pending in self.layers {
            let layer = match pending {
                PendingLayer::Dense { out, lif } => {
                    let w = init::kaiming(rng, Shape::d2(out, features), features, self.gain);
                    features = out;
                    Layer::Dense(DenseLayer::new(w, lif))
                }
                PendingLayer::Conv { spec, in_hw, lif } => {
                    let fan_in = spec.in_channels * spec.kernel * spec.kernel;
                    let w = init::kaiming(rng, spec.weight_shape(), fan_in, self.gain);
                    let layer = ConvLayer::new(spec, in_hw, w, lif);
                    features = Layer::Conv(layer.clone()).out_features();
                    Layer::Conv(layer)
                }
                PendingLayer::Pool { channels, in_hw, k } => {
                    let layer = PoolLayer::new(channels, in_hw, k);
                    let (oh, ow) = layer.out_hw();
                    features = channels * oh * ow;
                    Layer::Pool(layer)
                }
                PendingLayer::Recurrent { units, lif } => {
                    let w_in = init::kaiming(rng, Shape::d2(units, features), features, self.gain);
                    // Recurrent weights are initialized weaker to keep the
                    // network stable out of the box.
                    let w_rec = init::kaiming(rng, Shape::d2(units, units), units, self.gain * 0.3);
                    features = units;
                    Layer::Recurrent(RecurrentLayer::new(w_in, w_rec, lif))
                }
            };
            layers.push(layer);
        }
        Network::new(self.input_shape, layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builds_dense_chain() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = NetworkBuilder::new(4, LifParams::default()).dense(8).dense(3).build(&mut rng);
        assert_eq!(net.neuron_count(), 11);
        assert_eq!(net.layers().len(), 2);
    }

    #[test]
    fn builds_conv_pool_stack_with_consistent_geometry() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = NetworkBuilder::new_spatial(2, 32, 32, LifParams::default())
            .avg_pool(2)
            .conv(8, 5, 1, 2)
            .avg_pool(2)
            .dense(16)
            .build(&mut rng);
        // pool: no neurons; conv: 8×16×16 = 2048; dense: 16
        assert_eq!(net.neuron_count(), 2048 + 16);
        assert_eq!(net.output_features(), 16);
    }

    #[test]
    fn recurrent_layer_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        let net =
            NetworkBuilder::new(10, LifParams::default()).recurrent(6).dense(3).build(&mut rng);
        assert_eq!(net.synapse_count(), 10 * 6 + 36 + 18);
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let build = || {
            let mut rng = StdRng::seed_from_u64(33);
            NetworkBuilder::new(5, LifParams::default()).dense(4).build(&mut rng)
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "spatial")]
    fn conv_after_dense_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ =
            NetworkBuilder::new(16, LifParams::default()).dense(8).conv(4, 3, 1, 1).build(&mut rng);
    }

    #[test]
    fn per_layer_lif_override_sticks() {
        let mut rng = StdRng::seed_from_u64(4);
        let slow = LifParams { refrac_steps: 9, ..LifParams::default() };
        let net = NetworkBuilder::new(4, LifParams::default())
            .dense(4)
            .lif(slow)
            .dense(2)
            .build(&mut rng);
        assert_eq!(net.layers()[0].lif().unwrap().refrac_steps, 2);
        assert_eq!(net.layers()[1].lif().unwrap().refrac_steps, 9);
    }
}
