use crate::{Layer, Network, Surrogate, Trace};
use snn_tensor::{ops, Shape, Tensor};

/// Per-layer gradients `∂L/∂O^ℓ` injected directly on spike trains.
///
/// The paper's loss functions L1–L5 are defined on the spike trains of
/// *every* layer (not only the network output), so BPTT must accept a
/// gradient contribution at each layer in addition to what flows back from
/// downstream layers. An entry of `None` means the loss does not look at
/// that layer directly.
///
/// # Example
///
/// ```
/// use snn_model::InjectedGrads;
/// use snn_tensor::{Shape, Tensor};
///
/// let mut inj = InjectedGrads::none(3);
/// inj.set(2, Tensor::full(Shape::d2(10, 5), -1.0)); // push output spikes up
/// assert!(inj.layer(2).is_some());
/// assert!(inj.layer(0).is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedGrads {
    per_layer: Vec<Option<Tensor>>,
}

impl InjectedGrads {
    /// No injected gradients on any of the `num_layers` layers.
    pub fn none(num_layers: usize) -> Self {
        Self { per_layer: vec![None; num_layers] }
    }

    /// Injects `grad` (`[T × n_out]`) on layer `layer`, accumulating with
    /// any gradient already registered there.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or shapes disagree with a
    /// previously set gradient.
    pub fn set(&mut self, layer: usize, grad: Tensor) {
        match &mut self.per_layer[layer] {
            slot @ None => *slot = Some(grad),
            Some(existing) => existing.axpy(1.0, &grad),
        }
    }

    /// The injected gradient for `layer`, if any.
    pub fn layer(&self, layer: usize) -> Option<&Tensor> {
        self.per_layer.get(layer).and_then(|g| g.as_ref())
    }

    /// Number of layers this instance covers.
    pub fn len(&self) -> usize {
        self.per_layer.len()
    }

    /// `true` if no layer has an injected gradient.
    pub fn is_empty(&self) -> bool {
        self.per_layer.iter().all(|g| g.is_none())
    }
}

/// Typed failure of a backward pass: the forward trace was not recorded
/// with enough state for credit assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackwardError {
    /// The trace lacks membrane potentials for `layer`; record the forward
    /// pass with [`RecordOptions::full`](crate::RecordOptions::full).
    MissingPotentials {
        /// Index of the offending layer.
        layer: usize,
    },
    /// The trace lacks integration gates for `layer`; record the forward
    /// pass with [`RecordOptions::full`](crate::RecordOptions::full).
    MissingGates {
        /// Index of the offending layer.
        layer: usize,
    },
}

impl std::fmt::Display for BackwardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingPotentials { layer } => write!(
                f,
                "layer {layer}: trace lacks membrane potentials; record with RecordOptions::full()"
            ),
            Self::MissingGates { layer } => {
                write!(f, "layer {layer}: trace lacks gates; record with RecordOptions::full()")
            }
        }
    }
}

impl std::error::Error for BackwardError {}

/// Result of a BPTT backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    /// `∂L/∂I`: gradient w.r.t. the network input, `[T × input_features]`.
    pub input: Tensor,
    /// Per-layer weight gradients (aligned with
    /// [`Layer::weight_tensors`]); empty vectors when weight gradients were
    /// not requested or the layer has no weights.
    pub weights: Vec<Vec<Tensor>>,
}

/// Reverse-time credit assignment through one LIF layer.
///
/// Inputs: accumulated spike-train gradient `out_grad[t, i] = ∂L/∂s[t, i]`,
/// the recorded pre-spike potentials and integration gates, LIF constants.
/// Output: `delta_z[t, i] = ∂L/∂z[t, i]` (gradient on the synaptic drive),
/// from which input and weight gradients follow by linearity.
///
/// For recurrent layers, `w_rec` routes `W_recᵀ·δz[t]` into the spike
/// gradient of tick `t−1`; because the sweep runs in reverse time, the
/// extra contribution at `t−1` is always fully accumulated before that tick
/// is processed, so a single sweep is exact.
///
/// The reset path uses the standard "detached reset": the spike's effect on
/// the carried potential is treated as a constant, which is what SLAYER and
/// most surrogate-gradient frameworks do for stability.
#[allow(clippy::too_many_arguments)]
fn lif_temporal_backward(
    steps: usize,
    n: usize,
    out_grad: &Tensor,
    spikes: &Tensor,
    potential: &Tensor,
    gate: &Tensor,
    threshold: f32,
    leak: f32,
    surrogate: Surrogate,
    w_rec: Option<&Tensor>,
) -> Tensor {
    let mut delta_z = Tensor::zeros(Shape::d2(steps, n));
    let mut delta_c = vec![0.0f32; n];
    // Recurrent spike-gradient contributions flowing from tick t+1 to t.
    let mut extra = vec![0.0f32; steps * n];
    let og = out_grad.as_slice();
    snn_tensor::sanitize::debug_assert_finite("lif_temporal_backward", "out_grad", og);
    let sp = spikes.as_slice();
    let pot = potential.as_slice();
    let gt = gate.as_slice();
    let mut dz_row = vec![0.0f32; n];
    for t in (0..steps).rev() {
        let row = t * n;
        for i in 0..n {
            // snn-lint: allow(L-FLOATEQ): integration gates are exact 0.0/1.0 values by construction
            if gt[row + i] == 0.0 {
                // Refractory (or forced) tick: spike is constant and the
                // carried potential is held at zero, so both gradient
                // paths are cut.
                delta_c[i] = 0.0;
                dz_row[i] = 0.0;
                continue;
            }
            let g_spike = og[row + i] + extra[row + i];
            let v = pot[row + i];
            let s = sp[row + i];
            let dv = g_spike * surrogate.grad(v - threshold) + delta_c[i] * (1.0 - s);
            dz_row[i] = dv;
            delta_c[i] = dv * leak;
        }
        delta_z.as_mut_slice()[row..row + n].copy_from_slice(&dz_row);
        if let Some(w) = w_rec {
            if t > 0 {
                ops::matvec_t_acc(w, &dz_row, &mut extra[(t - 1) * n..t * n]);
            }
        }
    }
    // A steep surrogate slope or exploding recurrent weights surface here
    // first — before the poisoned gradient reaches the optimiser.
    snn_tensor::sanitize::debug_assert_finite(
        "lif_temporal_backward",
        "delta_z",
        delta_z.as_slice(),
    );
    delta_z
}

impl Network {
    /// Backpropagation-through-time with surrogate spike derivatives.
    ///
    /// `trace` must have been recorded with [`RecordOptions::full`]
    /// (potentials and gates present) on a *fault-free* forward pass of
    /// `input`. `injected` supplies the per-layer spike-train gradients of
    /// the loss; downstream-layer contributions are chained automatically.
    ///
    /// Returns `∂L/∂I` and, if `want_weights`, `∂L/∂W` for every layer.
    ///
    /// # Panics
    ///
    /// Panics if the trace lacks potentials/gates, if shapes are
    /// inconsistent, or if `injected.len()` differs from the layer count.
    /// Use [`try_backward`](Self::try_backward) to handle missing trace
    /// state as a typed error instead.
    ///
    /// [`RecordOptions::full`]: crate::RecordOptions::full
    pub fn backward(
        &self,
        input: &Tensor,
        trace: &Trace,
        injected: &InjectedGrads,
        surrogate: Surrogate,
        want_weights: bool,
    ) -> Gradients {
        self.try_backward(input, trace, injected, surrogate, want_weights)
            // snn-lint: allow(L-PANIC): documented panicking wrapper — try_backward is the fallible API
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`backward`](Self::backward): returns a [`BackwardError`]
    /// when `trace` was recorded without the potentials/gates BPTT needs,
    /// instead of panicking.
    ///
    /// # Panics
    ///
    /// Still panics on shape inconsistencies and on an `injected` length
    /// differing from the layer count — those are programming errors, not
    /// recoverable conditions.
    pub fn try_backward(
        &self,
        input: &Tensor,
        trace: &Trace,
        injected: &InjectedGrads,
        surrogate: Surrogate,
        want_weights: bool,
    ) -> Result<Gradients, BackwardError> {
        let _span = snn_obs::span!("snn.backward");
        let num_layers = self.layers.len();
        assert_eq!(
            injected.len(),
            num_layers,
            "injected gradients cover {} layers, network has {num_layers}",
            injected.len()
        );
        assert_eq!(trace.layers.len(), num_layers, "trace/network layer count mismatch");
        let steps = trace.steps;

        let mut weight_grads: Vec<Vec<Tensor>> = self
            .layers
            .iter()
            .map(|l| {
                if want_weights {
                    l.weight_tensors()
                        .into_iter()
                        .map(|t| Tensor::zeros(t.shape().clone()))
                        .collect()
                } else {
                    Vec::new()
                }
            })
            .collect();

        // Gradient flowing into the *output spikes* of the layer currently
        // being processed. Starts at the top with the injected output grad.
        let mut downstream: Option<Tensor> = None;

        for idx in (0..num_layers).rev() {
            let layer = &self.layers[idx];
            let lt = &trace.layers[idx];
            let n = layer.out_features();
            let in_features = layer.in_features();

            // Accumulate ∂L/∂s^idx from downstream chain + direct injection.
            let mut out_grad =
                downstream.take().unwrap_or_else(|| Tensor::zeros(Shape::d2(steps, n)));
            assert_eq!(
                out_grad.shape().dims(),
                &[steps, n],
                "downstream gradient shape mismatch at layer {idx}"
            );
            if let Some(inj) = injected.layer(idx) {
                assert_eq!(
                    inj.shape().dims(),
                    &[steps, n],
                    "injected gradient shape mismatch at layer {idx}"
                );
                out_grad.axpy(1.0, inj);
            }

            // Input sequence seen by this layer during the forward pass.
            let layer_input: &Tensor = if idx == 0 { input } else { &trace.layers[idx - 1].output };
            let li = layer_input.as_slice();
            let mut in_grad = Tensor::zeros(Shape::d2(steps, in_features));

            match layer {
                Layer::Pool(l) => {
                    // Linear pass-through: avg-pool backward per tick.
                    let (h, w) = l.in_hw;
                    let ogd = out_grad.as_slice().to_vec();
                    let igd = in_grad.as_mut_slice();
                    for t in 0..steps {
                        ops::avg_pool2d_backward(
                            &ogd[t * n..(t + 1) * n],
                            l.channels,
                            h,
                            w,
                            l.k,
                            &mut igd[t * in_features..(t + 1) * in_features],
                        );
                    }
                }
                Layer::Dense(l) => {
                    let (pot, gt) = trace_state(lt, idx)?;
                    let delta_z = lif_temporal_backward(
                        steps,
                        n,
                        &out_grad,
                        &lt.output,
                        pot,
                        gt,
                        l.lif.threshold,
                        l.lif.leak,
                        surrogate,
                        None,
                    );
                    let dz = delta_z.as_slice();
                    let igd = in_grad.as_mut_slice();
                    for t in 0..steps {
                        ops::matvec_t_acc(
                            &l.weight,
                            &dz[t * n..(t + 1) * n],
                            &mut igd[t * in_features..(t + 1) * in_features],
                        );
                        if want_weights {
                            ops::outer_acc(
                                &mut weight_grads[idx][0],
                                &dz[t * n..(t + 1) * n],
                                &li[t * in_features..(t + 1) * in_features],
                            );
                        }
                    }
                }
                Layer::Conv(l) => {
                    let (pot, gt) = trace_state(lt, idx)?;
                    let delta_z = lif_temporal_backward(
                        steps,
                        n,
                        &out_grad,
                        &lt.output,
                        pot,
                        gt,
                        l.lif.threshold,
                        l.lif.leak,
                        surrogate,
                        None,
                    );
                    let dz = delta_z.as_slice();
                    let (h, w) = l.in_hw;
                    let igd = in_grad.as_mut_slice();
                    for t in 0..steps {
                        ops::conv2d_backward_input(
                            &l.spec,
                            &dz[t * n..(t + 1) * n],
                            h,
                            w,
                            &l.weight,
                            &mut igd[t * in_features..(t + 1) * in_features],
                        );
                        if want_weights {
                            ops::conv2d_backward_weight(
                                &l.spec,
                                &dz[t * n..(t + 1) * n],
                                &li[t * in_features..(t + 1) * in_features],
                                h,
                                w,
                                &mut weight_grads[idx][0],
                            );
                        }
                    }
                }
                Layer::Recurrent(l) => {
                    let (pot, gt) = trace_state(lt, idx)?;
                    let delta_z = lif_temporal_backward(
                        steps,
                        n,
                        &out_grad,
                        &lt.output,
                        pot,
                        gt,
                        l.lif.threshold,
                        l.lif.leak,
                        surrogate,
                        Some(&l.w_rec),
                    );
                    let dz = delta_z.as_slice();
                    let sp = lt.output.as_slice();
                    let igd = in_grad.as_mut_slice();
                    for t in 0..steps {
                        ops::matvec_t_acc(
                            &l.w_in,
                            &dz[t * n..(t + 1) * n],
                            &mut igd[t * in_features..(t + 1) * in_features],
                        );
                        if want_weights {
                            ops::outer_acc(
                                &mut weight_grads[idx][0],
                                &dz[t * n..(t + 1) * n],
                                &li[t * in_features..(t + 1) * in_features],
                            );
                            if t > 0 {
                                ops::outer_acc(
                                    &mut weight_grads[idx][1],
                                    &dz[t * n..(t + 1) * n],
                                    &sp[(t - 1) * n..t * n],
                                );
                            }
                        }
                    }
                }
            }
            downstream = Some(in_grad);
        }

        Ok(Gradients {
            // snn-lint: allow(L-PANIC): Network::new asserts at least one layer, so the loop ran
            input: downstream.expect("network has at least one layer"),
            weights: weight_grads,
        })
    }
}

fn trace_state(lt: &crate::LayerTrace, idx: usize) -> Result<(&Tensor, &Tensor), BackwardError> {
    let pot = lt.potential.as_ref().ok_or(BackwardError::MissingPotentials { layer: idx })?;
    let gt = lt.gate.as_ref().ok_or(BackwardError::MissingGates { layer: idx })?;
    Ok((pot, gt))
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use crate::{DenseLayer, LifParams, NetworkBuilder, PoolLayer, RecordOptions, RecurrentLayer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn single_neuron_net(weight: f32, lif: LifParams) -> Network {
        Network::new(
            Shape::d1(1),
            vec![Layer::Dense(DenseLayer::new(
                Tensor::from_vec(Shape::d2(1, 1), vec![weight]).unwrap(),
                lif,
            ))],
        )
    }

    /// Hand-computed case: w = 0.4, λ = 1, θ = 1, no refractory, 3 ticks of
    /// input spikes. v = 0.4, 0.8, 1.2 — one spike at t = 2.
    /// Inject ∂L/∂s[2] = 1 with a FastSigmoid(5) surrogate:
    /// surrogate(0.2) = 1/(1+1)² = 0.25 = δv₂, and with λ = 1, detach-reset
    /// the same δv propagates to t = 1, 0. Input grad = w·δv = 0.1 per tick;
    /// weight grad = Σ δz·input = 0.75.
    #[test]
    fn hand_computed_gradient_single_neuron() {
        let lif = LifParams { threshold: 1.0, leak: 1.0, refrac_steps: 0 };
        let net = single_neuron_net(0.4, lif);
        let input = Tensor::full(Shape::d2(3, 1), 1.0);
        let trace = net.forward(&input, RecordOptions::full());
        assert_eq!(trace.output().as_slice(), &[0.0, 0.0, 1.0]);

        let mut inj = InjectedGrads::none(1);
        let mut g = Tensor::zeros(Shape::d2(3, 1));
        g[[2, 0]] = 1.0;
        inj.set(0, g);
        let surrogate = Surrogate::FastSigmoid { slope: 5.0 };
        let grads = net.backward(&input, &trace, &inj, surrogate, true);

        for t in 0..3 {
            assert!((grads.input[[t, 0]] - 0.1).abs() < 1e-5, "t={t}: {}", grads.input[[t, 0]]);
        }
        assert!((grads.weights[0][0][0] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn zero_injection_gives_zero_gradients() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = NetworkBuilder::new(4, LifParams::default()).dense(6).dense(2).build(&mut rng);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(8, 4), 0.5);
        let trace = net.forward(&input, RecordOptions::full());
        let grads =
            net.backward(&input, &trace, &InjectedGrads::none(2), Surrogate::default(), true);
        assert_eq!(grads.input.l1_norm(), 0.0);
        assert_eq!(grads.weights[0][0].l1_norm(), 0.0);
    }

    /// Refractory ticks hold the carried potential at zero, so no gradient
    /// may flow backward across them.
    #[test]
    fn refractory_cuts_temporal_gradient_path() {
        let lif = LifParams { threshold: 1.0, leak: 1.0, refrac_steps: 2 };
        let net = single_neuron_net(1.0, lif);
        let input = Tensor::full(Shape::d2(6, 1), 1.0);
        let trace = net.forward(&input, RecordOptions::full());
        // spikes at t = 0 and t = 3
        assert_eq!(trace.output().as_slice(), &[1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);

        let mut inj = InjectedGrads::none(1);
        let mut g = Tensor::zeros(Shape::d2(6, 1));
        g[[3, 0]] = 1.0;
        inj.set(0, g);
        let grads = net.backward(&input, &trace, &inj, Surrogate::default(), false);
        // Gradient reaches the input only at t = 3; ticks 1, 2 are
        // refractory and t = 0's influence is cut by the held reset.
        assert!(grads.input[[3, 0]] > 0.0);
        for t in [0usize, 1, 2, 4, 5] {
            assert_eq!(grads.input[[t, 0]], 0.0, "unexpected grad at t={t}");
        }
    }

    /// Leak < 1 shrinks the gradient geometrically as it flows back in time.
    #[test]
    fn leak_discounts_past_inputs() {
        let lif = LifParams { threshold: 10.0, leak: 0.5, refrac_steps: 0 };
        let net = single_neuron_net(0.1, lif);
        let input = Tensor::full(Shape::d2(4, 1), 1.0);
        let trace = net.forward(&input, RecordOptions::full());
        assert_eq!(trace.output().sum(), 0.0); // never fires

        let mut inj = InjectedGrads::none(1);
        let mut g = Tensor::zeros(Shape::d2(4, 1));
        g[[3, 0]] = 1.0;
        inj.set(0, g);
        let grads = net.backward(&input, &trace, &inj, Surrogate::default(), false);
        let gi: Vec<f32> = (0..4).map(|t| grads.input[[t, 0]]).collect();
        // each step back is ×0.5
        assert!(gi[3] > 0.0);
        assert!((gi[2] / gi[3] - 0.5).abs() < 1e-5);
        assert!((gi[1] / gi[2] - 0.5).abs() < 1e-5);
        assert!((gi[0] / gi[1] - 0.5).abs() < 1e-5);
    }

    /// Injecting gradient on a *hidden* layer reaches the input — the
    /// mechanism the paper's L2–L5 losses rely on.
    #[test]
    fn hidden_layer_injection_reaches_input() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = NetworkBuilder::new(4, LifParams { refrac_steps: 0, ..LifParams::default() })
            .dense(6)
            .dense(2)
            .build(&mut rng);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(10, 4), 0.6);
        let trace = net.forward(&input, RecordOptions::full());
        let mut inj = InjectedGrads::none(2);
        inj.set(0, Tensor::full(Shape::d2(10, 6), -1.0));
        let grads = net.backward(&input, &trace, &inj, Surrogate::default(), false);
        assert!(grads.input.l1_norm() > 0.0);
    }

    #[test]
    fn pool_layer_backward_is_linear_passthrough() {
        let net = Network::new(
            Shape::d3(1, 2, 2),
            vec![
                Layer::Pool(PoolLayer::new(1, (2, 2), 2)),
                Layer::Dense(DenseLayer::new(
                    Tensor::from_vec(Shape::d2(1, 1), vec![1.0]).unwrap(),
                    LifParams { threshold: 0.4, leak: 1.0, refrac_steps: 0 },
                )),
            ],
        );
        let input = Tensor::full(Shape::d2(2, 4), 1.0);
        let trace = net.forward(&input, RecordOptions::full());
        let mut inj = InjectedGrads::none(2);
        inj.set(1, Tensor::full(Shape::d2(2, 1), 1.0));
        let grads = net.backward(&input, &trace, &inj, Surrogate::default(), false);
        // avg-pool spreads gradient uniformly: all 4 pixels at a firing tick
        // get the same share.
        let row0: Vec<f32> = (0..4).map(|i| grads.input[[0, i]]).collect();
        assert!(row0.iter().all(|&v| (v - row0[0]).abs() < 1e-6));
        assert!(row0[0] != 0.0);
    }

    /// Recurrent credit: injecting on the unit's spike at t=1 must produce
    /// input gradient at t=0 through the recurrent weight.
    #[test]
    fn recurrent_backward_assigns_credit_through_time() {
        let lif = LifParams { threshold: 1.0, leak: 1.0, refrac_steps: 0 };
        let l = RecurrentLayer::new(
            Tensor::from_vec(Shape::d2(1, 1), vec![0.6]).unwrap(),
            Tensor::from_vec(Shape::d2(1, 1), vec![0.9]).unwrap(),
            lif,
        );
        let net = Network::new(Shape::d1(1), vec![Layer::Recurrent(l)]);
        let input = Tensor::full(Shape::d2(3, 1), 1.0);
        let trace = net.forward(&input, RecordOptions::full());

        let mut inj = InjectedGrads::none(1);
        let mut g = Tensor::zeros(Shape::d2(3, 1));
        g[[1, 0]] = 1.0;
        inj.set(0, g);
        let grads = net.backward(&input, &trace, &inj, Surrogate::default(), true);
        // t=0 input influences s[1] two ways: via carried membrane (λ) and
        // via the recurrent synapse if s[0]=1. Either way grad ≠ 0.
        assert!(grads.input[[0, 0]] != 0.0);
        assert!(grads.input[[1, 0]] != 0.0);
        assert_eq!(grads.input[[2, 0]], 0.0); // future can't influence past
                                              // W_rec gradient exists only if the unit spiked before t=1.
        let spiked_at_0 = trace.output().as_slice()[0] == 1.0;
        if spiked_at_0 {
            assert!(grads.weights[0][1].l1_norm() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "RecordOptions::full")]
    fn backward_requires_full_trace() {
        let lif = LifParams::default();
        let net = single_neuron_net(0.5, lif);
        let input = Tensor::full(Shape::d2(2, 1), 1.0);
        let trace = net.forward(&input, RecordOptions::spikes_only());
        let mut inj = InjectedGrads::none(1);
        inj.set(0, Tensor::full(Shape::d2(2, 1), 1.0));
        let _ = net.backward(&input, &trace, &inj, Surrogate::default(), false);
    }

    #[test]
    fn injected_grads_accumulate_on_set() {
        let mut inj = InjectedGrads::none(1);
        inj.set(0, Tensor::full(Shape::d2(2, 2), 1.0));
        inj.set(0, Tensor::full(Shape::d2(2, 2), 2.0));
        assert_eq!(inj.layer(0).unwrap().as_slice(), &[3.0, 3.0, 3.0, 3.0]);
        assert!(!inj.is_empty());
    }
}
