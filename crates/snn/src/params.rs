use serde::{Deserialize, Serialize};

/// Parameters of the discrete-time Leaky-Integrate-and-Fire neuron.
///
/// Per simulation tick a non-refractory neuron updates its membrane
/// potential as `v ← leak·v + z` where `z` is the weighted sum of incoming
/// spikes. When `v ≥ threshold` the neuron emits a spike, the potential is
/// reset to zero and the neuron ignores input for `refrac_steps` ticks —
/// exactly the behaviour sketched in the paper's Fig. 1.
///
/// # Example
///
/// ```
/// use snn_model::LifParams;
///
/// let p = LifParams::default();
/// assert!(p.leak > 0.0 && p.leak <= 1.0);
/// let fast = LifParams { refrac_steps: 0, ..p };
/// assert_eq!(fast.refrac_steps, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifParams {
    /// Firing threshold `θ` on the membrane potential.
    pub threshold: f32,
    /// Multiplicative leak `λ ∈ (0, 1]` applied to the carried potential
    /// each tick (1.0 = perfect integrator).
    pub leak: f32,
    /// Number of ticks after a spike during which the neuron neither
    /// integrates nor fires.
    pub refrac_steps: u32,
}

impl LifParams {
    /// Validates the parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field, if any.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.threshold.is_finite() && self.threshold > 0.0) {
            return Err(format!("threshold must be finite and positive, got {}", self.threshold));
        }
        if !(self.leak > 0.0 && self.leak <= 1.0) {
            return Err(format!("leak must be in (0, 1], got {}", self.leak));
        }
        Ok(())
    }
}

impl Default for LifParams {
    fn default() -> Self {
        Self { threshold: 1.0, leak: 0.9, refrac_steps: 2 }
    }
}

/// Surrogate derivative used for the non-differentiable spike function
/// during BPTT.
///
/// The forward pass uses the hard Heaviside `s = H(v − θ)`; the backward
/// pass substitutes `ds/dv` with one of these smooth approximations
/// evaluated at `v − θ`.
///
/// # Example
///
/// ```
/// use snn_model::Surrogate;
///
/// let s = Surrogate::default();
/// // The surrogate is maximal at the threshold and decays away from it.
/// assert!(s.grad(0.0) > s.grad(1.0));
/// assert!(s.grad(0.0) > s.grad(-1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Surrogate {
    /// SLAYER-style fast sigmoid: `1 / (1 + k·|x|)²` scaled so the peak is
    /// `1`.
    FastSigmoid {
        /// Sharpness `k` (larger = narrower support around the threshold).
        slope: f32,
    },
    /// Arctangent surrogate: `1 / (1 + (π·α·x)²)`.
    Atan {
        /// Width parameter `α`.
        alpha: f32,
    },
    /// Rectangular window: `1/width` for `|x| < width/2`, else 0.
    Rect {
        /// Window width around the threshold.
        width: f32,
    },
}

impl Surrogate {
    /// Evaluates the surrogate spike derivative at `x = v − θ`.
    pub fn grad(&self, x: f32) -> f32 {
        match *self {
            Surrogate::FastSigmoid { slope } => {
                let d = 1.0 + slope * x.abs();
                1.0 / (d * d)
            }
            Surrogate::Atan { alpha } => {
                let t = std::f32::consts::PI * alpha * x;
                1.0 / (1.0 + t * t)
            }
            Surrogate::Rect { width } => {
                if x.abs() < width * 0.5 {
                    1.0 / width
                } else {
                    0.0
                }
            }
        }
    }
}

impl Default for Surrogate {
    fn default() -> Self {
        Surrogate::FastSigmoid { slope: 5.0 }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_params_are_valid() {
        assert!(LifParams::default().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_threshold_and_leak() {
        let mut p = LifParams { threshold: 0.0, ..LifParams::default() };
        assert!(p.validate().is_err());
        p.threshold = f32::NAN;
        assert!(p.validate().is_err());
        p = LifParams::default();
        p.leak = 0.0;
        assert!(p.validate().is_err());
        p.leak = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn fast_sigmoid_peaks_at_threshold() {
        let s = Surrogate::FastSigmoid { slope: 5.0 };
        assert_eq!(s.grad(0.0), 1.0);
        assert!(s.grad(0.5) < 1.0);
    }

    #[test]
    fn rect_is_a_window() {
        let s = Surrogate::Rect { width: 1.0 };
        assert_eq!(s.grad(0.0), 1.0);
        assert_eq!(s.grad(0.49), 1.0);
        assert_eq!(s.grad(0.51), 0.0);
        assert_eq!(s.grad(-0.51), 0.0);
    }

    proptest! {
        #[test]
        fn surrogates_are_nonnegative_even_and_decay(
            x in 0.01f32..10.0
        ) {
            for s in [
                Surrogate::FastSigmoid { slope: 5.0 },
                Surrogate::Atan { alpha: 2.0 },
                Surrogate::Rect { width: 1.0 },
            ] {
                let g = s.grad(x);
                prop_assert!(g >= 0.0);
                prop_assert!((g - s.grad(-x)).abs() < 1e-6, "not even at {x}");
                prop_assert!(s.grad(x * 2.0) <= g + 1e-6, "not monotone at {x}");
            }
        }
    }
}
