use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Behavioural neuron fault applied *inside* the simulator.
///
/// These are the neuron-level fault models of the paper's Section III:
/// a neuron can be saturated (fires every tick regardless of input), dead
/// (never propagates spikes), or suffer timing variations modelled as
/// perturbations of its LIF parameters.
///
/// # Example
///
/// ```
/// use snn_model::{NeuronBehaviorFault, NeuronFaultMap};
///
/// let mut map = NeuronFaultMap::new();
/// map.insert(0, 3, NeuronBehaviorFault::Dead);
/// assert!(!map.is_empty());
/// assert_eq!(map.get(0, 3), Some(&NeuronBehaviorFault::Dead));
/// assert_eq!(map.get(1, 3), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NeuronBehaviorFault {
    /// The neuron halts all spike propagation: its output is forced to 0.
    Dead,
    /// The neuron produces non-stop output spikes even without input.
    Saturated,
    /// Timing-variation fault: the neuron's parameters are perturbed.
    ParamScale {
        /// Multiplier on the firing threshold.
        threshold_scale: f32,
        /// Multiplier on the leak factor (clamped to `(0, 1]` at use).
        leak_scale: f32,
        /// Signed change of the refractory period in ticks.
        refrac_delta: i32,
    },
}

/// Sparse map from `(spiking-layer index, neuron index)` to a behavioural
/// fault, consumed by the forward simulator.
///
/// Layer indices refer to the network's layer vector (including non-spiking
/// layers); entries on non-spiking layers are ignored by the simulator.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NeuronFaultMap {
    per_layer: HashMap<usize, HashMap<usize, NeuronBehaviorFault>>,
}

impl NeuronFaultMap {
    /// Creates an empty fault map (fault-free simulation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a map containing a single fault — the common case during a
    /// fault-simulation campaign.
    pub fn single(layer: usize, neuron: usize, fault: NeuronBehaviorFault) -> Self {
        let mut map = Self::new();
        map.insert(layer, neuron, fault);
        map
    }

    /// Inserts (or replaces) the fault on `(layer, neuron)`.
    pub fn insert(&mut self, layer: usize, neuron: usize, fault: NeuronBehaviorFault) {
        self.per_layer.entry(layer).or_default().insert(neuron, fault);
    }

    /// The fault on `(layer, neuron)`, if any.
    pub fn get(&self, layer: usize, neuron: usize) -> Option<&NeuronBehaviorFault> {
        self.per_layer.get(&layer).and_then(|m| m.get(&neuron))
    }

    /// All faults on `layer`.
    pub fn layer_faults(&self, layer: usize) -> Option<&HashMap<usize, NeuronBehaviorFault>> {
        self.per_layer.get(&layer)
    }

    /// `true` if no faults are registered.
    pub fn is_empty(&self) -> bool {
        self.per_layer.values().all(|m| m.is_empty())
    }

    /// Smallest layer index carrying a fault (used for prefix-cached fault
    /// simulation), or `None` if empty.
    pub fn first_faulty_layer(&self) -> Option<usize> {
        self.per_layer.iter().filter(|(_, m)| !m.is_empty()).map(|(&l, _)| l).min()
    }

    /// Total number of registered faults.
    pub fn len(&self) -> usize {
        self.per_layer.values().map(|m| m.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_reports_empty() {
        let m = NeuronFaultMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.first_faulty_layer(), None);
    }

    #[test]
    fn single_constructor_registers_one_fault() {
        let m = NeuronFaultMap::single(2, 7, NeuronBehaviorFault::Saturated);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(2, 7), Some(&NeuronBehaviorFault::Saturated));
        assert_eq!(m.first_faulty_layer(), Some(2));
    }

    #[test]
    fn first_faulty_layer_is_minimum() {
        let mut m = NeuronFaultMap::new();
        m.insert(3, 0, NeuronBehaviorFault::Dead);
        m.insert(1, 5, NeuronBehaviorFault::Dead);
        assert_eq!(m.first_faulty_layer(), Some(1));
    }

    #[test]
    fn insert_replaces_existing() {
        let mut m = NeuronFaultMap::new();
        m.insert(0, 0, NeuronBehaviorFault::Dead);
        m.insert(0, 0, NeuronBehaviorFault::Saturated);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(0, 0), Some(&NeuronBehaviorFault::Saturated));
    }
}
