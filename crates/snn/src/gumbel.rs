//! Binary-concrete (Gumbel-Softmax) input relaxation and the
//! straight-through estimator — the paper's Fig. 3 input pipeline.
//!
//! The test input to an SNN is a binary spike tensor, which is not
//! differentiable. The paper therefore maintains a real-valued tensor
//! `I_real`, relaxes it with the Gumbel-Softmax function at temperature `τ`
//! (`I_soft`), binarizes with a straight-through estimator (`I_in`), and
//! backpropagates as if the binarization were the identity.
//!
//! For a *binary* variable the Gumbel-Softmax reduces to the binary
//! concrete distribution: `I_soft = σ((I_real + g) / τ)` with logistic
//! noise `g = ln u − ln(1 − u)`. A deterministic mode (`g = 0`) is provided
//! for reproducible tests and for the final deterministic readout of the
//! optimized stimulus.

use rand::Rng;
use snn_tensor::Tensor;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// One relaxed-binarized sample of the input pipeline.
///
/// Holds the soft relaxation and the binarized tensor actually applied to
/// the SNN, plus what the backward pass needs.
#[derive(Debug, Clone, PartialEq)]
pub struct GumbelSample {
    /// `I_soft = σ((I_real + g)/τ)` — the differentiable relaxation.
    pub soft: Tensor,
    /// `I_in = STE(I_soft)` — hard 0/1 spikes applied to the network.
    pub binary: Tensor,
    tau: f32,
}

impl GumbelSample {
    /// Samples the pipeline stochastically: logistic noise is added to the
    /// logits before the temperature-scaled sigmoid.
    pub fn stochastic(rng: &mut impl Rng, logits: &Tensor, tau: f32) -> Self {
        Self::build(
            logits,
            tau,
            |rng_| {
                let u: f32 = rng_.gen_range(f32::EPSILON..(1.0 - f32::EPSILON));
                (u / (1.0 - u)).ln()
            },
            rng,
        )
    }

    /// Deterministic pipeline (no noise): `I_soft = σ(I_real/τ)`.
    pub fn deterministic(logits: &Tensor, tau: f32) -> Self {
        struct NoRng;
        Self::build(logits, tau, |_: &mut NoRng| 0.0, &mut NoRng)
    }

    fn build<R>(
        logits: &Tensor,
        tau: f32,
        mut noise: impl FnMut(&mut R) -> f32,
        rng: &mut R,
    ) -> Self {
        assert!(tau > 0.0, "temperature must be positive, got {tau}");
        let soft = logits.map(|_| 0.0); // placeholder shape clone
        let mut soft_data = Vec::with_capacity(logits.len());
        for &l in logits.as_slice() {
            let g = noise(rng);
            soft_data.push(sigmoid((l + g) / tau));
        }
        let soft = Tensor::from_vec(soft.shape().clone(), soft_data)
            // snn-lint: allow(L-PANIC): soft_data has one element per logit, so the shape always matches
            .expect("shape preserved by construction");
        let binary = soft.binarize(0.5);
        Self { soft, binary, tau }
    }

    /// The temperature this sample was drawn at.
    pub fn tau(&self) -> f32 {
        self.tau
    }

    /// Backward pass: given `∂L/∂I_in` (the gradient that BPTT delivered at
    /// the binary network input), returns `∂L/∂I_real`.
    ///
    /// The straight-through estimator passes the gradient unchanged through
    /// the binarization; the concrete relaxation contributes
    /// `∂I_soft/∂I_real = I_soft·(1−I_soft)/τ`.
    ///
    /// # Panics
    ///
    /// Panics if `grad_binary` has a different shape.
    pub fn grad_logits(&self, grad_binary: &Tensor) -> Tensor {
        assert_eq!(grad_binary.shape(), self.soft.shape(), "gradient shape must match the sample");
        let inv_tau = 1.0 / self.tau;
        let mut out = grad_binary.clone();
        let s = self.soft.as_slice();
        for (g, &sv) in out.as_mut_slice().iter_mut().zip(s.iter()) {
            *g *= sv * (1.0 - sv) * inv_tau;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_tensor::Shape;

    #[test]
    fn deterministic_sample_thresholds_logits_at_zero() {
        let logits = Tensor::from_vec(Shape::d1(4), vec![-2.0, -0.1, 0.1, 3.0]).unwrap();
        let s = GumbelSample::deterministic(&logits, 0.5);
        assert!(s.binary.is_binary());
        assert_eq!(s.binary.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn lower_temperature_sharpens_the_relaxation() {
        let logits = Tensor::from_vec(Shape::d1(1), vec![1.0]).unwrap();
        let warm = GumbelSample::deterministic(&logits, 1.0);
        let cold = GumbelSample::deterministic(&logits, 0.1);
        assert!(cold.soft[0] > warm.soft[0]);
        assert!(cold.soft[0] > 0.99);
    }

    #[test]
    fn stochastic_sampling_rate_follows_logit() {
        let mut rng = StdRng::seed_from_u64(11);
        let logits = Tensor::zeros(Shape::d1(10_000));
        let s = GumbelSample::stochastic(&mut rng, &logits, 0.9);
        // logit 0 ⇒ spike probability 1/2
        let rate = s.binary.sum() / s.binary.len() as f32;
        assert!((rate - 0.5).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn grad_logits_scales_by_concrete_derivative() {
        let logits = Tensor::from_vec(Shape::d1(2), vec![0.0, 4.0]).unwrap();
        let s = GumbelSample::deterministic(&logits, 1.0);
        let g = s.grad_logits(&Tensor::full(Shape::d1(2), 1.0));
        // at logit 0: σ=0.5 ⇒ derivative 0.25; at logit 4: σ≈0.982 ⇒ ≈0.0177
        assert!((g[0] - 0.25).abs() < 1e-4);
        assert!(g[1] < 0.05);
        assert!(g[1] > 0.0);
    }

    #[test]
    fn saturated_logits_receive_vanishing_gradient() {
        let logits = Tensor::from_vec(Shape::d1(1), vec![50.0]).unwrap();
        let s = GumbelSample::deterministic(&logits, 0.9);
        let g = s.grad_logits(&Tensor::full(Shape::d1(1), 1.0));
        assert!(g[0].abs() < 1e-6);
    }

    #[test]
    fn stochastic_is_reproducible_per_seed() {
        let logits = Tensor::zeros(Shape::d1(64));
        let a = GumbelSample::stochastic(&mut StdRng::seed_from_u64(5), &logits, 0.9);
        let b = GumbelSample::stochastic(&mut StdRng::seed_from_u64(5), &logits, 0.9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn rejects_nonpositive_temperature() {
        let logits = Tensor::zeros(Shape::d1(1));
        let _ = GumbelSample::deterministic(&logits, 0.0);
    }
}
