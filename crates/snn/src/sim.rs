use crate::{Layer, Network, NeuronBehaviorFault, NeuronFaultMap};
use serde::{Deserialize, Serialize};
use snn_tensor::{ops, Shape, Tensor};
use std::collections::HashMap;

/// What the forward pass records besides output spike trains.
///
/// Fault-simulation campaigns only need spikes; BPTT additionally needs
/// the pre-spike membrane potentials and integration gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordOptions {
    /// Record pre-spike membrane potentials and integration gates.
    pub potentials: bool,
}

impl RecordOptions {
    /// Record spike trains only (cheapest; enough for fault simulation).
    pub fn spikes_only() -> Self {
        Self { potentials: false }
    }

    /// Record everything BPTT needs.
    pub fn full() -> Self {
        Self { potentials: true }
    }
}

/// Recorded state of one layer over a full forward pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTrace {
    /// Layer output per timestep, `[T × n_out]`. Binary spikes for spiking
    /// layers; real-valued averages for pooling layers.
    pub output: Tensor,
    /// Pre-spike membrane potential `v[t]`, `[T × n]` (spiking layers with
    /// [`RecordOptions::full`] only).
    pub potential: Option<Tensor>,
    /// Integration gate: 1.0 where the neuron integrated at `t` (i.e. was
    /// not refractory), `[T × n]` (same recording condition).
    pub gate: Option<Tensor>,
}

impl LayerTrace {
    /// Spike count per neuron: `|O^{ℓi}|` in the paper's notation.
    pub fn spike_counts(&self) -> Vec<f32> {
        let dims = self.output.shape().dims();
        let (t, n) = (dims[0], dims[1]);
        let mut counts = vec![0.0f32; n];
        let data = self.output.as_slice();
        for step in 0..t {
            let row = &data[step * n..(step + 1) * n];
            for (c, v) in counts.iter_mut().zip(row.iter()) {
                *c += v;
            }
        }
        counts
    }

    /// Number of neurons whose spike train is non-empty.
    pub fn activated_count(&self) -> usize {
        self.spike_counts().iter().filter(|&&c| c > 0.0).count()
    }
}

/// Full spatio-temporal record of a forward pass: one [`LayerTrace`] per
/// network layer, in order.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_model::{LifParams, NetworkBuilder, RecordOptions};
/// use snn_tensor::{Shape, Tensor};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = NetworkBuilder::new(3, LifParams::default()).dense(2).build(&mut rng);
/// let trace = net.forward(&Tensor::zeros(Shape::d2(5, 3)), RecordOptions::full());
/// assert_eq!(trace.steps, 5);
/// assert_eq!(trace.layers.len(), 1);
/// // Zero input ⇒ zero spikes.
/// assert_eq!(trace.output().sum(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Number of simulated ticks.
    pub steps: usize,
    /// Per-layer records, aligned with `Network::layers()`.
    pub layers: Vec<LayerTrace>,
}

impl Trace {
    /// Output spike trains of the last layer, `[T × classes]` — the
    /// paper's `O^L`.
    pub fn output(&self) -> &Tensor {
        // snn-lint: allow(L-PANIC): a trace always records the non-empty network's layers
        &self.layers.last().expect("trace has at least one layer").output
    }

    /// Output spike count per class (rate-coding readout).
    pub fn class_counts(&self) -> Vec<f32> {
        // snn-lint: allow(L-PANIC): a trace always records the non-empty network's layers
        self.layers.last().expect("non-empty").spike_counts()
    }

    /// Index of the class with the highest output spike count (top-1
    /// prediction under rate coding). Ties break toward the lower index.
    pub fn predict(&self) -> usize {
        let counts = self.class_counts();
        let mut best = 0;
        for (i, &c) in counts.iter().enumerate() {
            if c > counts[best] {
                best = i;
            }
        }
        best
    }

    /// L1 distance between this trace's output spike trains and another's —
    /// the detection metric of the paper's Eq. (3).
    ///
    /// # Panics
    ///
    /// Panics if output shapes differ.
    pub fn output_distance(&self, other: &Trace) -> f32 {
        (self.output() - other.output()).l1_norm()
    }
}

/// Resumable per-neuron LIF integration state, carried across segmented
/// simulation calls.
///
/// A transient-fault window splits one logical forward pass into time
/// segments (fault-free prefix, faulty window, fault-free suffix); the
/// membrane potentials, refractory counters and previous-tick spikes must
/// survive the segment boundary for the stitched run to be bit-identical
/// to an unsegmented one.
#[derive(Debug, Clone, PartialEq)]
pub struct LifState {
    /// Membrane potential carried across ticks, per neuron.
    carried: Vec<f32>,
    /// Remaining refractory ticks, per neuron.
    refrac: Vec<u32>,
    /// Own spikes emitted on the previous tick (recurrent feedback input).
    prev_spikes: Vec<f32>,
}

impl LifState {
    /// Resting state for a layer of `n` neurons (what an unsegmented run
    /// starts from).
    pub fn fresh(n: usize) -> Self {
        Self { carried: vec![0.0; n], refrac: vec![0; n], prev_spikes: vec![0.0; n] }
    }
}

/// Resumable simulation state of one network layer.
///
/// Spiking layers carry a [`LifState`]; stateless layers (pooling) carry
/// nothing. A `Default` value means "not yet simulated" — the first
/// segment lazily initialises the state to resting conditions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LayerState {
    lif: Option<LifState>,
}

/// Per-neuron effective LIF constants after applying behavioural faults.
struct EffectiveParams {
    threshold: Vec<f32>,
    leak: Vec<f32>,
    refrac: Vec<u32>,
    /// 0 = normal, 1 = dead, 2 = saturated.
    forced: Vec<u8>,
}

impl EffectiveParams {
    fn new(
        n: usize,
        lif: &crate::LifParams,
        faults: Option<&HashMap<usize, NeuronBehaviorFault>>,
    ) -> Self {
        let mut p = Self {
            threshold: vec![lif.threshold; n],
            leak: vec![lif.leak; n],
            refrac: vec![lif.refrac_steps; n],
            forced: vec![0u8; n],
        };
        if let Some(map) = faults {
            for (&i, fault) in map {
                if i >= n {
                    continue;
                }
                match *fault {
                    NeuronBehaviorFault::Dead => p.forced[i] = 1,
                    NeuronBehaviorFault::Saturated => p.forced[i] = 2,
                    NeuronBehaviorFault::ParamScale {
                        threshold_scale,
                        leak_scale,
                        refrac_delta,
                    } => {
                        p.threshold[i] = (lif.threshold * threshold_scale).max(f32::EPSILON);
                        p.leak[i] = (lif.leak * leak_scale).clamp(f32::EPSILON, 1.0);
                        p.refrac[i] =
                            // snn-lint: allow(L-CAST): clamped non-negative and refractory periods are tiny, truncation unreachable
                            (i64::from(lif.refrac_steps) + i64::from(refrac_delta)).max(0) as u32;
                    }
                }
            }
        }
        p
    }
}

/// Simulates one spiking layer over `steps` ticks.
///
/// `synaptic` computes the instantaneous synaptic drive `z[t]` for all
/// neurons given `(t, previous own spikes)` — the closure abstracts over
/// dense/conv/recurrent connectivity.
fn run_lif<F>(
    steps: usize,
    n: usize,
    params: EffectiveParams,
    record: RecordOptions,
    state: &mut LifState,
    mut synaptic: F,
) -> LayerTrace
where
    F: FnMut(usize, &[f32], &mut [f32]),
{
    let mut output = Tensor::zeros(Shape::d2(steps, n));
    let mut potential = record.potentials.then(|| Tensor::zeros(Shape::d2(steps, n)));
    let mut gate = record.potentials.then(|| Tensor::zeros(Shape::d2(steps, n)));

    let carried = &mut state.carried; // membrane carried across ticks
    let refrac = &mut state.refrac;
    let prev_spikes = &mut state.prev_spikes;
    let mut z = vec![0.0f32; n];

    for t in 0..steps {
        z.iter_mut().for_each(|v| *v = 0.0);
        synaptic(t, prev_spikes, &mut z);
        let out_row = {
            let data = output.as_mut_slice();
            &mut data[t * n..(t + 1) * n]
        };
        for i in 0..n {
            match params.forced[i] {
                1 => {
                    // Dead: halts spike propagation entirely.
                    out_row[i] = 0.0;
                    continue;
                }
                2 => {
                    // Saturated: fires every tick regardless of input.
                    out_row[i] = 1.0;
                    continue;
                }
                _ => {}
            }
            if refrac[i] > 0 {
                refrac[i] -= 1;
                carried[i] = 0.0;
                out_row[i] = 0.0;
                // gate stays 0, potential stays 0
                continue;
            }
            let v = params.leak[i] * carried[i] + z[i];
            if let Some(p) = potential.as_mut() {
                p.as_mut_slice()[t * n + i] = v;
            }
            if let Some(g) = gate.as_mut() {
                g.as_mut_slice()[t * n + i] = 1.0;
            }
            if v >= params.threshold[i] {
                out_row[i] = 1.0;
                carried[i] = 0.0;
                refrac[i] = params.refrac[i];
            } else {
                out_row[i] = 0.0;
                carried[i] = v;
            }
        }
        let data = output.as_slice();
        prev_spikes.copy_from_slice(&data[t * n..(t + 1) * n]);
    }

    LayerTrace { output, potential, gate }
}

fn run_layer(
    layer: &Layer,
    input: &Tensor,
    record: RecordOptions,
    faults: Option<&HashMap<usize, NeuronBehaviorFault>>,
) -> LayerTrace {
    run_layer_segment(layer, input, 0, record, faults, &mut LayerState::default())
}

/// Simulates one layer over a *segment* of a longer run.
///
/// `t_offset` is the global tick the segment starts at; `state` carries
/// the membrane/refractory/feedback state across segment boundaries.
/// Calling this once with `t_offset == 0` and a default `state` is
/// exactly [`run_layer`]; calling it for consecutive segments with the
/// same `state` reproduces the unsegmented run bit for bit.
fn run_layer_segment(
    layer: &Layer,
    input: &Tensor,
    t_offset: usize,
    record: RecordOptions,
    faults: Option<&HashMap<usize, NeuronBehaviorFault>>,
    state: &mut LayerState,
) -> LayerTrace {
    let dims = input.shape().dims();
    assert_eq!(dims.len(), 2, "layer input must be [T × features]");
    let (steps, in_features) = (dims[0], dims[1]);
    assert_eq!(
        in_features,
        layer.in_features(),
        "layer expects {} features, input provides {in_features}",
        layer.in_features()
    );
    let n = layer.out_features();
    let in_data = input.as_slice();

    match layer {
        Layer::Dense(l) => {
            let params = EffectiveParams::new(n, &l.lif, faults);
            let lif = state.lif.get_or_insert_with(|| LifState::fresh(n));
            run_lif(steps, n, params, record, lif, |t, _prev, z| {
                ops::matvec(&l.weight, &in_data[t * in_features..(t + 1) * in_features], z);
            })
        }
        Layer::Conv(l) => {
            let params = EffectiveParams::new(n, &l.lif, faults);
            let (h, w) = l.in_hw;
            let lif = state.lif.get_or_insert_with(|| LifState::fresh(n));
            run_lif(steps, n, params, record, lif, |t, _prev, z| {
                ops::conv2d(
                    &l.spec,
                    &in_data[t * in_features..(t + 1) * in_features],
                    h,
                    w,
                    &l.weight,
                    z,
                );
            })
        }
        Layer::Recurrent(l) => {
            let params = EffectiveParams::new(n, &l.lif, faults);
            let mut z_rec = vec![0.0f32; n];
            let lif = state.lif.get_or_insert_with(|| LifState::fresh(n));
            run_lif(steps, n, params, record, lif, move |t, prev, z| {
                ops::matvec(&l.w_in, &in_data[t * in_features..(t + 1) * in_features], z);
                // Feedback applies from the second *global* tick on; at a
                // segment boundary `prev` already holds the last tick of
                // the previous segment.
                if t_offset + t > 0 {
                    ops::matvec(&l.w_rec, prev, &mut z_rec);
                    for (zi, ri) in z.iter_mut().zip(z_rec.iter()) {
                        *zi += ri;
                    }
                }
            })
        }
        Layer::Pool(l) => {
            let mut output = Tensor::zeros(Shape::d2(steps, n));
            let (h, w) = l.in_hw;
            for t in 0..steps {
                let out_data = output.as_mut_slice();
                ops::avg_pool2d(
                    &in_data[t * in_features..(t + 1) * in_features],
                    l.channels,
                    h,
                    w,
                    l.k,
                    &mut out_data[t * n..(t + 1) * n],
                );
            }
            LayerTrace { output, potential: None, gate: None }
        }
    }
}

impl Network {
    /// Fault-free forward pass over the whole network.
    ///
    /// `input` is `[T × input_features]` — one row per tick, matching the
    /// paper's binary input tensor `I` (values may be fractional when fed
    /// from a relaxed/Gumbel input).
    ///
    /// # Panics
    ///
    /// Panics if `input` is not rank-2 or its feature count mismatches.
    pub fn forward(&self, input: &Tensor, record: RecordOptions) -> Trace {
        self.forward_faulty(input, record, &NeuronFaultMap::new())
    }

    /// Forward pass with behavioural neuron faults applied.
    pub fn forward_faulty(
        &self,
        input: &Tensor,
        record: RecordOptions,
        faults: &NeuronFaultMap,
    ) -> Trace {
        let _span = snn_obs::span!("snn.forward");
        let steps = input.shape().dim(0);
        let layers = self.forward_from(0, input, record, faults);
        Trace { steps, layers }
    }

    /// Simulates a single layer `idx` on the given input sequence.
    ///
    /// Building block for layer-by-layer fault simulation with early exit:
    /// the campaign re-simulates one layer at a time and stops as soon as
    /// the faulty activity matches the fault-free baseline.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or shapes mismatch.
    pub fn forward_layer(
        &self,
        idx: usize,
        input: &Tensor,
        record: RecordOptions,
        faults: &NeuronFaultMap,
    ) -> LayerTrace {
        assert!(idx < self.layers.len(), "layer index {idx} out of range");
        run_layer(&self.layers[idx], input, record, faults.layer_faults(idx))
    }

    /// Simulates layer `idx` over a time *segment*, resuming from `state`.
    ///
    /// `input` holds the segment's rows (`[T_seg × features]`),
    /// `t_offset` the global tick the segment starts at, and `state` the
    /// layer's integration state from earlier segments (a default
    /// [`LayerState`] means resting conditions). Running consecutive
    /// segments with the same `state` is bit-identical to one
    /// [`Network::forward_layer`] call over the concatenated input — the
    /// primitive behind transient-fault injection windows, where the
    /// fault set differs per segment.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or shapes mismatch.
    pub fn forward_layer_segment(
        &self,
        idx: usize,
        input: &Tensor,
        t_offset: usize,
        record: RecordOptions,
        faults: &NeuronFaultMap,
        state: &mut LayerState,
    ) -> LayerTrace {
        assert!(idx < self.layers.len(), "layer index {idx} out of range");
        run_layer_segment(
            &self.layers[idx],
            input,
            t_offset,
            record,
            faults.layer_faults(idx),
            state,
        )
    }

    /// Simulates layers `start..` using `stage_input` as the input sequence
    /// of layer `start`, returning their traces.
    ///
    /// This is the primitive behind prefix-cached fault simulation: a fault
    /// confined to layer `ℓ` cannot change the activity of layers `< ℓ` in
    /// a feedforward network, so the campaign re-simulates only the suffix.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range or shapes mismatch.
    pub fn forward_from(
        &self,
        start: usize,
        stage_input: &Tensor,
        record: RecordOptions,
        faults: &NeuronFaultMap,
    ) -> Vec<LayerTrace> {
        assert!(start < self.layers.len(), "start layer {start} out of range");
        let mut traces = Vec::with_capacity(self.layers.len() - start);
        let mut current: Option<Tensor> = None;
        for (idx, layer) in self.layers.iter().enumerate().skip(start) {
            let input = current.as_ref().unwrap_or(stage_input);
            let trace = run_layer(layer, input, record, faults.layer_faults(idx));
            current = Some(trace.output.clone());
            traces.push(trace);
        }
        traces
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use crate::{DenseLayer, LifParams, NetworkBuilder, PoolLayer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_tensor::Shape;

    /// Single neuron, weight 0.4, threshold 1.0, leak 1.0 (no decay), no
    /// refractory: needs 3 input spikes to fire (0.4, 0.8, 1.2 ≥ 1.0).
    #[test]
    fn integrate_and_fire_counts_spikes() {
        let lif = LifParams { threshold: 1.0, leak: 1.0, refrac_steps: 0 };
        let net = Network::new(
            Shape::d1(1),
            vec![Layer::Dense(DenseLayer::new(
                Tensor::from_vec(Shape::d2(1, 1), vec![0.4]).unwrap(),
                lif,
            ))],
        );
        let input = Tensor::full(Shape::d2(6, 1), 1.0);
        let trace = net.forward(&input, RecordOptions::full());
        let out = trace.output().as_slice();
        // v: 0.4, 0.8, 1.2→spike, 0.4, 0.8, 1.2→spike
        assert_eq!(out, &[0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        let pot = trace.layers[0].potential.as_ref().unwrap().as_slice();
        assert!((pot[2] - 1.2).abs() < 1e-6);
    }

    #[test]
    fn leak_decays_the_membrane() {
        // weight 0.6, leak 0.5: v alternates 0.6, 0.9, 1.05→spike...
        let lif = LifParams { threshold: 1.0, leak: 0.5, refrac_steps: 0 };
        let net = Network::new(
            Shape::d1(1),
            vec![Layer::Dense(DenseLayer::new(
                Tensor::from_vec(Shape::d2(1, 1), vec![0.6]).unwrap(),
                lif,
            ))],
        );
        let input = Tensor::full(Shape::d2(3, 1), 1.0);
        let trace = net.forward(&input, RecordOptions::full());
        let pot = trace.layers[0].potential.as_ref().unwrap().as_slice();
        assert!((pot[0] - 0.6).abs() < 1e-6);
        assert!((pot[1] - 0.9).abs() < 1e-6);
        assert!((pot[2] - 1.05).abs() < 1e-6);
        assert_eq!(trace.output().as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn refractory_blocks_integration() {
        // weight 1.0: fires at t=0, then refractory for 2 ticks, fires at t=3.
        let lif = LifParams { threshold: 1.0, leak: 1.0, refrac_steps: 2 };
        let net = Network::new(
            Shape::d1(1),
            vec![Layer::Dense(DenseLayer::new(
                Tensor::from_vec(Shape::d2(1, 1), vec![1.0]).unwrap(),
                lif,
            ))],
        );
        let input = Tensor::full(Shape::d2(6, 1), 1.0);
        let trace = net.forward(&input, RecordOptions::full());
        assert_eq!(trace.output().as_slice(), &[1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        let gate = trace.layers[0].gate.as_ref().unwrap().as_slice();
        assert_eq!(gate, &[1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn dead_fault_silences_neuron() {
        let lif = LifParams { threshold: 0.5, leak: 1.0, refrac_steps: 0 };
        let net = Network::new(
            Shape::d1(1),
            vec![Layer::Dense(DenseLayer::new(
                Tensor::from_vec(Shape::d2(1, 1), vec![1.0]).unwrap(),
                lif,
            ))],
        );
        let input = Tensor::full(Shape::d2(4, 1), 1.0);
        let faults = NeuronFaultMap::single(0, 0, NeuronBehaviorFault::Dead);
        let trace = net.forward_faulty(&input, RecordOptions::spikes_only(), &faults);
        assert_eq!(trace.output().sum(), 0.0);
    }

    #[test]
    fn saturated_fault_fires_without_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = NetworkBuilder::new(2, LifParams::default()).dense(3).build(&mut rng);
        let input = Tensor::zeros(Shape::d2(5, 2));
        let faults = NeuronFaultMap::single(0, 1, NeuronBehaviorFault::Saturated);
        let trace = net.forward_faulty(&input, RecordOptions::spikes_only(), &faults);
        let counts = trace.layers[0].spike_counts();
        assert_eq!(counts, vec![0.0, 5.0, 0.0]);
    }

    #[test]
    fn param_fault_changes_firing_rate() {
        // Nominal: weight 0.6, θ=1.0 fires every 2 ticks. θ×2 ⇒ fires
        // every 4 ticks (0.6,1.2? no: accumulate 0.6,1.2,1.8,2.4≥2.0).
        let lif = LifParams { threshold: 1.0, leak: 1.0, refrac_steps: 0 };
        let net = Network::new(
            Shape::d1(1),
            vec![Layer::Dense(DenseLayer::new(
                Tensor::from_vec(Shape::d2(1, 1), vec![0.6]).unwrap(),
                lif,
            ))],
        );
        let input = Tensor::full(Shape::d2(8, 1), 1.0);
        let nominal = net.forward(&input, RecordOptions::spikes_only());
        let faults = NeuronFaultMap::single(
            0,
            0,
            NeuronBehaviorFault::ParamScale {
                threshold_scale: 2.0,
                leak_scale: 1.0,
                refrac_delta: 0,
            },
        );
        let faulty = net.forward_faulty(&input, RecordOptions::spikes_only(), &faults);
        assert!(faulty.output().sum() < nominal.output().sum());
        assert!(nominal.output_distance(&faulty) > 0.0);
    }

    #[test]
    fn pool_layer_outputs_fractional_averages() {
        let net = Network::new(Shape::d3(1, 2, 2), vec![Layer::Pool(PoolLayer::new(1, (2, 2), 2))]);
        let input = Tensor::from_vec(Shape::d2(1, 4), vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let trace = net.forward(&input, RecordOptions::spikes_only());
        assert_eq!(trace.output().as_slice(), &[0.5]);
    }

    #[test]
    fn forward_from_matches_full_forward() {
        let mut rng = StdRng::seed_from_u64(7);
        let net =
            NetworkBuilder::new(6, LifParams::default()).dense(8).dense(4).dense(2).build(&mut rng);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(12, 6), 0.5);
        let full = net.forward(&input, RecordOptions::spikes_only());
        let suffix = net.forward_from(
            1,
            &full.layers[0].output,
            RecordOptions::spikes_only(),
            &NeuronFaultMap::new(),
        );
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].output, full.layers[1].output);
        assert_eq!(suffix[1].output, full.layers[2].output);
    }

    #[test]
    fn predict_uses_rate_coding() {
        let lif = LifParams { threshold: 0.5, leak: 1.0, refrac_steps: 0 };
        // Two outputs; weight to output 1 is double.
        let net = Network::new(
            Shape::d1(1),
            vec![Layer::Dense(DenseLayer::new(
                Tensor::from_vec(Shape::d2(2, 1), vec![0.3, 0.9]).unwrap(),
                lif,
            ))],
        );
        let input = Tensor::full(Shape::d2(10, 1), 1.0);
        let trace = net.forward(&input, RecordOptions::spikes_only());
        assert_eq!(trace.predict(), 1);
    }

    #[test]
    fn recurrent_layer_feeds_back_spikes() {
        // One recurrent unit: strong input weight fires it at t=0; strong
        // recurrent weight keeps it firing even after input stops.
        let lif = LifParams { threshold: 1.0, leak: 1.0, refrac_steps: 0 };
        let l = crate::RecurrentLayer::new(
            Tensor::from_vec(Shape::d2(1, 1), vec![1.5]).unwrap(),
            Tensor::from_vec(Shape::d2(1, 1), vec![1.5]).unwrap(),
            lif,
        );
        let net = Network::new(Shape::d1(1), vec![Layer::Recurrent(l)]);
        let mut input = Tensor::zeros(Shape::d2(5, 1));
        input[[0, 0]] = 1.0; // single kick
        let trace = net.forward(&input, RecordOptions::spikes_only());
        // t=0 fires from input; t≥1 fires from recurrence.
        assert_eq!(trace.output().sum(), 5.0);
    }

    /// Splits `input` at `k` and simulates layer 0 in two segments with a
    /// shared state, returning the concatenated output rows.
    fn segmented_layer_output(net: &Network, input: &Tensor, k: usize) -> Vec<f32> {
        let dims = input.shape().dims();
        let (steps, f) = (dims[0], dims[1]);
        let data = input.as_slice();
        let head = Tensor::from_vec(Shape::d2(k, f), data[..k * f].to_vec()).unwrap();
        let tail = Tensor::from_vec(Shape::d2(steps - k, f), data[k * f..].to_vec()).unwrap();
        let mut state = LayerState::default();
        let empty = NeuronFaultMap::new();
        let a = net.forward_layer_segment(
            0,
            &head,
            0,
            RecordOptions::spikes_only(),
            &empty,
            &mut state,
        );
        let b = net.forward_layer_segment(
            0,
            &tail,
            k,
            RecordOptions::spikes_only(),
            &empty,
            &mut state,
        );
        let mut out = a.output.as_slice().to_vec();
        out.extend_from_slice(b.output.as_slice());
        out
    }

    #[test]
    fn segmented_dense_matches_one_shot() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = NetworkBuilder::new(5, LifParams::default()).dense(7).build(&mut rng);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(13, 5), 0.5);
        let full =
            net.forward_layer(0, &input, RecordOptions::spikes_only(), &NeuronFaultMap::new());
        for k in [1, 4, 12] {
            assert_eq!(segmented_layer_output(&net, &input, k), full.output.as_slice());
        }
    }

    #[test]
    fn segmented_conv_matches_one_shot() {
        let mut rng = StdRng::seed_from_u64(12);
        let net = NetworkBuilder::new_spatial(1, 4, 4, LifParams::default())
            .conv(2, 3, 1, 1)
            .build(&mut rng);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(10, 16), 0.4);
        let full =
            net.forward_layer(0, &input, RecordOptions::spikes_only(), &NeuronFaultMap::new());
        assert_eq!(segmented_layer_output(&net, &input, 5), full.output.as_slice());
    }

    #[test]
    fn segmented_recurrent_matches_one_shot() {
        // The single kick at t=0 only sustains if recurrent feedback is
        // live across the segment boundary — this pins the t_offset logic.
        let lif = LifParams { threshold: 1.0, leak: 1.0, refrac_steps: 0 };
        let l = crate::RecurrentLayer::new(
            Tensor::from_vec(Shape::d2(1, 1), vec![1.5]).unwrap(),
            Tensor::from_vec(Shape::d2(1, 1), vec![1.5]).unwrap(),
            lif,
        );
        let net = Network::new(Shape::d1(1), vec![Layer::Recurrent(l)]);
        let mut input = Tensor::zeros(Shape::d2(6, 1));
        input[[0, 0]] = 1.0;
        let full =
            net.forward_layer(0, &input, RecordOptions::spikes_only(), &NeuronFaultMap::new());
        assert_eq!(full.output.sum(), 6.0);
        for k in [1, 3, 5] {
            assert_eq!(segmented_layer_output(&net, &input, k), full.output.as_slice());
        }
    }

    #[test]
    fn segmented_pool_matches_one_shot() {
        let net = Network::new(Shape::d3(1, 2, 2), vec![Layer::Pool(PoolLayer::new(1, (2, 2), 2))]);
        let input = Tensor::from_vec(
            Shape::d2(4, 4),
            vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0],
        )
        .unwrap();
        let full =
            net.forward_layer(0, &input, RecordOptions::spikes_only(), &NeuronFaultMap::new());
        assert_eq!(segmented_layer_output(&net, &input, 2), full.output.as_slice());
    }

    #[test]
    fn forward_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = NetworkBuilder::new_spatial(1, 4, 4, LifParams::default())
            .conv(2, 3, 1, 1)
            .dense(3)
            .build(&mut rng);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(9, 16), 0.4);
        let a = net.forward(&input, RecordOptions::full());
        let b = net.forward(&input, RecordOptions::full());
        assert_eq!(a, b);
    }
}
