//! Post-training int8 weight quantization.
//!
//! Neuromorphic accelerators store synaptic weights in small integer
//! memories; the paper's bit-flip synapse fault model explicitly assumes
//! a digital weight word. This module provides per-tensor symmetric int8
//! quantization so that (a) benchmarks can be evaluated in their deployed
//! precision and (b) the bit-flip fault campaign runs against a model
//! whose weights actually live on the int8 grid.

use crate::{Layer, Network};
use serde::{Deserialize, Serialize};
use snn_tensor::Tensor;

/// Quantization report: per-tensor scales and the worst rounding error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantReport {
    /// Per-layer, per-tensor scale factors (`weight ≈ q · scale`).
    pub scales: Vec<Vec<f32>>,
    /// Largest absolute rounding error across all weights.
    pub max_abs_error: f32,
    /// Mean absolute rounding error.
    pub mean_abs_error: f32,
}

/// Quantizes every weight tensor of `net` in place to the int8 grid
/// (symmetric, per-tensor scale `max|w| / 127`), returning the report.
///
/// Weights become exactly representable as `i8 · scale`, so a subsequent
/// [`FaultKind::SynapseBitFlip`](../../snn_faults/enum.FaultKind.html)
/// injection flips bits of the true stored word.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_model::{quantize_weights, LifParams, NetworkBuilder};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = NetworkBuilder::new(4, LifParams::default()).dense(3).build(&mut rng);
/// let report = quantize_weights(&mut net);
/// assert!(report.max_abs_error <= net.max_abs_weight() / 127.0 * 0.5 + 1e-6);
/// ```
pub fn quantize_weights(net: &mut Network) -> QuantReport {
    let mut scales = Vec::with_capacity(net.layers().len());
    let mut max_err = 0.0f32;
    let mut err_sum = 0.0f64;
    let mut err_count = 0usize;
    for layer in net.layers_mut() {
        let mut layer_scales = Vec::new();
        for tensor in layer.weight_tensors_mut() {
            let scale = tensor.as_slice().iter().fold(0.0f32, |acc, v| acc.max(v.abs())) / 127.0;
            layer_scales.push(scale);
            // snn-lint: allow(L-FLOATEQ): exact-zero scale means an all-zero tensor, not a tolerance test
            if scale == 0.0 {
                continue; // all-zero tensor: already on the grid
            }
            for w in tensor.as_mut_slice() {
                let q = (*w / scale).round().clamp(-128.0, 127.0);
                let dequant = q * scale;
                let err = (*w - dequant).abs();
                max_err = max_err.max(err);
                err_sum += f64::from(err);
                err_count += 1;
                *w = dequant;
            }
        }
        scales.push(layer_scales);
    }
    QuantReport {
        scales,
        max_abs_error: max_err,
        // snn-lint: allow(L-CAST): a rounded element count changes the mean by ≤1 ulp, and the f32 narrowing is the report's precision
        mean_abs_error: if err_count == 0 { 0.0 } else { (err_sum / err_count as f64) as f32 },
    }
}

/// `true` if every weight of `net` lies exactly on its tensor's int8 grid
/// (i.e. [`quantize_weights`] would be a no-op).
pub fn is_quantized(net: &Network) -> bool {
    for layer in net.layers() {
        if let Layer::Pool(_) = layer {
            continue;
        }
        for tensor in layer.weight_tensors() {
            let scale = tensor.as_slice().iter().fold(0.0f32, |acc, v| acc.max(v.abs())) / 127.0;
            // snn-lint: allow(L-FLOATEQ): exact-zero scale means an all-zero tensor, not a tolerance test
            if scale == 0.0 {
                continue;
            }
            for &w in tensor.as_slice() {
                let q = (w / scale).round();
                if (w - q * scale).abs() > scale * 1e-3 {
                    return false;
                }
            }
        }
    }
    true
}

/// Convenience: largest weight magnitude of one tensor.
#[allow(dead_code)]
fn tensor_max_abs(t: &Tensor) -> f32 {
    t.as_slice().iter().fold(0.0f32, |acc, v| acc.max(v.abs()))
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use crate::{LifParams, NetworkBuilder, RecordOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_tensor::Shape;

    #[test]
    fn quantization_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net =
            NetworkBuilder::new(6, LifParams::default()).dense(10).dense(3).build(&mut rng);
        assert!(!is_quantized(&net));
        let r1 = quantize_weights(&mut net);
        assert!(is_quantized(&net));
        let before = net.clone();
        let r2 = quantize_weights(&mut net);
        assert_eq!(net, before, "second quantization must be a no-op");
        assert!(r1.max_abs_error > 0.0);
        assert!(r2.max_abs_error < r1.max_abs_error.max(1e-6));
    }

    #[test]
    fn error_is_bounded_by_half_a_step() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = NetworkBuilder::new(5, LifParams::default()).dense(8).build(&mut rng);
        let step = net.max_abs_weight() / 127.0;
        let report = quantize_weights(&mut net);
        assert!(report.max_abs_error <= step * 0.5 + 1e-6);
        assert!(report.mean_abs_error <= report.max_abs_error);
        assert_eq!(report.scales.len(), 1);
    }

    #[test]
    fn behaviour_is_approximately_preserved() {
        // Quantization noise is small relative to the threshold, so spike
        // counts should barely move on a moderately active network.
        let mut rng = StdRng::seed_from_u64(3);
        let net = NetworkBuilder::new(8, LifParams::default()).dense(16).dense(4).build(&mut rng);
        let mut quant = net.clone();
        quantize_weights(&mut quant);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(30, 8), 0.4);
        let a = net.forward(&input, RecordOptions::spikes_only());
        let b = quant.forward(&input, RecordOptions::spikes_only());
        let total: f32 = a.output().sum().max(1.0);
        let diff = a.output_distance(&b);
        assert!(
            diff / total < 0.35,
            "quantization changed {:.0}% of output spikes",
            100.0 * diff / total
        );
    }

    #[test]
    fn zero_tensor_is_handled() {
        use crate::{DenseLayer, Layer, Network};
        let lif = LifParams::default();
        let mut net = Network::new(
            Shape::d1(2),
            vec![Layer::Dense(DenseLayer::new(snn_tensor::Tensor::zeros(Shape::d2(2, 2)), lif))],
        );
        let report = quantize_weights(&mut net);
        assert_eq!(report.max_abs_error, 0.0);
        assert!(is_quantized(&net));
    }
}
