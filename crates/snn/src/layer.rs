use crate::LifParams;
use serde::{Deserialize, Serialize};
use snn_tensor::{ops::Conv2dSpec, Shape, Tensor};

/// Fully-connected spiking layer: `z = W · s_in`, LIF dynamics per output
/// neuron. Weight layout is `[out_features × in_features]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    /// Synaptic weight matrix `[out × in]`.
    pub weight: Tensor,
    /// Neuron parameters shared by the layer.
    pub lif: LifParams,
    pub(crate) in_features: usize,
    pub(crate) out_features: usize,
}

impl DenseLayer {
    /// Creates a dense layer from an explicit weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank-2.
    pub fn new(weight: Tensor, lif: LifParams) -> Self {
        let dims = weight.shape().dims();
        assert_eq!(dims.len(), 2, "dense weight must be rank-2");
        let (out_features, in_features) = (dims[0], dims[1]);
        Self { weight, lif, in_features, out_features }
    }
}

/// 2-D convolutional spiking layer. Weight layout `[out_c, in_c, k, k]`;
/// the paper counts *unique weights* as synapses, which this layer reports
/// through [`Layer::weight_count`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvLayer {
    /// Convolution geometry.
    pub spec: Conv2dSpec,
    /// Kernel weights `[out_c, in_c, k, k]`.
    pub weight: Tensor,
    /// Neuron parameters shared by the layer.
    pub lif: LifParams,
    /// Input spatial extent (height, width).
    pub in_hw: (usize, usize),
}

impl ConvLayer {
    /// Creates a convolutional layer.
    ///
    /// # Panics
    ///
    /// Panics if the weight tensor does not match `spec`.
    pub fn new(spec: Conv2dSpec, in_hw: (usize, usize), weight: Tensor, lif: LifParams) -> Self {
        assert_eq!(weight.len(), spec.weight_count(), "conv weight length must match spec");
        Self { spec, weight, lif, in_hw }
    }

    /// Output spatial extent.
    pub fn out_hw(&self) -> (usize, usize) {
        self.spec.out_hw(self.in_hw.0, self.in_hw.1)
    }
}

/// Non-spiking average-pooling layer (window `k`, stride `k`).
///
/// Pooling in SLAYER-style accelerators is a fixed averaging synapse; it
/// contributes no neurons and no trainable weights — consistent with the
/// paper's Table I, whose neuron counts exclude pooling stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolLayer {
    /// Channel count (unchanged by pooling).
    pub channels: usize,
    /// Input spatial extent (height, width).
    pub in_hw: (usize, usize),
    /// Pooling window and stride.
    pub k: usize,
}

impl PoolLayer {
    /// Creates an average-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or does not divide both spatial extents.
    pub fn new(channels: usize, in_hw: (usize, usize), k: usize) -> Self {
        assert!(k > 0, "pool window must be positive");
        assert!(
            in_hw.0.is_multiple_of(k) && in_hw.1.is_multiple_of(k),
            "pool window {k} must divide input extent {in_hw:?}"
        );
        Self { channels, in_hw, k }
    }

    /// Output spatial extent.
    pub fn out_hw(&self) -> (usize, usize) {
        (self.in_hw.0 / self.k, self.in_hw.1 / self.k)
    }
}

/// Recurrent spiking layer: `z[t] = W_in · s_in[t] + W_rec · s_self[t−1]`.
///
/// Used by the SHD-like benchmark, mirroring the recurrent architectures
/// evaluated on the Spiking Heidelberg Digits dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecurrentLayer {
    /// Input weight matrix `[units × in_features]`.
    pub w_in: Tensor,
    /// Recurrent weight matrix `[units × units]`.
    pub w_rec: Tensor,
    /// Neuron parameters shared by the layer.
    pub lif: LifParams,
    pub(crate) in_features: usize,
    pub(crate) units: usize,
}

impl RecurrentLayer {
    /// Creates a recurrent layer from explicit weight matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrices are not rank-2 or disagree on the unit count.
    pub fn new(w_in: Tensor, w_rec: Tensor, lif: LifParams) -> Self {
        let din = w_in.shape().dims();
        let drec = w_rec.shape().dims();
        assert_eq!(din.len(), 2, "recurrent input weight must be rank-2");
        assert_eq!(drec.len(), 2, "recurrent weight must be rank-2");
        assert_eq!(drec[0], drec[1], "recurrent weight must be square");
        assert_eq!(din[0], drec[0], "unit count mismatch between W_in and W_rec");
        Self { in_features: din[1], units: din[0], w_in, w_rec, lif }
    }
}

/// One layer of a [`Network`](crate::Network).
///
/// Spiking layers (dense / conv / recurrent) own LIF neurons and trainable
/// weights; the pooling layer is a fixed non-spiking reduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Fully-connected spiking layer.
    Dense(DenseLayer),
    /// Convolutional spiking layer.
    Conv(ConvLayer),
    /// Non-spiking average pooling.
    Pool(PoolLayer),
    /// Recurrent spiking layer.
    Recurrent(RecurrentLayer),
}

impl Layer {
    /// Flattened input size per timestep.
    pub fn in_features(&self) -> usize {
        match self {
            Layer::Dense(l) => l.in_features,
            Layer::Conv(l) => l.spec.in_channels * l.in_hw.0 * l.in_hw.1,
            Layer::Pool(l) => l.channels * l.in_hw.0 * l.in_hw.1,
            Layer::Recurrent(l) => l.in_features,
        }
    }

    /// Flattened output size per timestep.
    pub fn out_features(&self) -> usize {
        match self {
            Layer::Dense(l) => l.out_features,
            Layer::Conv(l) => {
                let (oh, ow) = l.out_hw();
                l.spec.out_channels * oh * ow
            }
            Layer::Pool(l) => {
                let (oh, ow) = l.out_hw();
                l.channels * oh * ow
            }
            Layer::Recurrent(l) => l.units,
        }
    }

    /// Structured output shape (`[n]` for dense/recurrent, `[c×h×w]` for
    /// conv/pool). Used by activity-map reporting (paper Fig. 8).
    pub fn out_shape(&self) -> Shape {
        match self {
            Layer::Dense(l) => Shape::d1(l.out_features),
            Layer::Conv(l) => {
                let (oh, ow) = l.out_hw();
                Shape::d3(l.spec.out_channels, oh, ow)
            }
            Layer::Pool(l) => {
                let (oh, ow) = l.out_hw();
                Shape::d3(l.channels, oh, ow)
            }
            Layer::Recurrent(l) => Shape::d1(l.units),
        }
    }

    /// `true` if the layer contains LIF neurons.
    pub fn is_spiking(&self) -> bool {
        !matches!(self, Layer::Pool(_))
    }

    /// The LIF parameters, if this is a spiking layer.
    pub fn lif(&self) -> Option<&LifParams> {
        match self {
            Layer::Dense(l) => Some(&l.lif),
            Layer::Conv(l) => Some(&l.lif),
            Layer::Recurrent(l) => Some(&l.lif),
            Layer::Pool(_) => None,
        }
    }

    /// Number of trainable weights ("synapses" in the paper's Table I
    /// accounting: unique weights, so convolutions count kernel parameters).
    pub fn weight_count(&self) -> usize {
        match self {
            Layer::Dense(l) => l.weight.len(),
            Layer::Conv(l) => l.weight.len(),
            Layer::Pool(_) => 0,
            Layer::Recurrent(l) => l.w_in.len() + l.w_rec.len(),
        }
    }

    /// Immutable references to the layer's weight tensors (0, 1 or 2 of
    /// them).
    pub fn weight_tensors(&self) -> Vec<&Tensor> {
        match self {
            Layer::Dense(l) => vec![&l.weight],
            Layer::Conv(l) => vec![&l.weight],
            Layer::Pool(_) => vec![],
            Layer::Recurrent(l) => vec![&l.w_in, &l.w_rec],
        }
    }

    /// Mutable references to the layer's weight tensors.
    pub fn weight_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        match self {
            Layer::Dense(l) => vec![&mut l.weight],
            Layer::Conv(l) => vec![&mut l.weight],
            Layer::Pool(_) => vec![],
            Layer::Recurrent(l) => vec![&mut l.w_in, &mut l.w_rec],
        }
    }

    /// Short kind name for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Dense(_) => "dense",
            Layer::Conv(_) => "conv",
            Layer::Pool(_) => "pool",
            Layer::Recurrent(_) => "recurrent",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_tensor::Shape;

    fn lif() -> LifParams {
        LifParams::default()
    }

    #[test]
    fn dense_layer_reports_features() {
        let l = Layer::Dense(DenseLayer::new(Tensor::zeros(Shape::d2(3, 5)), lif()));
        assert_eq!(l.in_features(), 5);
        assert_eq!(l.out_features(), 3);
        assert_eq!(l.weight_count(), 15);
        assert!(l.is_spiking());
        assert_eq!(l.kind(), "dense");
    }

    #[test]
    fn conv_layer_geometry() {
        let spec = Conv2dSpec::new(2, 16, 5, 1, 2);
        let l =
            Layer::Conv(ConvLayer::new(spec, (32, 32), Tensor::zeros(spec.weight_shape()), lif()));
        assert_eq!(l.in_features(), 2 * 32 * 32);
        assert_eq!(l.out_features(), 16 * 32 * 32);
        assert_eq!(l.weight_count(), 16 * 2 * 25);
        assert_eq!(l.out_shape().dims(), &[16, 32, 32]);
    }

    #[test]
    fn pool_layer_has_no_neurons_or_weights() {
        let l = Layer::Pool(PoolLayer::new(2, (128, 128), 4));
        assert!(!l.is_spiking());
        assert!(l.lif().is_none());
        assert_eq!(l.weight_count(), 0);
        assert_eq!(l.out_features(), 2 * 32 * 32);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn pool_rejects_non_dividing_window() {
        PoolLayer::new(1, (34, 34), 4);
    }

    #[test]
    fn recurrent_layer_counts_both_matrices() {
        let l = Layer::Recurrent(RecurrentLayer::new(
            Tensor::zeros(Shape::d2(8, 20)),
            Tensor::zeros(Shape::d2(8, 8)),
            lif(),
        ));
        assert_eq!(l.in_features(), 20);
        assert_eq!(l.out_features(), 8);
        assert_eq!(l.weight_count(), 8 * 20 + 64);
        assert_eq!(l.weight_tensors().len(), 2);
    }

    #[test]
    #[should_panic(expected = "unit count mismatch")]
    fn recurrent_rejects_mismatched_units() {
        RecurrentLayer::new(Tensor::zeros(Shape::d2(8, 20)), Tensor::zeros(Shape::d2(9, 9)), lif());
    }
}
