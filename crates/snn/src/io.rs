//! Compact binary serialization of trained networks.
//!
//! A test-program development flow needs to hand a *trained* model from
//! the training step to the test-generation and fault-simulation steps
//! (possibly different machines/processes). This module defines a small,
//! versioned, little-endian binary format:
//!
//! ```text
//! magic  b"SNNMTFC1"
//! input shape   : u32 rank, u32 dims…
//! layer count   : u32
//! per layer     : u8 kind (0 dense / 1 conv / 2 pool / 3 recurrent)
//!                 kind-specific geometry, LIF params, raw f32 weights
//! ```
//!
//! The format is self-describing enough to rebuild the exact [`Network`];
//! [`Network::load`] validates the magic, geometry chaining and weight
//! lengths and fails with [`std::io::ErrorKind::InvalidData`] otherwise.

use crate::{ConvLayer, DenseLayer, Layer, LifParams, Network, PoolLayer, RecurrentLayer};
use snn_tensor::{ops::Conv2dSpec, Shape, Tensor};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"SNNMTFC1";

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes a `usize` count/extent as `u32`, failing with `InvalidData`
/// instead of silently truncating when it exceeds the format's 32-bit
/// field width.
fn write_len(w: &mut impl Write, n: usize) -> io::Result<()> {
    let v = u32::try_from(n)
        .map_err(|_| bad(format!("value {n} exceeds the format's u32 field width")))?;
    write_u32(w, v)
}

fn write_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn write_lif(w: &mut impl Write, lif: &LifParams) -> io::Result<()> {
    write_f32(w, lif.threshold)?;
    write_f32(w, lif.leak)?;
    write_u32(w, lif.refrac_steps)
}

fn read_lif(r: &mut impl Read) -> io::Result<LifParams> {
    let lif = LifParams { threshold: read_f32(r)?, leak: read_f32(r)?, refrac_steps: read_u32(r)? };
    lif.validate().map_err(bad)?;
    Ok(lif)
}

fn write_tensor(w: &mut impl Write, t: &Tensor) -> io::Result<()> {
    write_len(w, t.len())?;
    for &v in t.as_slice() {
        write_f32(w, v)?;
    }
    Ok(())
}

fn read_tensor(r: &mut impl Read, shape: Shape) -> io::Result<Tensor> {
    let len = read_u32(r)? as usize;
    if len != shape.len() {
        return Err(bad(format!("weight blob of {len} values does not fit shape {shape}")));
    }
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(read_f32(r)?);
    }
    Tensor::from_vec(shape, data).map_err(|e| bad(e.to_string()))
}

impl Network {
    /// Serializes the network (topology, LIF parameters, weights) into
    /// `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        let dims = self.input_shape().dims();
        write_len(w, dims.len())?;
        for &d in dims {
            write_len(w, d)?;
        }
        write_len(w, self.layers().len())?;
        for layer in self.layers() {
            match layer {
                Layer::Dense(l) => {
                    w.write_all(&[0u8])?;
                    write_len(w, layer.out_features())?;
                    write_len(w, layer.in_features())?;
                    write_lif(w, &l.lif)?;
                    write_tensor(w, &l.weight)?;
                }
                Layer::Conv(l) => {
                    w.write_all(&[1u8])?;
                    write_len(w, l.spec.in_channels)?;
                    write_len(w, l.spec.out_channels)?;
                    write_len(w, l.spec.kernel)?;
                    write_len(w, l.spec.stride)?;
                    write_len(w, l.spec.padding)?;
                    write_len(w, l.in_hw.0)?;
                    write_len(w, l.in_hw.1)?;
                    write_lif(w, &l.lif)?;
                    write_tensor(w, &l.weight)?;
                }
                Layer::Pool(l) => {
                    w.write_all(&[2u8])?;
                    write_len(w, l.channels)?;
                    write_len(w, l.in_hw.0)?;
                    write_len(w, l.in_hw.1)?;
                    write_len(w, l.k)?;
                }
                Layer::Recurrent(l) => {
                    w.write_all(&[3u8])?;
                    write_len(w, layer.out_features())?;
                    write_len(w, layer.in_features())?;
                    write_lif(w, &l.lif)?;
                    write_tensor(w, &l.w_in)?;
                    write_tensor(w, &l.w_rec)?;
                }
            }
        }
        Ok(())
    }

    /// Deserializes a network written by [`Network::save`].
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidData`] on a bad magic,
    /// malformed geometry or truncated weights, and propagates I/O errors.
    pub fn load(r: &mut impl Read) -> io::Result<Network> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not an snn-mtfc model file (bad magic)"));
        }
        let rank = read_u32(r)? as usize;
        if rank > 4 {
            return Err(bad(format!("implausible input rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u32(r)? as usize);
        }
        let input_shape = Shape::new(dims);
        let count = read_u32(r)? as usize;
        if count == 0 || count > 1024 {
            return Err(bad(format!("implausible layer count {count}")));
        }
        let mut layers = Vec::with_capacity(count);
        for _ in 0..count {
            let mut kind = [0u8; 1];
            r.read_exact(&mut kind)?;
            let layer = match kind[0] {
                0 => {
                    let out = read_u32(r)? as usize;
                    let inp = read_u32(r)? as usize;
                    let lif = read_lif(r)?;
                    let weight = read_tensor(r, Shape::d2(out, inp))?;
                    Layer::Dense(DenseLayer::new(weight, lif))
                }
                1 => {
                    let in_c = read_u32(r)? as usize;
                    let out_c = read_u32(r)? as usize;
                    let kernel = read_u32(r)? as usize;
                    let stride = read_u32(r)? as usize;
                    let padding = read_u32(r)? as usize;
                    let h = read_u32(r)? as usize;
                    let w_ = read_u32(r)? as usize;
                    if kernel == 0 || stride == 0 {
                        return Err(bad("conv layer with zero kernel/stride"));
                    }
                    let spec = Conv2dSpec::new(in_c, out_c, kernel, stride, padding);
                    let lif = read_lif(r)?;
                    let weight = read_tensor(r, spec.weight_shape())?;
                    Layer::Conv(ConvLayer::new(spec, (h, w_), weight, lif))
                }
                2 => {
                    let channels = read_u32(r)? as usize;
                    let h = read_u32(r)? as usize;
                    let w_ = read_u32(r)? as usize;
                    let k = read_u32(r)? as usize;
                    if k == 0 || !h.is_multiple_of(k) || !w_.is_multiple_of(k) {
                        return Err(bad("pool layer with invalid window"));
                    }
                    Layer::Pool(PoolLayer::new(channels, (h, w_), k))
                }
                3 => {
                    let units = read_u32(r)? as usize;
                    let inp = read_u32(r)? as usize;
                    let lif = read_lif(r)?;
                    let w_in = read_tensor(r, Shape::d2(units, inp))?;
                    let w_rec = read_tensor(r, Shape::d2(units, units))?;
                    Layer::Recurrent(RecurrentLayer::new(w_in, w_rec, lif))
                }
                k => return Err(bad(format!("unknown layer kind {k}"))),
            };
            layers.push(layer);
        }
        // Network::new asserts geometry chaining; convert the panic into a
        // data error by pre-checking.
        let mut features = input_shape.len();
        for (i, layer) in layers.iter().enumerate() {
            if layer.in_features() != features {
                return Err(bad(format!(
                    "layer {i} expects {} features, stream provides {features}",
                    layer.in_features()
                )));
            }
            features = layer.out_features();
        }
        Ok(Network::new(input_shape, layers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkBuilder, RecordOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn round_trip(net: &Network) -> Network {
        let mut buf = Vec::new();
        net.save(&mut buf).expect("in-memory save cannot fail");
        Network::load(&mut buf.as_slice()).expect("round trip must load")
    }

    #[test]
    fn dense_round_trip_is_identical() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = NetworkBuilder::new(6, LifParams::default()).dense(10).dense(3).build(&mut rng);
        assert_eq!(round_trip(&net), net);
    }

    #[test]
    fn conv_pool_recurrent_round_trip_preserves_behaviour() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = NetworkBuilder::new_spatial(
            2,
            8,
            8,
            LifParams { refrac_steps: 2, ..LifParams::default() },
        )
        .avg_pool(2)
        .conv(4, 3, 1, 1)
        .dense(12)
        .dense(5)
        .build(&mut rng);
        let loaded = round_trip(&net);
        assert_eq!(loaded, net);
        // Behavioural equality, not just structural.
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(15, 128), 0.3);
        let a = net.forward(&input, RecordOptions::spikes_only());
        let b = loaded.forward(&input, RecordOptions::spikes_only());
        assert_eq!(a, b);

        let rec =
            NetworkBuilder::new(7, LifParams::default()).recurrent(9).dense(4).build(&mut rng);
        assert_eq!(round_trip(&rec), rec);
    }

    #[test]
    fn load_rejects_bad_magic() {
        let err = Network::load(&mut &b"NOTAMODELxxxx"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn load_rejects_truncation() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = NetworkBuilder::new(4, LifParams::default()).dense(3).build(&mut rng);
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        for cut in [9, buf.len() / 2, buf.len() - 1] {
            assert!(Network::load(&mut &buf[..cut]).is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn load_rejects_corrupted_geometry() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = NetworkBuilder::new(4, LifParams::default()).dense(3).build(&mut rng);
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        // Corrupt the layer count field (offset: 8 magic + 4 rank + 4 dim).
        buf[16] = 0xFF;
        buf[17] = 0xFF;
        assert!(Network::load(&mut buf.as_slice()).is_err());
    }
}
