//! Optimizers and annealing schedules.
//!
//! The paper optimizes the test input with Adam under an adaptive learning
//! rate and anneals the Gumbel-Softmax temperature; training uses the same
//! machinery on the weights. Both live here.

use serde::{Deserialize, Serialize};
use snn_tensor::Tensor;

/// Annealing schedule for a scalar hyper-parameter (learning rate or
/// Gumbel temperature).
///
/// # Example
///
/// ```
/// use snn_model::optim::Schedule;
///
/// let s = Schedule::Exponential { initial: 0.1, decay: 0.5, min: 0.01 };
/// assert_eq!(s.at(0), 0.1);
/// assert_eq!(s.at(1), 0.05);
/// assert_eq!(s.at(10), 0.01); // floored
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// Constant value.
    Constant(f32),
    /// Multiply by `factor` every `every` steps, floored at `min`.
    Step {
        /// Value at step 0.
        initial: f32,
        /// Multiplicative factor applied every `every` steps.
        factor: f32,
        /// Interval in steps.
        every: usize,
        /// Lower bound.
        min: f32,
    },
    /// `initial · decayˢ`, floored at `min`.
    Exponential {
        /// Value at step 0.
        initial: f32,
        /// Per-step decay multiplier.
        decay: f32,
        /// Lower bound.
        min: f32,
    },
    /// Half-cosine from `initial` down to `min` over `period` steps, then
    /// held at `min`.
    Cosine {
        /// Value at step 0.
        initial: f32,
        /// Final value.
        min: f32,
        /// Number of steps of the descent.
        period: usize,
    },
}

impl Schedule {
    /// Value of the schedule at `step`.
    pub fn at(&self, step: usize) -> f32 {
        match *self {
            Schedule::Constant(v) => v,
            Schedule::Step { initial, factor, every, min } => {
                let k = step.checked_div(every).unwrap_or(0);
                // snn-lint: allow(L-CAST): decay exponents saturate the schedule at `min` long before i32::MAX
                (initial * factor.powi(k as i32)).max(min)
            }
            Schedule::Exponential { initial, decay, min } => {
                // snn-lint: allow(L-CAST): decay exponents saturate the schedule at `min` long before i32::MAX
                (initial * decay.powi(step as i32)).max(min)
            }
            Schedule::Cosine { initial, min, period } => {
                if period == 0 || step >= period {
                    return min;
                }
                // snn-lint: allow(L-CAST): step < period here, and periods are training-run sized, far below 2^24
                let x = step as f32 / period as f32;
                min + 0.5 * (initial - min) * (1.0 + (std::f32::consts::PI * x).cos())
            }
        }
    }
}

/// Adam optimizer state for one parameter tensor.
///
/// # Example
///
/// ```
/// use snn_model::optim::Adam;
/// use snn_tensor::{Shape, Tensor};
///
/// let mut p = Tensor::zeros(Shape::d1(3));
/// let mut adam = Adam::new(p.shape().clone());
/// let g = Tensor::full(Shape::d1(3), 1.0);
/// adam.step(&mut p, &g, 0.1);
/// // a positive gradient moves the parameter down
/// assert!(p.as_slice().iter().all(|&v| v < 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    m: Tensor,
    v: Tensor,
    t: u64,
    /// Exponential decay for the first moment (default 0.9).
    pub beta1: f32,
    /// Exponential decay for the second moment (default 0.999).
    pub beta2: f32,
    /// Numerical-stability constant (default 1e-8).
    pub eps: f32,
}

impl Adam {
    /// Fresh optimizer state for a parameter of the given shape.
    pub fn new(shape: snn_tensor::Shape) -> Self {
        Self {
            m: Tensor::zeros(shape.clone()),
            v: Tensor::zeros(shape),
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// One Adam update of `param` against `grad` with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the state.
    pub fn step(&mut self, param: &mut Tensor, grad: &Tensor, lr: f32) {
        assert_eq!(param.shape(), self.m.shape(), "adam param shape mismatch");
        assert_eq!(grad.shape(), self.m.shape(), "adam grad shape mismatch");
        snn_obs::counter!("snn_model_adam_steps_total", "Adam optimizer updates.").inc();
        self.t += 1;
        let b1 = self.beta1;
        let b2 = self.beta2;
        // snn-lint: allow(L-CAST): bias correction converges to 1.0 long before t overflows i32
        let bc1 = 1.0 - b1.powi(self.t as i32);
        // snn-lint: allow(L-CAST): bias correction converges to 1.0 long before t overflows i32
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let (m, v) = (self.m.as_mut_slice(), self.v.as_mut_slice());
        let p = param.as_mut_slice();
        let g = grad.as_slice();
        for i in 0..p.len() {
            m[i] = b1 * m[i] + (1.0 - b1) * g[i];
            v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            p[i] -= lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Number of updates performed so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use snn_tensor::Shape;

    #[test]
    fn constant_schedule_is_constant() {
        let s = Schedule::Constant(0.3);
        assert_eq!(s.at(0), 0.3);
        assert_eq!(s.at(999), 0.3);
    }

    #[test]
    fn step_schedule_decays_in_stairs() {
        let s = Schedule::Step { initial: 1.0, factor: 0.1, every: 10, min: 1e-3 };
        assert_eq!(s.at(9), 1.0);
        assert!((s.at(10) - 0.1).abs() < 1e-7);
        assert!((s.at(25) - 0.01).abs() < 1e-8);
        assert_eq!(s.at(1000), 1e-3);
    }

    #[test]
    fn cosine_schedule_is_monotone_decreasing() {
        let s = Schedule::Cosine { initial: 1.0, min: 0.1, period: 20 };
        assert_eq!(s.at(0), 1.0);
        let mut prev = f32::INFINITY;
        for step in 0..25 {
            let v = s.at(step);
            assert!(v <= prev + 1e-6);
            prev = v;
        }
        assert_eq!(s.at(20), 0.1);
        assert_eq!(s.at(100), 0.1);
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        // minimize f(x) = (x - 3)², gradient 2(x-3)
        let mut x = Tensor::zeros(Shape::d1(1));
        let mut adam = Adam::new(Shape::d1(1));
        for _ in 0..500 {
            let g = Tensor::from_vec(Shape::d1(1), vec![2.0 * (x[0] - 3.0)]).unwrap();
            adam.step(&mut x, &g, 0.05);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x={}", x[0]);
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // Bias correction makes the very first step ≈ lr regardless of
        // gradient magnitude.
        for scale in [0.01f32, 1.0, 100.0] {
            let mut x = Tensor::zeros(Shape::d1(1));
            let mut adam = Adam::new(Shape::d1(1));
            let g = Tensor::from_vec(Shape::d1(1), vec![scale]).unwrap();
            adam.step(&mut x, &g, 0.1);
            assert!((x[0] + 0.1).abs() < 1e-3, "scale {scale}: x={}", x[0]);
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn adam_rejects_wrong_shape() {
        let mut x = Tensor::zeros(Shape::d1(2));
        let mut adam = Adam::new(Shape::d1(3));
        let g = Tensor::zeros(Shape::d1(2));
        adam.step(&mut x, &g, 0.1);
    }
}
