use snn_tensor::{Shape, Tensor};

/// A procedurally generated spiking dataset.
///
/// Samples are produced deterministically from `(dataset seed, index)`;
/// implementations hold no sample storage. Index ranges conventionally
/// split into train/test by the caller (e.g. the first 80% for training).
pub trait SpikeDataset {
    /// Number of samples the dataset exposes.
    fn len(&self) -> usize;

    /// `true` if the dataset is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of classes.
    fn classes(&self) -> usize;

    /// Per-tick input shape (e.g. `[2×34×34]`).
    fn input_shape(&self) -> Shape;

    /// Nominal sample duration in simulation ticks — the unit of the
    /// paper's "test duration (samples)" metric.
    fn steps(&self) -> usize;

    /// Generates sample `idx`: a binary `[steps × features]` spike tensor
    /// and its class label.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    fn sample(&self, idx: usize) -> (Tensor, usize);
}

/// Materializes samples `range` of `ds` into memory as `(input, label)`
/// pairs.
///
/// # Panics
///
/// Panics if the range exceeds the dataset length.
pub fn materialize<D: SpikeDataset + ?Sized>(
    ds: &D,
    range: std::ops::Range<usize>,
) -> Vec<(Tensor, usize)> {
    range.map(|i| ds.sample(i)).collect()
}

/// Materializes the inputs only (labels dropped) — what detection
/// campaigns and criticality labelling consume.
///
/// # Panics
///
/// Panics if the range exceeds the dataset length.
pub fn materialize_inputs<D: SpikeDataset + ?Sized>(
    ds: &D,
    range: std::ops::Range<usize>,
) -> Vec<Tensor> {
    range.map(|i| ds.sample(i).0).collect()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;

    /// Minimal in-test dataset: one spike at (idx mod features).
    struct OneHot {
        n: usize,
        features: usize,
    }

    impl SpikeDataset for OneHot {
        fn len(&self) -> usize {
            self.n
        }
        fn classes(&self) -> usize {
            self.features
        }
        fn input_shape(&self) -> Shape {
            Shape::d1(self.features)
        }
        fn steps(&self) -> usize {
            1
        }
        fn sample(&self, idx: usize) -> (Tensor, usize) {
            assert!(idx < self.n);
            let mut t = Tensor::zeros(Shape::d2(1, self.features));
            let label = idx % self.features;
            t[[0, label]] = 1.0;
            (t, label)
        }
    }

    #[test]
    fn materialize_respects_range() {
        let ds = OneHot { n: 10, features: 3 };
        let v = materialize(&ds, 2..5);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].1, 2);
        assert_eq!(v[2].1, 4 % 3);
    }

    #[test]
    fn materialize_inputs_drops_labels() {
        let ds = OneHot { n: 4, features: 2 };
        let v = materialize_inputs(&ds, 0..4);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|t| t.sum() == 1.0));
    }

    #[test]
    fn is_empty_default() {
        let ds = OneHot { n: 0, features: 2 };
        assert!(ds.is_empty());
    }
}
