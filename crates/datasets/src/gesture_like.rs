use crate::{events_to_tensor, Event, SpikeDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_tensor::{Shape, Tensor};
use std::f32::consts::PI;

/// The 11 gesture classes, mirroring the IBM DVS128 Gesture label set
/// structure (hand/arm motions under varying conditions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Motion {
    SwipeRight,
    SwipeLeft,
    SwipeDown,
    SwipeUp,
    CircleCw,
    CircleCcw,
    WaveHorizontal,
    WaveVertical,
    DiagonalDown,
    DiagonalUp,
    RollExpand,
}

const MOTIONS: [Motion; 11] = [
    Motion::SwipeRight,
    Motion::SwipeLeft,
    Motion::SwipeDown,
    Motion::SwipeUp,
    Motion::CircleCw,
    Motion::CircleCcw,
    Motion::WaveHorizontal,
    Motion::WaveVertical,
    Motion::DiagonalDown,
    Motion::DiagonalUp,
    Motion::RollExpand,
];

/// Synthetic IBM-DVS128-Gesture: 11 parametric motion patterns rendered
/// through a simulated DVS.
///
/// A bright blob (the "hand") follows a class-specific trajectory; frame
/// differencing emits ON events on the leading edge and OFF events on the
/// trailing edge. Per-sample randomness varies the blob size, speed phase
/// and trajectory amplitude — the analogue of the dataset's 29 subjects
/// and 3 lighting conditions.
///
/// # Example
///
/// ```
/// use snn_datasets::{GestureLike, SpikeDataset};
///
/// let ds = GestureLike::repro(0);
/// assert_eq!(ds.classes(), 11);
/// let (t, label) = ds.sample(4);
/// assert_eq!(label, 4);
/// assert!(t.is_binary());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GestureLike {
    side: usize,
    steps: usize,
    samples: usize,
    seed: u64,
    noise: f32,
}

impl GestureLike {
    /// Paper-scale geometry: 2×128×128, 145 ticks (1.45 s at 10 ms/tick).
    pub fn paper(seed: u64) -> Self {
        Self::new(128, 145, 1_341, seed)
    }

    /// Repro-scale geometry: 2×32×32, 60 ticks.
    pub fn repro(seed: u64) -> Self {
        Self::new(32, 60, 1_100, seed)
    }

    /// Custom geometry.
    ///
    /// # Panics
    ///
    /// Panics if `side < 16` or `steps < 10`.
    pub fn new(side: usize, steps: usize, samples: usize, seed: u64) -> Self {
        assert!(side >= 16, "sensor side must be at least 16 pixels");
        assert!(steps >= 10, "sample needs at least 10 ticks");
        Self { side, steps, samples, seed, noise: 0.0005 }
    }

    /// Sets the background noise event rate.
    pub fn with_noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    /// Blob centre at normalized phase `f ∈ [0, 1]` for `motion`, in
    /// normalized `[0, 1]²` coordinates. `amp` jitters the trajectory
    /// amplitude, `wob` its secondary axis.
    fn center(motion: Motion, f: f32, amp: f32, wob: f32) -> (f32, f32) {
        match motion {
            Motion::SwipeRight => (0.1 + 0.8 * f, 0.5 + wob * 0.1),
            Motion::SwipeLeft => (0.9 - 0.8 * f, 0.5 - wob * 0.1),
            Motion::SwipeDown => (0.5 + wob * 0.1, 0.1 + 0.8 * f),
            Motion::SwipeUp => (0.5 - wob * 0.1, 0.9 - 0.8 * f),
            Motion::CircleCw => {
                (0.5 + amp * (2.0 * PI * f).cos(), 0.5 + amp * (2.0 * PI * f).sin())
            }
            Motion::CircleCcw => {
                (0.5 + amp * (2.0 * PI * f).cos(), 0.5 - amp * (2.0 * PI * f).sin())
            }
            Motion::WaveHorizontal => (0.1 + 0.8 * f, 0.5 + amp * (6.0 * PI * f).sin()),
            Motion::WaveVertical => (0.5 + amp * (6.0 * PI * f).sin(), 0.1 + 0.8 * f),
            Motion::DiagonalDown => (0.1 + 0.8 * f, 0.1 + 0.8 * f),
            Motion::DiagonalUp => (0.1 + 0.8 * f, 0.9 - 0.8 * f),
            Motion::RollExpand => {
                // stationary centre; radius handled separately
                (0.5, 0.5)
            }
        }
    }
}

impl SpikeDataset for GestureLike {
    fn len(&self) -> usize {
        self.samples
    }

    fn classes(&self) -> usize {
        11
    }

    fn input_shape(&self) -> Shape {
        Shape::d3(2, self.side, self.side)
    }

    fn steps(&self) -> usize {
        self.steps
    }

    fn sample(&self, idx: usize) -> (Tensor, usize) {
        assert!(idx < self.samples, "sample index {idx} out of range");
        let label = idx % 11;
        let motion = MOTIONS[label];
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (idx as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let side = self.side as f32;
        let base_radius = rng.gen_range(0.08f32..0.14) * side;
        let amp = rng.gen_range(0.2..0.3);
        let wob = rng.gen_range(-1.0..1.0f32);

        let mut events = Vec::new();
        let mut prev = vec![false; self.side * self.side];
        let mut frame = vec![false; self.side * self.side];
        for t in 0..self.steps {
            let f = t as f32 / self.steps as f32;
            let (cx, cy) = Self::center(motion, f, amp, wob);
            let radius = if motion == Motion::RollExpand {
                // oscillating ring radius: expand / contract twice
                base_radius * (1.0 + 1.2 * (4.0 * PI * f).sin().abs())
            } else {
                base_radius
            };
            let (cx, cy) = (cx * side, cy * side);
            for y in 0..self.side {
                for x in 0..self.side {
                    let dx = x as f32 - cx;
                    let dy = y as f32 - cy;
                    frame[y * self.side + x] = dx * dx + dy * dy <= radius * radius;
                }
            }
            for (i, (&now, &before)) in frame.iter().zip(prev.iter()).enumerate() {
                let (x, y) = ((i % self.side) as u16, (i / self.side) as u16);
                if now && !before {
                    events.push(Event { x, y, channel: 0, t: t as u32 });
                } else if !now && before {
                    events.push(Event { x, y, channel: 1, t: t as u32 });
                }
                if self.noise > 0.0 && rng.gen::<f32>() < self.noise {
                    events.push(Event { x, y, channel: rng.gen_range(0..2), t: t as u32 });
                }
            }
            prev.copy_from_slice(&frame);
        }
        (events_to_tensor(&events, 2, self.side, self.side, self.steps), label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_balanced_classes() {
        let ds = GestureLike::repro(0);
        for idx in 0..22 {
            assert_eq!(ds.sample(idx).1, idx % 11);
        }
    }

    #[test]
    fn deterministic_per_seed_and_index() {
        assert_eq!(GestureLike::repro(9).sample(3), GestureLike::repro(9).sample(3));
        assert_ne!(GestureLike::repro(9).sample(3).0, GestureLike::repro(10).sample(3).0);
    }

    #[test]
    fn within_class_variation_exists() {
        let ds = GestureLike::repro(1);
        // samples 0 and 11 are both class 0 but differ by subject jitter
        assert_ne!(ds.sample(0).0, ds.sample(11).0);
        assert_eq!(ds.sample(0).1, ds.sample(11).1);
    }

    #[test]
    fn motion_generates_events_every_class() {
        let ds = GestureLike::repro(2).with_noise(0.0);
        for class in 0..11 {
            let (t, _) = ds.sample(class);
            assert!(t.sum() > 10.0, "class {class} generated almost no events");
        }
    }

    #[test]
    fn events_are_sparse() {
        let ds = GestureLike::repro(3);
        let (t, _) = ds.sample(6);
        let density = t.sum() / t.len() as f32;
        assert!(density < 0.25, "density {density}");
    }

    #[test]
    fn paper_scale_geometry() {
        let ds = GestureLike::paper(0);
        assert_eq!(ds.input_shape().dims(), &[2, 128, 128]);
        assert_eq!(ds.steps(), 145);
    }
}
