use crate::{events_to_tensor, Event, SpikeDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_tensor::{Shape, Tensor};

/// Synthetic Spiking Heidelberg Digits: 20 spoken-digit classes
/// (10 digits × 2 languages) as formant-sweep spike patterns over a bank
/// of frequency channels.
///
/// Each digit is characterized by two formant trajectories (start/end
/// positions in the channel bank derived from the digit index); the second
/// "language" shifts the formant bank upward and time-compresses the
/// utterance — a caricature of German vs English vowel spaces that keeps
/// the 20 classes mutually separable. Channels near a formant fire with a
/// Gaussian-profiled Bernoulli rate, like the cochlear model used to build
/// the real SHD.
///
/// # Example
///
/// ```
/// use snn_datasets::{ShdLike, SpikeDataset};
///
/// let ds = ShdLike::repro(0);
/// assert_eq!(ds.classes(), 20);
/// let (t, label) = ds.sample(13);
/// assert_eq!(label, 13);
/// assert!(t.is_binary());
/// assert_eq!(t.shape().dim(1), ds.input_shape().len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShdLike {
    channels: usize,
    steps: usize,
    samples: usize,
    seed: u64,
    /// Peak firing probability at the formant centre.
    peak_rate: f32,
    /// Gaussian width of a formant in channels.
    sigma: f32,
}

impl ShdLike {
    /// Paper-scale geometry: 700 channels, 100 ticks (1 s at 10 ms/tick).
    pub fn paper(seed: u64) -> Self {
        Self::new(700, 100, 10_420, seed)
    }

    /// Repro-scale geometry: 140 channels, 50 ticks.
    pub fn repro(seed: u64) -> Self {
        Self::new(140, 50, 2_000, seed)
    }

    /// Custom geometry.
    ///
    /// # Panics
    ///
    /// Panics if `channels < 20` or `steps < 10`.
    pub fn new(channels: usize, steps: usize, samples: usize, seed: u64) -> Self {
        assert!(channels >= 20, "need at least 20 frequency channels");
        assert!(steps >= 10, "sample needs at least 10 ticks");
        Self { channels, steps, samples, seed, peak_rate: 0.7, sigma: channels as f32 / 45.0 }
    }

    /// Formant trajectories (two per digit) in normalized channel
    /// coordinates, for `digit ∈ 0..10` and `language ∈ {0, 1}`.
    fn formants(digit: usize, language: usize) -> [(f32, f32); 2] {
        // Distinct start→end pairs per digit, spread over the bank.
        let d = digit as f32;
        let f1 = (0.08 + 0.06 * d, 0.10 + 0.05 * ((d * 3.0) % 7.0));
        let f2 = (0.92 - 0.05 * d, 0.55 + 0.04 * ((d * 5.0) % 8.0));
        let shift = if language == 0 { 0.0 } else { 0.13 };
        [(f1.0 * 0.8 + shift, f1.1 * 0.8 + shift), (f2.0 * 0.8 + shift, f2.1 * 0.8 + shift)]
    }
}

impl SpikeDataset for ShdLike {
    fn len(&self) -> usize {
        self.samples
    }

    fn classes(&self) -> usize {
        20
    }

    fn input_shape(&self) -> Shape {
        Shape::d1(self.channels)
    }

    fn steps(&self) -> usize {
        self.steps
    }

    fn sample(&self, idx: usize) -> (Tensor, usize) {
        assert!(idx < self.samples, "sample index {idx} out of range");
        let label = idx % 20;
        let (digit, language) = (label % 10, label / 10);
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (idx as u64).wrapping_mul(0xA076_1D64_78BD_642F));

        // Language 1 utterances are ~20% shorter (time-compressed).
        let active_steps =
            if language == 0 { self.steps } else { (self.steps as f32 * 0.8) as usize };
        let speaker_shift: f32 = rng.gen_range(-0.02..0.02);
        let tempo: f32 = rng.gen_range(0.9..1.1);

        let mut events = Vec::new();
        let formants = Self::formants(digit, language);
        for t in 0..active_steps {
            let f = ((t as f32 * tempo) / active_steps as f32).min(1.0);
            for &(start, end) in &formants {
                let centre = ((start + (end - start) * f + speaker_shift) * self.channels as f32)
                    .clamp(0.0, (self.channels - 1) as f32);
                let lo = (centre - 3.0 * self.sigma).max(0.0) as usize;
                let hi = ((centre + 3.0 * self.sigma) as usize).min(self.channels - 1);
                for ch in lo..=hi {
                    let d = (ch as f32 - centre) / self.sigma;
                    let p = self.peak_rate * (-0.5 * d * d).exp();
                    if rng.gen::<f32>() < p {
                        events.push(Event { x: ch as u16, y: 0, channel: 0, t: t as u32 });
                    }
                }
            }
        }
        // Rasterize as a 1-channel, 1-row, `channels`-wide volume, then
        // flatten: feature index == frequency channel.
        (events_to_tensor(&events, 1, 1, self.channels, self.steps), label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_balanced_classes() {
        let ds = ShdLike::repro(0);
        for idx in 0..40 {
            assert_eq!(ds.sample(idx).1, idx % 20);
        }
    }

    #[test]
    fn deterministic_generation() {
        assert_eq!(ShdLike::repro(3).sample(8), ShdLike::repro(3).sample(8));
        assert_ne!(ShdLike::repro(3).sample(8).0, ShdLike::repro(4).sample(8).0);
    }

    #[test]
    fn language_compresses_duration() {
        let ds = ShdLike::repro(1);
        // class 3 (language 0) vs class 13 (language 1, same digit)
        let (german, _) = ds.sample(3);
        let (english, _) = ds.sample(13);
        let last_active = |t: &Tensor| {
            let dims = t.shape().dims();
            let (steps, ch) = (dims[0], dims[1]);
            (0..steps)
                .rev()
                .find(|&s| t.as_slice()[s * ch..(s + 1) * ch].iter().any(|&v| v > 0.0))
                .unwrap_or(0)
        };
        assert!(last_active(&english) < last_active(&german));
    }

    #[test]
    fn spikes_track_formant_centres() {
        let ds = ShdLike::repro(2);
        let (t, _) = ds.sample(0);
        // average channel of spikes in the first few ticks should be near
        // the digit-0 formant starts, i.e. not uniform across the bank
        let dims = t.shape().dims();
        let ch = dims[1];
        let mut sum = 0.0f32;
        let mut count = 0.0f32;
        for step in 0..5 {
            for c in 0..ch {
                if t.as_slice()[step * ch + c] > 0.0 {
                    sum += c as f32;
                    count += 1.0;
                }
            }
        }
        assert!(count > 0.0);
        let mean = sum / count / ch as f32;
        // digit-0 formants start near 0.064 and 0.736 (scaled by 0.8)
        assert!(mean > 0.1 && mean < 0.7, "mean normalized channel {mean}");
    }

    #[test]
    fn all_classes_produce_activity() {
        let ds = ShdLike::repro(5);
        for class in 0..20 {
            assert!(ds.sample(class).0.sum() > 20.0, "class {class} silent");
        }
    }

    #[test]
    fn paper_scale_geometry() {
        let ds = ShdLike::paper(0);
        assert_eq!(ds.input_shape().dims(), &[700]);
        assert_eq!(ds.steps(), 100);
        assert_eq!(ds.classes(), 20);
    }
}
