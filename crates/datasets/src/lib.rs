//! Synthetic event-stream datasets standing in for NMNIST, IBM DVS128
//! Gesture and Spiking Heidelberg Digits (SHD).
//!
//! The paper trains and evaluates on three real neuromorphic datasets.
//! Those datasets are not redistributable here, and — importantly for the
//! reproduction — the proposed test-generation algorithm never inspects
//! dataset *content*: samples only matter for (a) training the benchmark
//! SNNs, (b) labelling faults critical/benign, (c) defining the
//! sample-length unit of "test duration (samples)", and (d) the
//! dataset-driven baselines. The generators in this crate therefore
//! produce *procedural* event streams with the same input geometry, class
//! counts and temporal structure as the originals:
//!
//! * [`NmnistLike`] — digit glyphs observed by a simulated DVS performing
//!   the three-saccade motion of the NMNIST recording rig (2 polarity
//!   channels, 34×34 pixels, 10 classes).
//! * [`GestureLike`] — 11 parametric hand/arm motion patterns (swipes,
//!   rotations, waves) rendered to ON/OFF events (2×128×128 at paper
//!   scale).
//! * [`ShdLike`] — 20 spoken-digit classes (10 digits × 2 languages) as
//!   formant-sweep spike patterns over 700 frequency channels.
//!
//! Every sample is generated deterministically from `(dataset seed, index)`
//! so datasets need no storage and experiments are exactly reproducible.
//!
//! # Example
//!
//! ```
//! use snn_datasets::{NmnistLike, SpikeDataset};
//!
//! let ds = NmnistLike::repro(42);
//! let (input, label) = ds.sample(0);
//! assert_eq!(input.shape().dim(0), ds.steps());
//! assert_eq!(input.shape().dim(1), ds.input_shape().len());
//! assert!(label < ds.classes());
//! assert!(input.is_binary());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod event;
mod gesture_like;
mod nmnist_like;
mod shd_like;

pub mod encoding;

pub use dataset::{materialize, materialize_inputs, SpikeDataset};
pub use event::{events_to_tensor, Event};
pub use gesture_like::GestureLike;
pub use nmnist_like::NmnistLike;
pub use shd_like::ShdLike;
