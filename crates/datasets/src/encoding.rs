//! Information-coding utilities: rate coding and time-to-first-spike
//! coding.
//!
//! The paper's algorithm is explicitly coding-agnostic (Section I); these
//! encoders let tests and examples exercise both schemes on arbitrary
//! real-valued feature vectors.

use rand::Rng;
use snn_tensor::{Shape, Tensor};

/// Rate coding: feature `v ∈ [0, 1]` spikes each tick with probability
/// `v`, over `steps` ticks.
///
/// # Panics
///
/// Panics if any value is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_datasets::encoding::rate_encode;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let t = rate_encode(&mut rng, &[0.0, 1.0], 50);
/// assert_eq!(t.shape().dims(), &[50, 2]);
/// assert_eq!(t.as_slice().iter().step_by(2).sum::<f32>(), 0.0); // v = 0 never fires
/// ```
pub fn rate_encode(rng: &mut impl Rng, values: &[f32], steps: usize) -> Tensor {
    assert!(values.iter().all(|v| (0.0..=1.0).contains(v)), "rate coding expects values in [0, 1]");
    let n = values.len();
    let mut out = Tensor::zeros(Shape::d2(steps, n));
    let data = out.as_mut_slice();
    for t in 0..steps {
        for (i, &v) in values.iter().enumerate() {
            if rng.gen::<f32>() < v {
                data[t * n + i] = 1.0;
            }
        }
    }
    out
}

/// Time-to-first-spike coding: feature `v ∈ [0, 1]` emits exactly one
/// spike at tick `round((1 − v)·(steps − 1))` — stronger features fire
/// earlier. Features equal to 0 stay silent.
///
/// # Panics
///
/// Panics if any value is outside `[0, 1]` or `steps == 0`.
pub fn ttfs_encode(values: &[f32], steps: usize) -> Tensor {
    assert!(steps > 0, "ttfs coding needs at least one tick");
    assert!(values.iter().all(|v| (0.0..=1.0).contains(v)), "ttfs coding expects values in [0, 1]");
    let n = values.len();
    let mut out = Tensor::zeros(Shape::d2(steps, n));
    for (i, &v) in values.iter().enumerate() {
        if v <= 0.0 {
            continue;
        }
        let t = ((1.0 - v) * (steps - 1) as f32).round() as usize;
        *out.at_mut(&[t, i]) = 1.0;
    }
    out
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rate_matches_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = rate_encode(&mut rng, &[0.25], 10_000);
        let rate = t.sum() / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn rate_rejects_out_of_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rate_encode(&mut rng, &[1.5], 10);
    }

    #[test]
    fn ttfs_orders_by_strength() {
        let t = ttfs_encode(&[1.0, 0.5, 0.1], 11);
        // strongest fires first
        assert_eq!(t[[0, 0]], 1.0);
        assert_eq!(t[[5, 1]], 1.0);
        assert_eq!(t[[9, 2]], 1.0);
        assert_eq!(t.sum(), 3.0);
    }

    #[test]
    fn ttfs_silences_zero_features() {
        let t = ttfs_encode(&[0.0, 0.0], 5);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn ttfs_is_one_spike_per_active_feature() {
        let t = ttfs_encode(&[0.3, 0.9, 0.0, 0.6], 20);
        assert_eq!(t.sum(), 3.0);
        assert!(t.is_binary());
    }
}
