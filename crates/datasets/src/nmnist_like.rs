use crate::{events_to_tensor, Event, SpikeDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_tensor::{Shape, Tensor};

/// 5×7 glyph bitmaps for the digits 0–9 (one `u64` per digit, row-major,
/// bit 34 = top-left).
const DIGIT_GLYPHS: [u64; 10] = [
    0b01110_10001_10011_10101_11001_10001_01110, // 0
    0b00100_01100_00100_00100_00100_00100_01110, // 1
    0b01110_10001_00001_00010_00100_01000_11111, // 2
    0b11111_00010_00100_00010_00001_10001_01110, // 3
    0b00010_00110_01010_10010_11111_00010_00010, // 4
    0b11111_10000_11110_00001_00001_10001_01110, // 5
    0b00110_01000_10000_11110_10001_10001_01110, // 6
    0b11111_00001_00010_00100_01000_01000_01000, // 7
    0b01110_10001_10001_01110_10001_10001_01110, // 8
    0b01110_10001_10001_01111_00001_00010_01100, // 9
];

/// Synthetic NMNIST: digit glyphs observed through the three-saccade
/// camera motion of the original recording rig.
///
/// Each sample renders one digit glyph (scaled to the sensor), moves it
/// along a triangular saccade path, and emits ON events (channel 0) where
/// a pixel lights up and OFF events (channel 1) where it darkens —
/// exactly the change-detection behaviour of a DVS. A small Poisson
/// background models sensor noise.
///
/// # Example
///
/// ```
/// use snn_datasets::{NmnistLike, SpikeDataset};
///
/// let ds = NmnistLike::repro(7);
/// let (a, label_a) = ds.sample(3);
/// let (b, _) = ds.sample(3);
/// assert_eq!(a, b); // procedural generation is deterministic
/// assert_eq!(label_a, 3 % 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NmnistLike {
    side: usize,
    steps: usize,
    samples: usize,
    seed: u64,
    /// Per-pixel-per-tick background event probability.
    noise: f32,
}

impl NmnistLike {
    /// Paper-scale geometry: 2×34×34, 300 ticks (300 ms at 1 ms/tick).
    pub fn paper(seed: u64) -> Self {
        Self::new(34, 300, 70_000, seed)
    }

    /// Repro-scale geometry: 2×17×17, 60 ticks — small enough to train and
    /// fault-simulate in seconds on a CPU.
    pub fn repro(seed: u64) -> Self {
        Self::new(17, 60, 2_000, seed)
    }

    /// Custom geometry: square `side`, `steps` ticks, `samples` samples.
    ///
    /// # Panics
    ///
    /// Panics if `side < 9` (the glyph plus motion does not fit) or
    /// `steps < 6`.
    pub fn new(side: usize, steps: usize, samples: usize, seed: u64) -> Self {
        assert!(side >= 9, "sensor side must be at least 9 pixels");
        assert!(steps >= 6, "sample needs at least 6 ticks");
        Self { side, steps, samples, seed, noise: 0.0005 }
    }

    /// Sets the background noise event rate (events per pixel per tick).
    pub fn with_noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    fn glyph_pixel(digit: usize, gx: isize, gy: isize) -> bool {
        if !(0..5).contains(&gx) || !(0..7).contains(&gy) {
            return false;
        }
        let bit = (6 - gy) * 5 + (4 - gx);
        DIGIT_GLYPHS[digit] >> bit & 1 == 1
    }

    /// Renders the digit at sub-pixel offset `(ox, oy)` with integer scale
    /// `scale` into a frame buffer.
    fn render(&self, digit: usize, ox: f32, oy: f32, scale: usize, frame: &mut [bool]) {
        frame.iter_mut().for_each(|p| *p = false);
        let side = self.side as isize;
        for y in 0..side {
            for x in 0..side {
                let gx = ((x as f32 - ox) / scale as f32).floor() as isize;
                let gy = ((y as f32 - oy) / scale as f32).floor() as isize;
                if Self::glyph_pixel(digit, gx, gy) {
                    frame[(y * side + x) as usize] = true;
                }
            }
        }
    }
}

impl SpikeDataset for NmnistLike {
    fn len(&self) -> usize {
        self.samples
    }

    fn classes(&self) -> usize {
        10
    }

    fn input_shape(&self) -> Shape {
        Shape::d3(2, self.side, self.side)
    }

    fn steps(&self) -> usize {
        self.steps
    }

    fn sample(&self, idx: usize) -> (Tensor, usize) {
        assert!(idx < self.samples, "sample index {idx} out of range");
        let digit = idx % 10;
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));

        let scale = ((self.side as f32) / 10.0).max(1.0) as usize;
        let extent = (5 * scale) as f32;
        let margin = (self.side as f32 - extent).max(1.0);
        // Triangle saccade between *fixed* anchor points: the NMNIST rig
        // moved the camera along the same three saccades for every sample,
        // so only a small per-sample jitter (mounting tolerance) is random
        // — digit identity, not motion, carries the class information.
        let jx: f32 = rng.gen_range(-1.0..1.0);
        let jy: f32 = rng.gen_range(-1.0..1.0);
        let p0 = (margin * 0.15 + jx, margin * 0.10 + jy);
        let p1 = (p0.0 + margin * 0.35, p0.1 + margin * 0.25);
        let p2 = (p0.0 + margin * 0.15, p0.1 + margin * 0.5);
        let waypoints = [p0, p1, p2, p0];

        let mut events = Vec::new();
        let mut prev = vec![false; self.side * self.side];
        let mut frame = vec![false; self.side * self.side];
        for t in 0..self.steps {
            let phase = t as f32 / self.steps as f32 * 3.0;
            let seg = (phase as usize).min(2);
            let f = phase - seg as f32;
            let (ax, ay) = waypoints[seg];
            let (bx, by) = waypoints[seg + 1];
            let ox = ax + (bx - ax) * f;
            let oy = ay + (by - ay) * f;
            self.render(digit, ox, oy, scale, &mut frame);
            for (i, (&now, &before)) in frame.iter().zip(prev.iter()).enumerate() {
                let (x, y) = ((i % self.side) as u16, (i / self.side) as u16);
                if now && !before {
                    events.push(Event { x, y, channel: 0, t: t as u32 });
                } else if !now && before {
                    events.push(Event { x, y, channel: 1, t: t as u32 });
                }
                if self.noise > 0.0 && rng.gen::<f32>() < self.noise {
                    events.push(Event { x, y, channel: rng.gen_range(0..2), t: t as u32 });
                }
            }
            prev.copy_from_slice(&frame);
        }
        (events_to_tensor(&events, 2, self.side, self.side, self.steps), digit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_binary_and_correctly_shaped() {
        let ds = NmnistLike::repro(1);
        let (t, label) = ds.sample(12);
        assert_eq!(t.shape().dims(), &[ds.steps(), 2 * 17 * 17]);
        assert!(t.is_binary());
        assert_eq!(label, 2);
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = NmnistLike::repro(1).sample(5).0;
        let b = NmnistLike::repro(1).sample(5).0;
        let c = NmnistLike::repro(2).sample(5).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn motion_produces_events_on_both_polarities() {
        let ds = NmnistLike::repro(3).with_noise(0.0);
        let (t, _) = ds.sample(0);
        let features = 2 * 17 * 17;
        let half = 17 * 17;
        let mut on = 0.0;
        let mut off = 0.0;
        for step in 0..ds.steps() {
            for i in 0..half {
                on += t.as_slice()[step * features + i];
                off += t.as_slice()[step * features + half + i];
            }
        }
        assert!(on > 0.0, "no ON events generated");
        assert!(off > 0.0, "no OFF events generated");
        // Saccade motion conserves glyph area, so ON ≈ OFF over the run.
        let ratio = on / off;
        assert!((0.4..2.5).contains(&ratio), "ON/OFF ratio {ratio}");
    }

    #[test]
    fn different_digits_produce_different_streams() {
        let ds = NmnistLike::repro(4).with_noise(0.0);
        let (zero, _) = ds.sample(0); // digit 0
        let (one, _) = ds.sample(1); // digit 1
        assert_ne!(zero, one);
    }

    #[test]
    fn event_rate_is_sparse() {
        let ds = NmnistLike::repro(5);
        let (t, _) = ds.sample(7);
        let density = t.sum() / t.len() as f32;
        assert!(density < 0.2, "event density {density} too high for DVS data");
        assert!(density > 0.0005, "event density {density} suspiciously low");
    }

    #[test]
    fn glyph_bitmaps_are_plausible() {
        // every digit glyph has between 10 and 25 lit pixels of 35
        for d in 0..10 {
            let lit = (0..7)
                .flat_map(|y| (0..5).map(move |x| (x, y)))
                .filter(|&(x, y)| NmnistLike::glyph_pixel(d, x, y))
                .count();
            assert!((10..=25).contains(&lit), "digit {d} has {lit} lit pixels");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sample_bounds_checked() {
        let ds = NmnistLike::new(17, 20, 10, 0);
        let _ = ds.sample(10);
    }

    #[test]
    fn paper_scale_geometry() {
        let ds = NmnistLike::paper(0);
        assert_eq!(ds.input_shape().dims(), &[2, 34, 34]);
        assert_eq!(ds.steps(), 300);
        assert_eq!(ds.classes(), 10);
    }
}
