use serde::{Deserialize, Serialize};
use snn_tensor::{Shape, Tensor};

/// One address-event: a spike at spatial location `(x, y)` on `channel`
/// (polarity for DVS data, frequency bin for audio) at tick `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    /// Horizontal pixel coordinate (0 for 1-D channel data).
    pub x: u16,
    /// Vertical pixel coordinate (0 for 1-D channel data).
    pub y: u16,
    /// Channel: DVS polarity (0 = ON, 1 = OFF) or audio frequency bin.
    pub channel: u16,
    /// Simulation tick.
    pub t: u32,
}

/// Rasterizes an event list into the dense `[T × (c·h·w)]` spike tensor
/// the simulator consumes. Events outside the volume are ignored;
/// duplicate events collapse to a single spike.
///
/// # Example
///
/// ```
/// use snn_datasets::{events_to_tensor, Event};
///
/// let events = [Event { x: 1, y: 0, channel: 0, t: 2 }];
/// let t = events_to_tensor(&events, 2, 2, 2, 4);
/// assert_eq!(t.shape().dims(), &[4, 8]);
/// assert_eq!(t.sum(), 1.0);
/// // channel-major layout within a tick: offset = (c*h + y)*w + x
/// assert_eq!(t[[2usize, 1usize]], 1.0);
/// ```
pub fn events_to_tensor(events: &[Event], c: usize, h: usize, w: usize, steps: usize) -> Tensor {
    let features = c * h * w;
    let mut out = Tensor::zeros(Shape::d2(steps, features));
    let data = out.as_mut_slice();
    for e in events {
        let (x, y, ch, t) = (e.x as usize, e.y as usize, e.channel as usize, e.t as usize);
        if x >= w || y >= h || ch >= c || t >= steps {
            continue;
        }
        data[t * features + (ch * h + y) * w + x] = 1.0;
    }
    out
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;

    #[test]
    fn out_of_volume_events_are_dropped() {
        let events = [
            Event { x: 9, y: 0, channel: 0, t: 0 },
            Event { x: 0, y: 9, channel: 0, t: 0 },
            Event { x: 0, y: 0, channel: 9, t: 0 },
            Event { x: 0, y: 0, channel: 0, t: 9 },
        ];
        let t = events_to_tensor(&events, 2, 3, 3, 4);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn duplicates_collapse_to_one_spike() {
        let e = Event { x: 0, y: 0, channel: 0, t: 0 };
        let t = events_to_tensor(&[e, e, e], 1, 1, 1, 1);
        assert_eq!(t.sum(), 1.0);
        assert!(t.is_binary());
    }

    #[test]
    fn layout_is_channel_major_row_major() {
        let e = Event { x: 2, y: 1, channel: 1, t: 0 };
        let t = events_to_tensor(&[e], 2, 3, 4, 1);
        // offset = (1*3 + 1)*4 + 2 = 18
        assert_eq!(t[18], 1.0);
    }
}
