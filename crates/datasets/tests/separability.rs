//! Class-separability checks for the three synthetic datasets.
//!
//! The reproduction's fault-criticality labelling only makes sense if the
//! benchmark SNNs can actually learn these datasets, which requires the
//! classes to be statistically separable. A training-free proxy validates
//! this fast: nearest-centroid classification on per-feature spike-count
//! vectors must beat chance by a wide margin.

use snn_datasets::{GestureLike, NmnistLike, ShdLike, SpikeDataset};

/// Per-feature spike counts of a sample (its "rate signature").
fn signature(ds: &dyn SpikeDataset, idx: usize) -> (Vec<f32>, usize) {
    let (t, label) = ds.sample(idx);
    let dims = t.shape().dims();
    let (steps, n) = (dims[0], dims[1]);
    let mut sig = vec![0.0f32; n];
    let data = t.as_slice();
    for s in 0..steps {
        for (acc, v) in sig.iter_mut().zip(data[s * n..(s + 1) * n].iter()) {
            *acc += v;
        }
    }
    (sig, label)
}

/// Nearest-centroid accuracy: centroids from `train` samples, evaluated
/// on the following `test` samples.
fn nearest_centroid_accuracy(ds: &dyn SpikeDataset, train: usize, test: usize) -> f64 {
    let classes = ds.classes();
    let features = ds.input_shape().len();
    let mut centroids = vec![vec![0.0f32; features]; classes];
    let mut counts = vec![0usize; classes];
    for idx in 0..train {
        let (sig, label) = signature(ds, idx);
        for (c, v) in centroids[label].iter_mut().zip(sig.iter()) {
            *c += v;
        }
        counts[label] += 1;
    }
    for (centroid, &cnt) in centroids.iter_mut().zip(counts.iter()) {
        if cnt > 0 {
            centroid.iter_mut().for_each(|v| *v /= cnt as f32);
        }
    }
    let mut correct = 0usize;
    for idx in train..train + test {
        let (sig, label) = signature(ds, idx);
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (k, centroid) in centroids.iter().enumerate() {
            let d: f32 = centroid.iter().zip(sig.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
            if d < best_d {
                best_d = d;
                best = k;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    correct as f64 / test as f64
}

#[test]
fn nmnist_like_classes_are_separable() {
    let ds = NmnistLike::new(14, 30, 400, 11);
    let acc = nearest_centroid_accuracy(&ds, 100, 60);
    let chance = 1.0 / ds.classes() as f64;
    assert!(acc > 3.0 * chance, "accuracy {acc:.2} barely beats chance {chance:.2}");
}

#[test]
fn gesture_like_classes_are_separable() {
    let ds = GestureLike::new(20, 30, 400, 12);
    let acc = nearest_centroid_accuracy(&ds, 110, 55);
    let chance = 1.0 / ds.classes() as f64;
    assert!(acc > 3.0 * chance, "accuracy {acc:.2} barely beats chance {chance:.2}");
}

#[test]
fn shd_like_classes_are_separable() {
    let ds = ShdLike::new(100, 30, 400, 13);
    let acc = nearest_centroid_accuracy(&ds, 120, 60);
    let chance = 1.0 / ds.classes() as f64;
    assert!(acc > 3.0 * chance, "accuracy {acc:.2} barely beats chance {chance:.2}");
}

#[test]
fn within_class_similarity_exceeds_between_class() {
    // Same-class samples must be closer (on average) than cross-class
    // samples — a distributional check complementing the accuracy one.
    let ds = NmnistLike::new(14, 30, 400, 14).with_noise(0.0);
    let sig = |i| signature(&ds, i).0;
    let dist = |a: &[f32], b: &[f32]| -> f32 {
        a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
    };
    // indices 0 and 10 are the same digit; 0 and 1..10 are different.
    let mut within = 0.0;
    let mut between = 0.0;
    let mut wn = 0;
    let mut bn = 0;
    for base in 0..5 {
        let s0 = sig(base);
        within += dist(&s0, &sig(base + 10)) + dist(&s0, &sig(base + 20));
        wn += 2;
        for other in 0..5 {
            if other != base {
                between += dist(&s0, &sig(other));
                bn += 1;
            }
        }
    }
    let within = within / wn as f32;
    let between = between / bn as f32;
    assert!(within < between, "within-class distance {within} ≥ between-class {between}");
}
