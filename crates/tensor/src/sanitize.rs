//! Debug-build numeric sanitizer.
//!
//! NaN and Inf propagate silently through f32 arithmetic: a single bad
//! weight poisons every downstream activation, loss and gradient, and
//! the failure finally surfaces far from its origin (typically as a
//! test-generation run that "converges" to coverage 0). These guards
//! pin the blast radius to one kernel call: every numeric kernel in
//! [`crate::ops`] (and the surrogate-gradient backward pass in the
//! `snn-model` crate) scans its operands and results in debug builds
//! and panics naming the operation, the operand and the offending
//! index. Release builds compile the scans out entirely.

/// Panics in debug builds when any element of `values` is NaN or ±Inf.
///
/// `op` names the kernel (e.g. `"matvec"`), `operand` the argument or
/// result being scanned (e.g. `"x"`, `"out"`). No-op in release builds.
#[inline]
#[track_caller]
pub fn debug_assert_finite(op: &str, operand: &str, values: &[f32]) {
    if cfg!(debug_assertions) {
        if let Some(idx) = values.iter().position(|v| !v.is_finite()) {
            // snn-lint: allow(L-PANIC): the sanitizer's report IS a deliberate debug-build panic
            panic!(
                "{op}: non-finite value {} at {operand}[{idx}] — a NaN/Inf entered or left \
                 a numeric kernel; inspect the upstream computation",
                values[idx]
            );
        }
    }
}

/// Panics in debug builds when any element of `values` is not exactly
/// `0.0` or `1.0`.
///
/// The bit-packed lane kernels in [`crate::packed`] represent spikes as
/// single bits, which is only sound when the `f32` source really is
/// binary; a fractional value (e.g. an average-pooling output packed by
/// mistake) would silently change simulation results. No-op in release
/// builds.
#[inline]
#[track_caller]
#[allow(clippy::float_cmp)] // binary spikes are exact 0.0/1.0 values, not tolerances
pub fn debug_assert_binary(op: &str, operand: &str, values: &[f32]) {
    if cfg!(debug_assertions) {
        // snn-lint: allow(L-FLOATEQ): binary spikes are exact 0.0/1.0 values, not tolerances
        if let Some(idx) = values.iter().position(|&v| v != 0.0 && v != 1.0) {
            // snn-lint: allow(L-PANIC): the sanitizer's report IS a deliberate debug-build panic
            panic!(
                "{op}: non-binary value {} at {operand}[{idx}] — bit-packed lanes require \
                 exact 0.0/1.0 spikes; a fractional activation reached a packed kernel",
                values[idx]
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_slices_pass() {
        debug_assert_finite("test", "x", &[0.0, -1.5, f32::MAX, f32::MIN_POSITIVE]);
        debug_assert_finite("test", "empty", &[]);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn nan_is_caught_with_location() {
        let err = std::panic::catch_unwind(|| {
            debug_assert_finite("matvec", "x", &[1.0, f32::NAN, 3.0]);
        })
        .expect_err("NaN must panic in debug builds");
        let msg = err.downcast_ref::<String>().expect("panic payload is the report");
        assert!(msg.contains("matvec") && msg.contains("x[1]"), "{msg}");
    }

    #[test]
    fn binary_slices_pass() {
        debug_assert_binary("test", "spikes", &[0.0, 1.0, 1.0, 0.0]);
        debug_assert_binary("test", "empty", &[]);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn fractional_value_is_caught_with_location() {
        let err = std::panic::catch_unwind(|| {
            debug_assert_binary("broadcast_row", "golden", &[1.0, 0.5, 0.0]);
        })
        .expect_err("fractional spike must panic in debug builds");
        let msg = err.downcast_ref::<String>().expect("panic payload is the report");
        assert!(msg.contains("broadcast_row") && msg.contains("golden[1]"), "{msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn infinity_is_caught() {
        assert!(std::panic::catch_unwind(|| {
            debug_assert_finite("conv2d", "weight", &[f32::INFINITY]);
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            debug_assert_finite("conv2d", "weight", &[f32::NEG_INFINITY]);
        })
        .is_err());
    }
}
