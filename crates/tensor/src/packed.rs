//! Bit-packed SWAR primitives for lane-parallel spike processing.
//!
//! The batched fault-simulation engine (`snn-batch`) evaluates up to 64
//! fault variants per pass by assigning each variant a bit *lane* inside
//! a `u64` word: word `w[j]` holds, at bit `l`, lane `l`'s binary spike
//! of feature `j` at one tick. This module provides the word-level
//! kernels that engine builds on:
//!
//! * [`lane_row_dot`] — one dense weight row dotted against one lane's
//!   spike bits, **bit-identical** to the corresponding
//!   [`ops::matvec`](crate::ops::matvec) row over the same spikes;
//! * [`row_dot`] — the plain `f32` row product, literally `matvec`
//!   restricted to a single output row (for golden inputs that may be
//!   fractional, e.g. downstream of an average-pooling layer);
//! * [`broadcast_row`] / [`set_lane_bit`] — word construction from a
//!   golden binary row plus per-lane overrides;
//! * [`row_diff_mask`] — which lanes' spike rows differ from the golden
//!   row, the divergence test behind lazy per-lane materialization.
//!
//! # Why `lane_row_dot` is exact
//!
//! `ops::matvec` accumulates `acc += w[j] * x[j]` in ascending `j` with
//! `acc` starting at `+0.0` and no FMA. With binary spikes
//! (`x[j] ∈ {0.0, 1.0}`), the term is either `w[j]` exactly or `±0.0`
//! (the sign of `w[j]`). Under round-to-nearest-even, `acc` can never
//! become `-0.0`: it starts at `+0.0`, `+0.0 + (±0.0) = +0.0`, and any
//! exactly-cancelling sum `x + (-x)` rounds to `+0.0`. Adding any zero
//! to a value that is not `-0.0` leaves its bits unchanged, so skipping
//! zero-spike terms is bitwise identical to adding them — which is what
//! [`lane_row_dot`] does.

use crate::sanitize::debug_assert_finite;

/// Number of bit lanes in one packed word.
pub const LANES: usize = 64;

/// A lane mask with the low `n` lanes set.
///
/// # Panics
///
/// Panics in debug builds if `n > 64`.
#[inline]
pub fn low_lanes(n: usize) -> u64 {
    debug_assert!(n <= LANES, "at most {LANES} lanes per pack");
    if n >= LANES {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Dot product of one dense weight row with one lane's spike bits:
/// `Σ_j row[j]` over the set bits `j` of `lane` in `words`, accumulated
/// in ascending `j` — bit-identical to the `matvec` row over the same
/// spikes (see the module docs for the `±0.0` argument).
///
/// # Panics
///
/// Panics in debug builds on length mismatch, a non-finite weight, or
/// `lane >= 64`.
#[inline]
pub fn lane_row_dot(row: &[f32], words: &[u64], lane: u32) -> f32 {
    debug_assert_eq!(row.len(), words.len(), "lane_row_dot operand length mismatch");
    debug_assert!((lane as usize) < LANES, "lane out of range");
    debug_assert_finite("lane_row_dot", "row", row);
    let mut acc = 0.0f32;
    for (wv, word) in row.iter().zip(words.iter()) {
        if (word >> lane) & 1 == 1 {
            acc += wv;
        }
    }
    acc
}

/// Dot product of one dense weight row with an `f32` input row — exactly
/// the computation [`ops::matvec`](crate::ops::matvec) performs for a
/// single output row, for callers that only need that row.
///
/// # Panics
///
/// Panics in debug builds on length mismatch or non-finite operands.
#[inline]
pub fn row_dot(row: &[f32], x: &[f32]) -> f32 {
    debug_assert_eq!(row.len(), x.len(), "row_dot operand length mismatch");
    debug_assert_finite("row_dot", "row", row);
    debug_assert_finite("row_dot", "x", x);
    let mut acc = 0.0f32;
    for (wv, xv) in row.iter().zip(x.iter()) {
        acc += wv * xv;
    }
    acc
}

/// Fills `words` from a golden binary row: `words[j]` is all-ones when
/// `golden[j]` spikes and all-zeroes otherwise (every lane carries the
/// golden bit).
///
/// # Panics
///
/// Panics in debug builds on length mismatch or a non-binary golden
/// value (packed lanes hold spikes, not rates).
#[inline]
pub fn broadcast_row(golden: &[f32], words: &mut [u64]) {
    debug_assert_eq!(golden.len(), words.len(), "broadcast_row length mismatch");
    crate::sanitize::debug_assert_binary("broadcast_row", "golden", golden);
    for (word, g) in words.iter_mut().zip(golden.iter()) {
        // snn-lint: allow(L-FLOATEQ): spikes are exact 0.0/1.0 values
        *word = if *g != 0.0 { u64::MAX } else { 0 };
    }
}

/// Sets or clears bit `lane` of `word`.
///
/// # Panics
///
/// Panics in debug builds if `lane >= 64`.
#[inline]
pub fn set_lane_bit(word: &mut u64, lane: u32, on: bool) {
    debug_assert!((lane as usize) < LANES, "lane out of range");
    if on {
        *word |= 1u64 << lane;
    } else {
        *word &= !(1u64 << lane);
    }
}

/// Which of the `active` lanes differ from the golden binary row
/// anywhere in this feature row: bit `l` of the result is set iff lane
/// `l`'s spikes in `words` are not feature-for-feature equal to
/// `golden`.
///
/// # Panics
///
/// Panics in debug builds on length mismatch or a non-binary golden
/// value.
#[inline]
pub fn row_diff_mask(words: &[u64], golden: &[f32], active: u64) -> u64 {
    debug_assert_eq!(golden.len(), words.len(), "row_diff_mask length mismatch");
    crate::sanitize::debug_assert_binary("row_diff_mask", "golden", golden);
    let mut diff = 0u64;
    for (word, g) in words.iter().zip(golden.iter()) {
        // snn-lint: allow(L-FLOATEQ): spikes are exact 0.0/1.0 values
        let bcast = if *g != 0.0 { u64::MAX } else { 0 };
        diff |= word ^ bcast;
    }
    diff & active
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact bitwise equality by design
mod tests {
    use super::*;
    use crate::{ops, Shape, Tensor};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Packs per-lane binary spike rows (lane-major) into words.
    fn pack(rows: &[Vec<f32>]) -> Vec<u64> {
        let n = rows[0].len();
        let mut words = vec![0u64; n];
        for (l, row) in rows.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                set_lane_bit(&mut words[j], u32::try_from(l).unwrap(), *v != 0.0);
            }
        }
        words
    }

    #[test]
    fn lane_row_dot_is_bitwise_identical_to_matvec() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let cols = rng.gen_range(1..40);
            let w = crate::init::uniform(&mut rng, Shape::d2(3, cols), -1.0, 1.0);
            let lanes: Vec<Vec<f32>> = (0..5)
                .map(|_| (0..cols).map(|_| f32::from(u8::from(rng.gen_bool(0.5)))).collect())
                .collect();
            let words = pack(&lanes);
            for (l, x) in lanes.iter().enumerate() {
                let mut y = vec![0.0f32; 3];
                ops::matvec(&w, x, &mut y);
                for (r, yr) in y.iter().enumerate() {
                    let row = &w.as_slice()[r * cols..(r + 1) * cols];
                    let got = lane_row_dot(row, &words, u32::try_from(l).unwrap());
                    assert_eq!(got.to_bits(), yr.to_bits(), "row {r} lane {l}");
                }
            }
        }
    }

    #[test]
    fn row_dot_matches_matvec_on_fractional_inputs() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = crate::init::uniform(&mut rng, Shape::d2(4, 9), -1.0, 1.0);
        let x: Vec<f32> = (0..9).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut y = vec![0.0f32; 4];
        ops::matvec(&w, &x, &mut y);
        for (r, yr) in y.iter().enumerate() {
            let row = &w.as_slice()[r * 9..(r + 1) * 9];
            assert_eq!(row_dot(row, &x).to_bits(), yr.to_bits());
        }
    }

    #[test]
    fn broadcast_and_diff_mask_round_trip() {
        let golden = vec![1.0, 0.0, 0.0, 1.0, 1.0];
        let mut words = vec![0u64; 5];
        broadcast_row(&golden, &mut words);
        assert_eq!(row_diff_mask(&words, &golden, u64::MAX), 0);
        // Perturb lane 3 at feature 1 and lane 7 at feature 4.
        set_lane_bit(&mut words[1], 3, true);
        set_lane_bit(&mut words[4], 7, false);
        let diff = row_diff_mask(&words, &golden, u64::MAX);
        assert_eq!(diff, (1 << 3) | (1 << 7));
        // An inactive lane's divergence is masked out.
        assert_eq!(row_diff_mask(&words, &golden, 1 << 3), 1 << 3);
    }

    #[test]
    fn low_lanes_masks() {
        assert_eq!(low_lanes(0), 0);
        assert_eq!(low_lanes(1), 1);
        assert_eq!(low_lanes(7), 0x7f);
        assert_eq!(low_lanes(64), u64::MAX);
    }

    #[test]
    fn zero_tensor_stays_out_of_every_lane() {
        let z = Tensor::zeros(Shape::d2(1, 6));
        let mut words = vec![u64::MAX; 6];
        broadcast_row(z.as_slice(), &mut words);
        assert!(words.iter().all(|&w| w == 0));
    }
}
