use std::error::Error;
use std::fmt;

/// Error raised when two tensors (or a tensor and an operation) disagree on
/// dimensions.
///
/// The message carries the operation name and both offending shapes so that
/// a failure deep inside a simulation is immediately attributable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: String,
    detail: String,
}

impl ShapeError {
    /// Creates a new shape error for operation `op` with a human-readable
    /// `detail` describing the mismatch.
    pub fn new(op: impl Into<String>, detail: impl Into<String>) -> Self {
        Self { op: op.into(), detail: detail.into() }
    }

    /// The name of the operation that rejected its operands.
    pub fn op(&self) -> &str {
        &self.op
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch in `{}`: {}", self.op, self.detail)
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_op_and_detail() {
        let e = ShapeError::new("matvec", "expected 4 columns, got 5");
        let s = e.to_string();
        assert!(s.contains("matvec"));
        assert!(s.contains("expected 4 columns"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
