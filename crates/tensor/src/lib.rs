//! Minimal dense `f32` tensor library for the `snn-mtfc` workspace.
//!
//! This crate provides exactly the linear-algebra substrate the spiking
//! neural network simulator and the test-generation algorithm need:
//!
//! * [`Shape`] — a small dimension descriptor with row-major strides,
//! * [`Tensor`] — a contiguous, row-major, owned `f32` tensor,
//! * [`ops`] — matrix–vector products, 2-D convolution and average pooling,
//!   each with the corresponding backward (gradient) computations used by
//!   backpropagation-through-time,
//! * [`init`] — reproducible random initializers.
//!
//! The library is deliberately *not* a general-purpose array crate: no
//! broadcasting, no views, no lazy evaluation. Everything is eager,
//! contiguous and simple enough to audit, which is what a test-generation
//! flow for safety-critical neuromorphic hardware wants.
//!
//! # Example
//!
//! ```
//! use snn_tensor::{Shape, Tensor};
//!
//! let t = Tensor::zeros(Shape::d2(3, 4));
//! assert_eq!(t.len(), 12);
//! assert_eq!(t.shape().dims(), &[3, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod init;
pub mod ops;
pub mod packed;
pub mod sanitize;

pub use error::ShapeError;
pub use shape::Shape;
pub use tensor::Tensor;
