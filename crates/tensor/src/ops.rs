//! Forward and backward numeric kernels.
//!
//! These are the only compute primitives the SNN simulator needs: dense
//! matrix–vector products, 2-D convolution and average pooling, each paired
//! with the gradient computations used by backpropagation-through-time.
//! All kernels are straightforward nested loops — auditable, allocation-free
//! on the hot path and fast enough for the repro-scale benchmarks.
//!
//! In debug builds every kernel additionally scans its operands and its
//! result for NaN/Inf via [`crate::sanitize::debug_assert_finite`], so a
//! poisoned value is reported at the kernel boundary it crossed instead
//! of corrupting an entire run silently.

use crate::sanitize::debug_assert_finite;
use crate::{Shape, Tensor};

/// Geometry of a 2-D convolution or pooling operation.
///
/// # Example
///
/// ```
/// use snn_tensor::ops::Conv2dSpec;
///
/// let spec = Conv2dSpec::new(2, 16, 5, 1, 2);
/// assert_eq!(spec.out_hw(32, 32), (32, 32)); // "same" padding at stride 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Conv2dSpec {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Square kernel extent.
    pub kernel: usize,
    /// Stride in both spatial directions.
    pub stride: usize,
    /// Zero padding in both spatial directions.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a convolution spec with a square kernel.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(kernel > 0, "kernel extent must be positive");
        assert!(stride > 0, "stride must be positive");
        Self { in_channels, out_channels, kernel, stride, padding }
    }

    /// Output spatial extent for an input of `h × w`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Shape of the weight tensor: `[out, in, k, k]`.
    pub fn weight_shape(&self) -> Shape {
        Shape::d4(self.out_channels, self.in_channels, self.kernel, self.kernel)
    }

    /// Number of trainable weights.
    pub fn weight_count(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }
}

/// Dense matrix–vector product `y = W · x` with `W: [rows × cols]`.
///
/// # Panics
///
/// Panics if `w` is not rank-2 or the operand lengths disagree.
pub fn matvec(w: &Tensor, x: &[f32], y: &mut [f32]) {
    let dims = w.shape().dims();
    assert_eq!(dims.len(), 2, "matvec weight must be rank-2");
    let (rows, cols) = (dims[0], dims[1]);
    assert_eq!(x.len(), cols, "matvec input length mismatch");
    assert_eq!(y.len(), rows, "matvec output length mismatch");
    let wd = w.as_slice();
    debug_assert_finite("matvec", "w", wd);
    debug_assert_finite("matvec", "x", x);
    for r in 0..rows {
        let row = &wd[r * cols..(r + 1) * cols];
        let mut acc = 0.0f32;
        for (wv, xv) in row.iter().zip(x.iter()) {
            acc += wv * xv;
        }
        y[r] = acc;
    }
    debug_assert_finite("matvec", "y", y);
}

/// Transposed matrix–vector product `x_grad = Wᵀ · y_grad`, accumulating
/// into `x_grad`.
///
/// # Panics
///
/// Panics on rank/length mismatches (same contract as [`matvec`]).
pub fn matvec_t_acc(w: &Tensor, y_grad: &[f32], x_grad: &mut [f32]) {
    let dims = w.shape().dims();
    assert_eq!(dims.len(), 2, "matvec_t weight must be rank-2");
    let (rows, cols) = (dims[0], dims[1]);
    assert_eq!(y_grad.len(), rows, "matvec_t output-grad length mismatch");
    assert_eq!(x_grad.len(), cols, "matvec_t input-grad length mismatch");
    let wd = w.as_slice();
    debug_assert_finite("matvec_t_acc", "w", wd);
    debug_assert_finite("matvec_t_acc", "y_grad", y_grad);
    for r in 0..rows {
        let g = y_grad[r];
        // snn-lint: allow(L-FLOATEQ): exact-zero sparsity shortcut, not a tolerance comparison
        if g == 0.0 {
            continue;
        }
        let row = &wd[r * cols..(r + 1) * cols];
        for (xg, wv) in x_grad.iter_mut().zip(row.iter()) {
            *xg += g * wv;
        }
    }
    debug_assert_finite("matvec_t_acc", "x_grad", x_grad);
}

/// Outer-product accumulation `W_grad += y_grad ⊗ x` for the dense layer
/// weight gradient.
///
/// # Panics
///
/// Panics on rank/length mismatches.
pub fn outer_acc(w_grad: &mut Tensor, y_grad: &[f32], x: &[f32]) {
    let dims = w_grad.shape().dims().to_vec();
    assert_eq!(dims.len(), 2, "outer_acc gradient must be rank-2");
    let (rows, cols) = (dims[0], dims[1]);
    assert_eq!(y_grad.len(), rows, "outer_acc row mismatch");
    assert_eq!(x.len(), cols, "outer_acc col mismatch");
    debug_assert_finite("outer_acc", "y_grad", y_grad);
    debug_assert_finite("outer_acc", "x", x);
    let wd = w_grad.as_mut_slice();
    for r in 0..rows {
        let g = y_grad[r];
        // snn-lint: allow(L-FLOATEQ): exact-zero sparsity shortcut, not a tolerance comparison
        if g == 0.0 {
            continue;
        }
        let row = &mut wd[r * cols..(r + 1) * cols];
        for (wv, xv) in row.iter_mut().zip(x.iter()) {
            *wv += g * xv;
        }
    }
    debug_assert_finite("outer_acc", "w_grad", wd);
}

/// 2-D convolution forward pass.
///
/// `input` is `[C_in, H, W]` flattened row-major, `weight` is
/// `[C_out, C_in, k, k]`, and the result is written into `out`
/// (`[C_out, OH, OW]` flattened).
///
/// # Panics
///
/// Panics if buffer lengths disagree with `spec` and `(h, w)`.
pub fn conv2d(
    spec: &Conv2dSpec,
    input: &[f32],
    h: usize,
    w: usize,
    weight: &Tensor,
    out: &mut [f32],
) {
    let (oh, ow) = spec.out_hw(h, w);
    assert_eq!(input.len(), spec.in_channels * h * w, "conv2d input length");
    assert_eq!(weight.len(), spec.weight_count(), "conv2d weight length");
    assert_eq!(out.len(), spec.out_channels * oh * ow, "conv2d output length");
    let k = spec.kernel;
    let wd = weight.as_slice();
    debug_assert_finite("conv2d", "input", input);
    debug_assert_finite("conv2d", "weight", wd);
    for oc in 0..spec.out_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ic in 0..spec.in_channels {
                    let in_base = ic * h * w;
                    let w_base = ((oc * spec.in_channels) + ic) * k * k;
                    for ky in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for kx in 0..k {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let ix = ix as usize;
                            acc += wd[w_base + ky * k + kx] * input[in_base + iy * w + ix];
                        }
                    }
                }
                out[(oc * oh + oy) * ow + ox] = acc;
            }
        }
    }
    debug_assert_finite("conv2d", "out", out);
}

/// Gradient of [`conv2d`] with respect to the input, accumulated into
/// `in_grad` (`[C_in, H, W]`).
///
/// # Panics
///
/// Panics if buffer lengths disagree with `spec` and `(h, w)`.
pub fn conv2d_backward_input(
    spec: &Conv2dSpec,
    out_grad: &[f32],
    h: usize,
    w: usize,
    weight: &Tensor,
    in_grad: &mut [f32],
) {
    let (oh, ow) = spec.out_hw(h, w);
    assert_eq!(out_grad.len(), spec.out_channels * oh * ow, "conv2d out-grad length");
    assert_eq!(in_grad.len(), spec.in_channels * h * w, "conv2d in-grad length");
    let k = spec.kernel;
    let wd = weight.as_slice();
    debug_assert_finite("conv2d_backward_input", "out_grad", out_grad);
    debug_assert_finite("conv2d_backward_input", "weight", wd);
    for oc in 0..spec.out_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let g = out_grad[(oc * oh + oy) * ow + ox];
                // snn-lint: allow(L-FLOATEQ): exact-zero sparsity shortcut, not a tolerance comparison
                if g == 0.0 {
                    continue;
                }
                for ic in 0..spec.in_channels {
                    let in_base = ic * h * w;
                    let w_base = ((oc * spec.in_channels) + ic) * k * k;
                    for ky in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for kx in 0..k {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let ix = ix as usize;
                            in_grad[in_base + iy * w + ix] += g * wd[w_base + ky * k + kx];
                        }
                    }
                }
            }
        }
    }
    debug_assert_finite("conv2d_backward_input", "in_grad", in_grad);
}

/// Gradient of [`conv2d`] with respect to the weights, accumulated into
/// `w_grad` (`[C_out, C_in, k, k]`).
///
/// # Panics
///
/// Panics if buffer lengths disagree with `spec` and `(h, w)`.
pub fn conv2d_backward_weight(
    spec: &Conv2dSpec,
    out_grad: &[f32],
    input: &[f32],
    h: usize,
    w: usize,
    w_grad: &mut Tensor,
) {
    let (oh, ow) = spec.out_hw(h, w);
    assert_eq!(out_grad.len(), spec.out_channels * oh * ow, "conv2d out-grad length");
    assert_eq!(input.len(), spec.in_channels * h * w, "conv2d input length");
    assert_eq!(w_grad.len(), spec.weight_count(), "conv2d weight-grad length");
    let k = spec.kernel;
    debug_assert_finite("conv2d_backward_weight", "out_grad", out_grad);
    debug_assert_finite("conv2d_backward_weight", "input", input);
    let wd = w_grad.as_mut_slice();
    for oc in 0..spec.out_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let g = out_grad[(oc * oh + oy) * ow + ox];
                // snn-lint: allow(L-FLOATEQ): exact-zero sparsity shortcut, not a tolerance comparison
                if g == 0.0 {
                    continue;
                }
                for ic in 0..spec.in_channels {
                    let in_base = ic * h * w;
                    let w_base = ((oc * spec.in_channels) + ic) * k * k;
                    for ky in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for kx in 0..k {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let ix = ix as usize;
                            wd[w_base + ky * k + kx] += g * input[in_base + iy * w + ix];
                        }
                    }
                }
            }
        }
    }
    debug_assert_finite("conv2d_backward_weight", "w_grad", wd);
}

/// Average pooling forward pass with a square window `k` and stride `k`.
///
/// `input` is `[C, H, W]`; `out` is `[C, H/k, W/k]`. Partial windows at the
/// border are averaged over the window elements that exist.
///
/// # Panics
///
/// Panics if buffer lengths disagree.
pub fn avg_pool2d(input: &[f32], c: usize, h: usize, w: usize, k: usize, out: &mut [f32]) {
    let (oh, ow) = (h / k, w / k);
    assert!(k > 0, "pool window must be positive");
    assert_eq!(input.len(), c * h * w, "avg_pool2d input length");
    assert_eq!(out.len(), c * oh * ow, "avg_pool2d output length");
    debug_assert_finite("avg_pool2d", "input", input);
    // snn-lint: allow(L-CAST): pooling window area is a small constant, exactly representable
    let inv = 1.0 / (k * k) as f32;
    for ch in 0..c {
        let base = ch * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ky in 0..k {
                    let row = base + (oy * k + ky) * w + ox * k;
                    for kx in 0..k {
                        acc += input[row + kx];
                    }
                }
                out[(ch * oh + oy) * ow + ox] = acc * inv;
            }
        }
    }
    debug_assert_finite("avg_pool2d", "out", out);
}

/// Gradient of [`avg_pool2d`], accumulated into `in_grad` (`[C, H, W]`).
///
/// # Panics
///
/// Panics if buffer lengths disagree.
pub fn avg_pool2d_backward(
    out_grad: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    in_grad: &mut [f32],
) {
    let (oh, ow) = (h / k, w / k);
    assert_eq!(out_grad.len(), c * oh * ow, "avg_pool2d out-grad length");
    assert_eq!(in_grad.len(), c * h * w, "avg_pool2d in-grad length");
    debug_assert_finite("avg_pool2d_backward", "out_grad", out_grad);
    // snn-lint: allow(L-CAST): pooling window area is a small constant, exactly representable
    let inv = 1.0 / (k * k) as f32;
    for ch in 0..c {
        let base = ch * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let g = out_grad[(ch * oh + oy) * ow + ox] * inv;
                // snn-lint: allow(L-FLOATEQ): exact-zero sparsity shortcut, not a tolerance comparison
                if g == 0.0 {
                    continue;
                }
                for ky in 0..k {
                    let row = base + (oy * k + ky) * w + ox * k;
                    for kx in 0..k {
                        in_grad[row + kx] += g;
                    }
                }
            }
        }
    }
    debug_assert_finite("avg_pool2d_backward", "in_grad", in_grad);
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use crate::Shape;
    use proptest::prelude::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-4
    }

    #[test]
    fn matvec_matches_manual() {
        // W = [[1,2],[3,4],[5,6]] · x = [1,1]
        let w = Tensor::from_vec(Shape::d2(3, 2), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let x = [1.0, 1.0];
        let mut y = [0.0; 3];
        matvec(&w, &x, &mut y);
        assert_eq!(y, [3.0, 7.0, 11.0]);
    }

    #[test]
    fn matvec_t_is_transpose_of_matvec() {
        let w = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let g = [1.0, 2.0];
        let mut xg = [0.0; 3];
        matvec_t_acc(&w, &g, &mut xg);
        // Wᵀ·g = [1+8, 2+10, 3+12]
        assert_eq!(xg, [9.0, 12.0, 15.0]);
    }

    #[test]
    fn outer_acc_matches_manual() {
        let mut wg = Tensor::zeros(Shape::d2(2, 2));
        outer_acc(&mut wg, &[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(wg.as_slice(), &[3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn conv2d_identity_kernel_passes_input_through() {
        let spec = Conv2dSpec::new(1, 1, 1, 1, 0);
        let w = Tensor::from_vec(spec.weight_shape(), vec![1.0]).unwrap();
        let input = [1.0, 2.0, 3.0, 4.0];
        let mut out = [0.0; 4];
        conv2d(&spec, &input, 2, 2, &w, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn conv2d_same_padding_sums_neighbourhood() {
        let spec = Conv2dSpec::new(1, 1, 3, 1, 1);
        let w = Tensor::full(spec.weight_shape(), 1.0);
        // all-ones 3×3 input: centre sees 9 ones, corner sees 4
        let input = [1.0f32; 9];
        let mut out = [0.0; 9];
        conv2d(&spec, &input, 3, 3, &w, &mut out);
        assert_eq!(out[4], 9.0);
        assert_eq!(out[0], 4.0);
        assert_eq!(out[1], 6.0);
    }

    #[test]
    fn conv2d_stride_reduces_output() {
        let spec = Conv2dSpec::new(1, 2, 2, 2, 0);
        assert_eq!(spec.out_hw(4, 4), (2, 2));
        let w = Tensor::full(spec.weight_shape(), 0.5);
        let input = [1.0f32; 16];
        let mut out = [0.0; 8];
        conv2d(&spec, &input, 4, 4, &w, &mut out);
        // each window: 4 elements × 0.5 = 2.0
        assert!(out.iter().all(|&v| approx(v, 2.0)));
    }

    /// Finite-difference check: the analytic input gradient of conv2d must
    /// match a numerical estimate of d(sum(out·g))/d(input).
    #[test]
    fn conv2d_input_gradient_matches_finite_difference() {
        let spec = Conv2dSpec::new(2, 3, 3, 1, 1);
        let (h, w_) = (4, 4);
        let mut rng_state = 12345u64;
        let mut next = || {
            // xorshift for deterministic pseudo-random values
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            ((rng_state % 1000) as f32 / 500.0) - 1.0
        };
        let weight = Tensor::from_vec(
            spec.weight_shape(),
            (0..spec.weight_count()).map(|_| next()).collect(),
        )
        .unwrap();
        let input: Vec<f32> = (0..spec.in_channels * h * w_).map(|_| next()).collect();
        let (oh, ow) = spec.out_hw(h, w_);
        let g: Vec<f32> = (0..spec.out_channels * oh * ow).map(|_| next()).collect();

        let mut in_grad = vec![0.0; input.len()];
        conv2d_backward_input(&spec, &g, h, w_, &weight, &mut in_grad);

        let f = |inp: &[f32]| -> f32 {
            let mut out = vec![0.0; g.len()];
            conv2d(&spec, inp, h, w_, &weight, &mut out);
            out.iter().zip(g.iter()).map(|(o, gv)| o * gv).sum()
        };
        let eps = 1e-2;
        for probe in [0usize, 5, 13, 17, input.len() - 1] {
            let mut ip = input.clone();
            ip[probe] += eps;
            let mut im = input.clone();
            im[probe] -= eps;
            let fd = (f(&ip) - f(&im)) / (2.0 * eps);
            assert!(
                (fd - in_grad[probe]).abs() < 1e-2,
                "probe {probe}: fd={fd} analytic={}",
                in_grad[probe]
            );
        }
    }

    #[test]
    fn conv2d_weight_gradient_matches_finite_difference() {
        let spec = Conv2dSpec::new(1, 2, 2, 1, 0);
        let (h, w_) = (3, 3);
        let input: Vec<f32> = (0..9).map(|i| i as f32 * 0.1).collect();
        let (oh, ow) = spec.out_hw(h, w_);
        let g = vec![1.0; spec.out_channels * oh * ow];
        let weight =
            Tensor::from_vec(spec.weight_shape(), (0..8).map(|i| i as f32 * 0.05).collect())
                .unwrap();

        let mut w_grad = Tensor::zeros(spec.weight_shape());
        conv2d_backward_weight(&spec, &g, &input, h, w_, &mut w_grad);

        let f = |wt: &Tensor| -> f32 {
            let mut out = vec![0.0; g.len()];
            conv2d(&spec, &input, h, w_, wt, &mut out);
            out.iter().zip(g.iter()).map(|(o, gv)| o * gv).sum()
        };
        let eps = 1e-2;
        for probe in 0..weight.len() {
            let mut wp = weight.clone();
            wp[probe] += eps;
            let mut wm = weight.clone();
            wm[probe] -= eps;
            let fd = (f(&wp) - f(&wm)) / (2.0 * eps);
            assert!(
                (fd - w_grad[probe]).abs() < 1e-2,
                "probe {probe}: fd={fd} analytic={}",
                w_grad[probe]
            );
        }
    }

    #[test]
    fn avg_pool_averages_windows() {
        let input = [1.0, 2.0, 3.0, 4.0];
        let mut out = [0.0];
        avg_pool2d(&input, 1, 2, 2, 2, &mut out);
        assert!(approx(out[0], 2.5));
    }

    #[test]
    fn avg_pool_backward_distributes_uniformly() {
        let mut in_grad = [0.0f32; 4];
        avg_pool2d_backward(&[4.0], 1, 2, 2, 2, &mut in_grad);
        assert!(in_grad.iter().all(|&v| approx(v, 1.0)));
    }

    #[test]
    fn conv_spec_validates() {
        let spec = Conv2dSpec::new(2, 16, 5, 1, 2);
        assert_eq!(spec.weight_count(), 16 * 2 * 25);
        assert_eq!(spec.out_hw(32, 32), (32, 32));
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn conv_spec_rejects_zero_stride() {
        Conv2dSpec::new(1, 1, 3, 0, 0);
    }

    proptest! {
        /// Pooling then backward must conserve total gradient mass
        /// (avg-pool backward spreads each output gradient over k² inputs
        /// scaled by 1/k², so sums match when H, W divide k).
        #[test]
        fn avg_pool_gradient_mass_is_conserved(
            c in 1usize..3, scale in 1usize..4, k in 1usize..3,
        ) {
            let h = k * scale;
            let w = k * scale;
            let out_len = c * (h / k) * (w / k);
            let out_grad: Vec<f32> = (0..out_len).map(|i| (i % 5) as f32).collect();
            let mut in_grad = vec![0.0f32; c * h * w];
            avg_pool2d_backward(&out_grad, c, h, w, k, &mut in_grad);
            let total_out: f32 = out_grad.iter().sum();
            let total_in: f32 = in_grad.iter().sum();
            prop_assert!((total_out - total_in).abs() < 1e-3);
        }

        /// matvec followed by its transpose satisfies the adjoint identity
        /// ⟨W·x, y⟩ = ⟨x, Wᵀ·y⟩.
        #[test]
        fn matvec_adjoint_identity(
            rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000
        ) {
            let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state % 100) as f32 / 50.0) - 1.0
            };
            let w = Tensor::from_vec(
                Shape::d2(rows, cols),
                (0..rows * cols).map(|_| next()).collect(),
            ).unwrap();
            let x: Vec<f32> = (0..cols).map(|_| next()).collect();
            let y: Vec<f32> = (0..rows).map(|_| next()).collect();
            let mut wx = vec![0.0; rows];
            matvec(&w, &x, &mut wx);
            let mut wty = vec![0.0; cols];
            matvec_t_acc(&w, &y, &mut wty);
            let lhs: f32 = wx.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
            let rhs: f32 = x.iter().zip(wty.iter()).map(|(a, b)| a * b).sum();
            prop_assert!((lhs - rhs).abs() < 1e-2, "lhs={} rhs={}", lhs, rhs);
        }
    }
}
