use crate::{Shape, ShapeError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// Contiguous, row-major, owned `f32` tensor.
///
/// `Tensor` is the single numeric container of the workspace: synaptic
/// weights, membrane-potential traces, spike trains (as 0.0/1.0 values) and
/// gradients are all stored in this type. Data is always dense and
/// row-major; the shape can be reinterpreted without copying via
/// [`Tensor::reshape`].
///
/// # Example
///
/// ```
/// use snn_tensor::{Shape, Tensor};
///
/// let mut t = Tensor::zeros(Shape::d2(2, 2));
/// t[[0, 1]] = 3.0;
/// assert_eq!(t[[0, 1]], 3.0);
/// assert_eq!(t.sum(), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Self { shape, data: vec![0.0; len] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Self { shape, data: vec![value; len] }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `data.len()` does not match the number of
    /// elements described by `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self, ShapeError> {
        let shape = shape.into();
        if shape.len() != data.len() {
            return Err(ShapeError::new(
                "from_vec",
                format!("shape {shape} needs {} elements, got {}", shape.len(), data.len()),
            ));
        }
        Ok(Self { shape, data })
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the data under a new shape without copying.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the new shape has a different element
    /// count.
    pub fn reshape(self, shape: impl Into<Shape>) -> Result<Self, ShapeError> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(ShapeError::new(
                "reshape",
                format!(
                    "cannot reshape {} elements into {shape} ({} elements)",
                    self.data.len(),
                    shape.len()
                ),
            ));
        }
        Ok(Self { shape, data: self.data })
    }

    /// Element at multi-index `idx` (bounds-checked in debug builds).
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Mutable element at multi-index `idx`.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.shape.offset(idx);
        &mut self.data[off]
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            // snn-lint: allow(L-CAST): a rounded element count changes the mean by ≤1 ulp, harmless
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (`f32::NEG_INFINITY` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`f32::INFINITY` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// L1 norm: sum of absolute values.
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// Number of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        // snn-lint: allow(L-FLOATEQ): exact-zero test — counts stored zeros, not near-zeros
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.data.iter_mut().for_each(|v| *v = f(*v));
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { shape: self.shape.clone(), data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy operands must share a shape");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|v| *v *= alpha);
    }

    /// Element-wise (Hadamard) product, returning a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "hadamard operands must share a shape");
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(other.data.iter()).map(|(a, b)| a * b).collect(),
        }
    }

    /// Binarizes with threshold `thr`: elements `>= thr` become 1.0, the
    /// rest 0.0. This is the forward pass of the straight-through estimator.
    pub fn binarize(&self, thr: f32) -> Tensor {
        self.map(|v| if v >= thr { 1.0 } else { 0.0 })
    }

    /// `true` if every element is exactly 0.0 or 1.0 (a valid spike tensor).
    #[allow(clippy::float_cmp)] // exact spike values, see the snn-lint justification below
    pub fn is_binary(&self) -> bool {
        // snn-lint: allow(L-FLOATEQ): spike tensors hold exact 0.0/1.0 values by construction
        self.data.iter().all(|&v| v == 0.0 || v == 1.0)
    }

    /// Squared L2 distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sq_distance(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "sq_distance operands must share a shape");
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b) * (a - b)).sum()
    }
}

impl Index<usize> for Tensor {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Tensor {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

impl Index<[usize; 2]> for Tensor {
    type Output = f32;
    fn index(&self, idx: [usize; 2]) -> &f32 {
        &self.data[self.shape.offset(&idx)]
    }
}

impl IndexMut<[usize; 2]> for Tensor {
    fn index_mut(&mut self, idx: [usize; 2]) -> &mut f32 {
        let off = self.shape.offset(&idx);
        &mut self.data[off]
    }
}

impl Index<[usize; 3]> for Tensor {
    type Output = f32;
    fn index(&self, idx: [usize; 3]) -> &f32 {
        &self.data[self.shape.offset(&idx)]
    }
}

impl IndexMut<[usize; 3]> for Tensor {
    fn index_mut(&mut self, idx: [usize; 3]) -> &mut f32 {
        let off = self.shape.offset(&idx);
        &mut self.data[off]
    }
}

impl Index<[usize; 4]> for Tensor {
    type Output = f32;
    fn index(&self, idx: [usize; 4]) -> &f32 {
        &self.data[self.shape.offset(&idx)]
    }
}

impl IndexMut<[usize; 4]> for Tensor {
    fn index_mut(&mut self, idx: [usize; 4]) -> &mut f32 {
        let off = self.shape.offset(&idx);
        &mut self.data[off]
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "add operands must share a shape");
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "sub operands must share a shape");
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.map(|v| v * rhs)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs);
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} (", self.shape)?;
        let preview: Vec<String> = self.data.iter().take(8).map(|v| format!("{v:.3}")).collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(Shape::d2(2, 3));
        assert_eq!(z.sum(), 0.0);
        let f = Tensor::full(Shape::d2(2, 3), 1.5);
        assert_eq!(f.sum(), 9.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(Shape::d1(3), vec![1.0, 2.0, 3.0]).is_ok());
        assert!(Tensor::from_vec(Shape::d1(3), vec![1.0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::d1(6), vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let r = t.reshape(Shape::d2(2, 3)).unwrap();
        assert_eq!(r[[1, 2]], 5.0);
        assert!(r.clone().reshape(Shape::d1(5)).is_err());
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(Shape::d3(2, 3, 4));
        t[[1, 2, 3]] = 7.0;
        assert_eq!(t.at(&[1, 2, 3]), 7.0);
        *t.at_mut(&[0, 0, 0]) = -1.0;
        assert_eq!(t[[0, 0, 0]], -1.0);
    }

    #[test]
    fn binarize_thresholds_correctly() {
        let t = Tensor::from_vec(Shape::d1(4), vec![0.2, 0.5, 0.7, -0.1]).unwrap();
        let b = t.binarize(0.5);
        assert_eq!(b.as_slice(), &[0.0, 1.0, 1.0, 0.0]);
        assert!(b.is_binary());
        assert!(!t.is_binary());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::full(Shape::d1(3), 1.0);
        let b = Tensor::from_vec(Shape::d1(3), vec![1.0, 2.0, 3.0]).unwrap();
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn l1_norm_counts_absolute_values() {
        let t = Tensor::from_vec(Shape::d1(3), vec![-1.0, 2.0, -3.0]).unwrap();
        assert_eq!(t.l1_norm(), 6.0);
        assert_eq!(t.count_nonzero(), 3);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Tensor::from_vec(Shape::d1(2), vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(Shape::d1(2), vec![3.0, 5.0]).unwrap();
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[3.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "share a shape")]
    fn add_rejects_mismatched_shapes() {
        let a = Tensor::zeros(Shape::d1(2));
        let b = Tensor::zeros(Shape::d1(3));
        let _ = &a + &b;
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros(Shape::d1(2));
        assert!(!format!("{t}").is_empty());
        assert!(!format!("{t:?}").is_empty());
    }

    proptest! {
        #[test]
        fn sum_matches_reference(data in proptest::collection::vec(-10.0f32..10.0, 1..64)) {
            let n = data.len();
            let t = Tensor::from_vec(Shape::d1(n), data.clone()).unwrap();
            let expect: f32 = data.iter().sum();
            prop_assert!((t.sum() - expect).abs() < 1e-3);
        }

        #[test]
        fn binarize_is_idempotent(data in proptest::collection::vec(-1.0f32..2.0, 1..64)) {
            let n = data.len();
            let t = Tensor::from_vec(Shape::d1(n), data).unwrap();
            let b1 = t.binarize(0.5);
            let b2 = b1.binarize(0.5);
            prop_assert_eq!(b1, b2);
        }

        #[test]
        fn sq_distance_is_symmetric_and_zero_on_self(
            data in proptest::collection::vec(-5.0f32..5.0, 1..32)
        ) {
            let n = data.len();
            let t = Tensor::from_vec(Shape::d1(n), data.clone()).unwrap();
            let u = Tensor::from_vec(Shape::d1(n), data.iter().map(|v| v + 1.0).collect()).unwrap();
            prop_assert!((t.sq_distance(&t)).abs() < 1e-6);
            prop_assert!((t.sq_distance(&u) - u.sq_distance(&t)).abs() < 1e-4);
        }
    }
}
