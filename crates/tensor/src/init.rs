//! Reproducible random tensor initializers.
//!
//! All initializers take an explicit [`rand::Rng`] so that every experiment
//! in the workspace is seedable end-to-end — a hard requirement for a test
//! generation flow whose outputs must be reproducible across runs.

use crate::{Shape, Tensor};
use rand::Rng;

/// Uniform initialization in `[lo, hi)`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_tensor::{init, Shape};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let t = init::uniform(&mut rng, Shape::d2(4, 4), -1.0, 1.0);
/// assert!(t.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
/// ```
pub fn uniform(rng: &mut impl Rng, shape: impl Into<Shape>, lo: f32, hi: f32) -> Tensor {
    let shape = shape.into();
    let data = (0..shape.len()).map(|_| rng.gen_range(lo..hi)).collect();
    // snn-lint: allow(L-PANIC): the iterator yields exactly shape.len() elements, so from_vec cannot fail
    Tensor::from_vec(shape, data).expect("length matches by construction")
}

/// Gaussian initialization with the given mean and standard deviation,
/// using the Box–Muller transform (avoids a dependency on `rand_distr`).
pub fn normal(rng: &mut impl Rng, shape: impl Into<Shape>, mean: f32, std: f32) -> Tensor {
    let shape = shape.into();
    let n = shape.len();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    // snn-lint: allow(L-PANIC): the loop above pushes exactly shape.len() elements, so from_vec cannot fail
    Tensor::from_vec(shape, data).expect("length matches by construction")
}

/// Kaiming-style initialization for a layer with `fan_in` inputs:
/// normal with standard deviation `gain / sqrt(fan_in)`.
///
/// This is the standard initialization for surrogate-gradient SNN training,
/// where the membrane potential accumulates `fan_in` weighted spikes per
/// step and must stay within a few thresholds of zero.
pub fn kaiming(rng: &mut impl Rng, shape: impl Into<Shape>, fan_in: usize, gain: f32) -> Tensor {
    // snn-lint: allow(L-CAST): fan_in is a layer width, far below f32's 2^24 exact-integer limit
    let std = gain / (fan_in.max(1) as f32).sqrt();
    normal(rng, shape, 0.0, std)
}

/// Bernoulli spike-tensor initialization: each element is 1.0 with
/// probability `p`, otherwise 0.0.
pub fn bernoulli(rng: &mut impl Rng, shape: impl Into<Shape>, p: f32) -> Tensor {
    let shape = shape.into();
    let data = (0..shape.len()).map(|_| if rng.gen::<f32>() < p { 1.0 } else { 0.0 }).collect();
    // snn-lint: allow(L-PANIC): the iterator yields exactly shape.len() elements, so from_vec cannot fail
    Tensor::from_vec(shape, data).expect("length matches by construction")
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&mut rng, Shape::d1(1000), -0.5, 0.5);
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = uniform(&mut StdRng::seed_from_u64(42), Shape::d1(16), 0.0, 1.0);
        let b = uniform(&mut StdRng::seed_from_u64(42), Shape::d1(16), 0.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = normal(&mut rng, Shape::d1(20_000), 1.0, 2.0);
        let mean = t.mean();
        let var =
            t.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std={}", var.sqrt());
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = kaiming(&mut rng, Shape::d1(20_000), 100, 1.0);
        let std = (t.as_slice().iter().map(|v| v * v).sum::<f32>() / t.len() as f32).sqrt();
        assert!((std - 0.1).abs() < 0.02, "std={std}");
    }

    #[test]
    fn bernoulli_produces_binary_with_right_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = bernoulli(&mut rng, Shape::d1(20_000), 0.3);
        assert!(t.is_binary());
        let rate = t.sum() / t.len() as f32;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(bernoulli(&mut rng, Shape::d1(64), 0.0).sum(), 0.0);
        assert_eq!(bernoulli(&mut rng, Shape::d1(64), 1.0).sum(), 64.0);
    }
}
