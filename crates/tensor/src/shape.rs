use serde::{Deserialize, Serialize};
use std::fmt;

/// Row-major dimension descriptor of a [`Tensor`](crate::Tensor).
///
/// A `Shape` is an ordered list of dimension extents. Strides are row-major
/// and derived on demand; a shape with no dimensions describes a scalar
/// tensor of one element.
///
/// # Example
///
/// ```
/// use snn_tensor::Shape;
///
/// let s = Shape::d3(2, 34, 34);
/// assert_eq!(s.len(), 2 * 34 * 34);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.offset(&[1, 0, 5]), 34 * 34 + 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from an arbitrary dimension list.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Self { dims: dims.into() }
    }

    /// One-dimensional shape.
    pub fn d1(n: usize) -> Self {
        Self::new(vec![n])
    }

    /// Two-dimensional shape (rows, columns).
    pub fn d2(rows: usize, cols: usize) -> Self {
        Self::new(vec![rows, cols])
    }

    /// Three-dimensional shape (channels, height, width).
    pub fn d3(c: usize, h: usize, w: usize) -> Self {
        Self::new(vec![c, h, w])
    }

    /// Four-dimensional shape (e.g. out-channels, in-channels, kh, kw).
    pub fn d4(a: usize, b: usize, c: usize, d: usize) -> Self {
        Self::new(vec![a, b, c, d])
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements described by this shape.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// `true` if the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (elements to skip per unit step along each axis).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of the multi-index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != self.rank()` or any coordinate is out of
    /// bounds (debug assertions only for the bounds check of each axis).
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            idx.len(),
            self.dims.len()
        );
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.dims.len()).rev() {
            debug_assert!(
                idx[axis] < self.dims[axis],
                "index {} out of bounds for axis {} with extent {}",
                idx[axis],
                axis,
                self.dims[axis]
            );
            off += idx[axis] * stride;
            stride *= self.dims[axis];
        }
        off
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Self::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Self::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(vec![]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::d3(2, 3, 4);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offsets_enumerate_contiguously() {
        let s = Shape::d2(3, 4);
        let mut expect = 0;
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(s.offset(&[r, c]), expect);
                expect += 1;
            }
        }
    }

    #[test]
    fn display_uses_times_separator() {
        assert_eq!(Shape::d3(2, 34, 34).to_string(), "[2×34×34]");
    }

    #[test]
    #[should_panic(expected = "index rank")]
    fn offset_rejects_wrong_rank() {
        Shape::d2(2, 2).offset(&[1]);
    }

    proptest! {
        #[test]
        fn offset_is_bijective_over_all_indices(
            a in 1usize..5, b in 1usize..5, c in 1usize..5
        ) {
            let s = Shape::d3(a, b, c);
            let mut seen = vec![false; s.len()];
            for i in 0..a {
                for j in 0..b {
                    for k in 0..c {
                        let off = s.offset(&[i, j, k]);
                        prop_assert!(off < s.len());
                        prop_assert!(!seen[off]);
                        seen[off] = true;
                    }
                }
            }
            prop_assert!(seen.iter().all(|&v| v));
        }

        #[test]
        fn len_is_product_of_dims(dims in proptest::collection::vec(1usize..8, 0..4)) {
            let s = Shape::new(dims.clone());
            prop_assert_eq!(s.len(), dims.iter().product::<usize>());
        }
    }
}
