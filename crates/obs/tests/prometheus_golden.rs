//! Golden-file test for the Prometheus text-format renderer: the output
//! must be byte-stable (ordering, float formatting) because external
//! scrapers and the ci.sh gate depend on it.

use snn_obs::metrics::Registry;

#[test]
fn prometheus_rendering_matches_golden_file() {
    let r = Registry::new();
    // Registered out of name order on purpose: the snapshot sorts.
    r.gauge("snn_testgen_gumbel_tau", "Current Gumbel-Softmax temperature.").set(2.5);
    r.counter("snn_faultsim_faults_detected_total", "Faults detected across campaigns.").add(9);
    let h = r.histogram("snn_service_job_wall_seconds", "Job wall time.", &[0.1, 1.0, 10.0]);
    // Exactly representable values so the sum renders identically on any
    // platform: 0.0625 + 1.0 + 30.0 == 31.0625.
    h.observe(0.0625);
    h.observe(1.0); // == bucket edge: lands in the le="1" bucket
    h.observe(30.0); // above every edge: overflow bucket only
    let rendered = r.render_prometheus();
    let golden = include_str!("fixtures/prometheus.golden");
    assert_eq!(rendered, golden, "rendered:\n{rendered}");
}
