//! End-to-end determinism test: spans driven by the manual clock, dumped
//! to JSONL, parsed back, and folded into a profile tree whose arithmetic
//! is exact — the root's total equals its self time plus the sum of its
//! top-level children's totals.

use snn_obs::clock::ManualClock;
use snn_obs::profile;
use snn_obs::trace::{self, Collector};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn mock_clock_trace_produces_exact_profile_arithmetic() {
    let clock = Arc::new(ManualClock::new());
    let collector = Arc::new(Collector::with_clock(clock.clone()));
    trace::install(collector.clone());

    {
        let _generate = snn_obs::span!("generate");
        clock.advance(Duration::from_millis(100)); // generate self time
        for _ in 0..3 {
            let _stage1 = snn_obs::span!("stage1");
            clock.advance(Duration::from_millis(200));
            {
                let _backward = snn_obs::span!("stage1.backward");
                clock.advance(Duration::from_millis(50));
            }
        }
        {
            let _stage2 = snn_obs::span!("stage2");
            clock.advance(Duration::from_millis(400));
        }
    }
    trace::uninstall();

    // Round-trip through the JSONL wire format, as `snn profile` would.
    let parsed = trace::parse_jsonl(&collector.to_jsonl()).expect("trace parses");
    let roots = profile::build(&parsed);
    assert_eq!(roots.len(), 1);
    let generate = &roots[0];
    assert_eq!(generate.name, "generate");

    // Exact, deterministic numbers from the manual clock.
    assert_eq!(generate.total, Duration::from_millis(100 + 3 * 250 + 400));
    assert_eq!(generate.self_time, Duration::from_millis(100));
    let child_total: Duration = generate.children.iter().map(|c| c.total).sum();
    assert_eq!(generate.total, generate.self_time + child_total);

    let stage1 = generate.find("stage1").expect("stage1 aggregated");
    assert_eq!(stage1.count, 3);
    assert_eq!(stage1.total, Duration::from_millis(750));
    assert_eq!(stage1.self_time, Duration::from_millis(600));
    assert_eq!(stage1.find("stage1.backward").expect("nested").total, Duration::from_millis(150));

    let rendered = profile::render(&roots);
    assert!(rendered.contains("generate"), "{rendered}");
    assert!(rendered.contains("stage1.backward"), "{rendered}");
}
