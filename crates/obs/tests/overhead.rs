//! Assertion-style bound on hot-path overhead: with no trace collector
//! installed and every metric site warmed, instrumentation must perform
//! zero heap allocations — only interior atomics.
//!
//! This file holds exactly one test so no sibling test can allocate
//! concurrently and pollute the counter.

use snn_obs::metrics::DURATION_BUCKETS;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_instrumentation_does_not_allocate() {
    assert!(!snn_obs::trace::enabled(), "no collector is installed in this test");

    // Warm every per-site cache: the first call registers the metric in
    // the global registry (which allocates, once per process).
    let c = snn_obs::counter!("snn_obs_overhead_total", "overhead self-test");
    let g = snn_obs::gauge!("snn_obs_overhead_value", "overhead self-test");
    let h = snn_obs::histogram!("snn_obs_overhead_seconds", "overhead self-test", DURATION_BUCKETS);
    c.inc();
    g.set(1.0);
    h.observe(0.001);
    drop(snn_obs::span!("warmup"));

    // One clean pass proves the instrumentation allocates nothing; retry a
    // few times so a stray allocation from the process environment (libtest
    // bookkeeping under load) cannot fail the test spuriously.
    let mut leaked = 0;
    for _attempt in 0..3 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for i in 0..10_000_i32 {
            let _span = snn_obs::span!("hot");
            c.inc();
            g.set(f64::from(i));
            h.observe(0.001);
        }
        leaked = ALLOCATIONS.load(Ordering::SeqCst) - before;
        if leaked == 0 {
            return;
        }
    }
    panic!("hot path allocated {leaked} times in every attempt");
}
