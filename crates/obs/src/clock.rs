//! Monotonic clocks.
//!
//! Every time measurement in the workspace flows through the [`Clock`]
//! trait so that (a) tests can substitute a [`ManualClock`] and stay
//! deterministic, and (b) the snn-lint `L-DET-CLOCK` pass can require that
//! the *only* raw `Instant::now()` call site in reproducibility-critical
//! code is the single one in this module.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A monotonic clock: time elapsed since some fixed (per-clock) origin.
///
/// Implementations must be monotonic — successive `now()` calls never go
/// backwards — but the origin is arbitrary, so values from different
/// clocks are not comparable.
pub trait Clock: Send + Sync {
    /// Time elapsed since this clock's origin.
    fn now(&self) -> Duration;
}

/// The single raw wall-clock read of the workspace; everything else
/// measures time as a difference of [`Clock::now`] values.
fn raw_instant() -> Instant {
    // All other crates measure time through the Clock trait, and the
    // values only ever feed wall-clock budgets and telemetry, never the
    // seeded generation math.
    // snn-lint: allow(L-DET-CLOCK): the one sanctioned raw monotonic-clock read
    Instant::now()
}

/// The process-wide origin shared by every [`RealClock`].
fn process_origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(raw_instant)
}

/// The real monotonic clock, measured from a process-wide origin (so two
/// `RealClock` values are mutually comparable).
#[derive(Debug, Clone, Copy, Default)]
pub struct RealClock;

impl Clock for RealClock {
    fn now(&self) -> Duration {
        raw_instant().saturating_duration_since(process_origin())
    }
}

/// Current time on the process-wide [`RealClock`].
///
/// This is the workspace's replacement for ad-hoc `Instant::now()` pairs:
/// take two readings and subtract.
pub fn monotonic() -> Duration {
    RealClock.now()
}

/// A hand-cranked clock for deterministic tests: time only moves when the
/// test calls [`ManualClock::advance`].
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&self, d: Duration) {
        let add = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(add, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute offset from its origin.
    pub fn set(&self, d: Duration) {
        let val = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.store(val, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(250));
        assert_eq!(c.now(), Duration::from_millis(250));
        c.advance(Duration::from_millis(250));
        assert_eq!(c.now(), Duration::from_millis(500));
        c.set(Duration::from_secs(2));
        assert_eq!(c.now(), Duration::from_secs(2));
    }

    #[test]
    fn monotonic_shares_one_origin() {
        let a = monotonic();
        let b = monotonic();
        assert!(b >= a);
    }
}
