//! Low-overhead kernel-phase accumulation for the fault-simulation
//! hot path.
//!
//! The per-fault loop in `snn-faults` spends its time in a handful of
//! kernel phases — applying/restoring the fault patch (**inject**),
//! simulating each layer forward (**forward.l\<k\>**), comparing
//! activity against the golden baseline (**compare**) — and the
//! collapsed-campaign pipeline adds a per-representative **expand**
//! phase after the loop. A [`PhaseAccumulator`] splits wall time across
//! these phases using nothing but relaxed atomics, so the hot path can
//! stay instrumented in release builds: one clock read per phase
//! boundary plus one atomic RMW per touched slot per fault.
//!
//! The hot loop records into a plain-integer [`LocalPhases`] scratch and
//! folds it into the shared accumulator once per fault
//! ([`PhaseAccumulator::merge`]). The packed engine (`snn-batch`)
//! simulates up to 64 fault variants per pass and records each phase
//! once per *pack*; it flushes through
//! [`PhaseAccumulator::merge_pack`], which attributes the wall time once
//! but weights sample counts by lane occupancy, keeping per-fault counts
//! comparable across engines. Campaign-level code snapshots the
//! accumulator before and after a run ([`PhaseAccumulator::snapshot`],
//! [`PhaseSnapshot::delta_since`]) and publishes the delta as synthetic
//! `phase.*` spans ([`emit_spans`]) that `snn profile --phases`
//! aggregates into a kernel-phase table.
//!
//! Durations come from the caller's clock, so everything here is
//! [`ManualClock`](crate::clock::ManualClock)-testable; the process-wide
//! instance for the fault-simulation engine is [`faultsim`].

use crate::trace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Number of individually-tracked forward layers; deeper layers clamp
/// into the last slot (`phase.forward.l15`).
pub const MAX_FORWARD_LAYERS: usize = 16;

const SLOT_INJECT: usize = 0;
const SLOT_COMPARE: usize = 1;
const SLOT_EXPAND: usize = 2;
const SLOT_FAULT: usize = 3;
const SLOT_PACK_PLAN: usize = 4;
const SLOT_PACK_ASSIGN: usize = 5;
const SLOT_PACK_RUN: usize = 6;
const SLOT_FORWARD: usize = 7;
const SLOTS: usize = SLOT_FORWARD + MAX_FORWARD_LAYERS;

/// A fixed, non-layer kernel phase of the fault-simulation pipeline.
/// Per-layer forward time uses [`PhaseAccumulator::add_forward`]
/// instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Applying and restoring the fault's weight patch on the worker net.
    Inject,
    /// Comparing simulated activity against the golden baseline
    /// (early-exit layer checks plus the output-distance verdict).
    Compare,
    /// Expanding representative verdicts onto a collapsed fault universe.
    Expand,
    /// One whole per-fault simulation — the attribution denominator for
    /// the in-loop phases. Under the packed engine, one whole per-pack
    /// run flushed with [`PhaseAccumulator::merge_pack`].
    Fault,
    /// Grouping a fault list into ≤64-lane packs (packed engine,
    /// campaign-level like [`Phase::Expand`]).
    PackPlan,
    /// Assigning bit lanes to the variants of each pack (packed engine,
    /// campaign-level like [`Phase::Expand`]).
    PackAssign,
    /// Per-pack word construction and lane bookkeeping that is neither
    /// forward simulation nor verdict comparison.
    PackRun,
}

impl Phase {
    fn slot(self) -> usize {
        match self {
            Phase::Inject => SLOT_INJECT,
            Phase::Compare => SLOT_COMPARE,
            Phase::Expand => SLOT_EXPAND,
            Phase::Fault => SLOT_FAULT,
            Phase::PackPlan => SLOT_PACK_PLAN,
            Phase::PackAssign => SLOT_PACK_ASSIGN,
            Phase::PackRun => SLOT_PACK_RUN,
        }
    }
}

fn forward_slot(layer: usize) -> usize {
    SLOT_FORWARD + layer.min(MAX_FORWARD_LAYERS - 1)
}

fn slot_name(slot: usize) -> String {
    match slot {
        SLOT_INJECT => "phase.inject".to_string(),
        SLOT_COMPARE => "phase.compare".to_string(),
        SLOT_EXPAND => "phase.expand".to_string(),
        SLOT_FAULT => "phase.fault".to_string(),
        SLOT_PACK_PLAN => "phase.pack.plan".to_string(),
        SLOT_PACK_ASSIGN => "phase.pack.assign".to_string(),
        SLOT_PACK_RUN => "phase.pack.run".to_string(),
        _ => format!("phase.forward.l{}", slot - SLOT_FORWARD),
    }
}

fn nanos_of(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Atomics-only accumulator of per-phase wall time and sample counts.
pub struct PhaseAccumulator {
    nanos: [AtomicU64; SLOTS],
    counts: [AtomicU64; SLOTS],
}

impl PhaseAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Adds one `elapsed` sample to `phase`.
    pub fn add(&self, phase: Phase, elapsed: Duration) {
        self.add_slot(phase.slot(), nanos_of(elapsed), 1);
    }

    /// Adds one `elapsed` sample of forward simulation for `layer`
    /// (clamped into the last slot beyond [`MAX_FORWARD_LAYERS`]).
    pub fn add_forward(&self, layer: usize, elapsed: Duration) {
        self.add_slot(forward_slot(layer), nanos_of(elapsed), 1);
    }

    /// Folds a per-fault [`LocalPhases`] scratch in: one atomic RMW pair
    /// per slot the scratch actually touched.
    pub fn merge(&self, local: &LocalPhases) {
        for slot in 0..SLOTS {
            if local.counts[slot] > 0 {
                self.add_slot(slot, local.nanos[slot], local.counts[slot]);
            }
        }
    }

    /// Pack-aware variant of [`merge`](Self::merge) for the batched
    /// engine, which simulates `lanes` fault variants in one pass and
    /// records each phase **once** per pack: wall time is folded in
    /// unscaled (the seconds really elapsed once), while sample counts
    /// are weighted by lane occupancy so per-fault counts stay
    /// comparable with the scalar engine's one-merge-per-fault flushes.
    pub fn merge_pack(&self, local: &LocalPhases, lanes: u64) {
        for slot in 0..SLOTS {
            if local.counts[slot] > 0 {
                self.add_slot(slot, local.nanos[slot], local.counts[slot].saturating_mul(lanes));
            }
        }
    }

    fn add_slot(&self, slot: usize, nanos: u64, count: u64) {
        self.nanos[slot].fetch_add(nanos, Ordering::Relaxed);
        self.counts[slot].fetch_add(count, Ordering::Relaxed);
    }

    /// Point-in-time totals since process start.
    pub fn snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot {
            nanos: std::array::from_fn(|i| self.nanos[i].load(Ordering::Relaxed)),
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
        }
    }
}

impl Default for PhaseAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-fault scratch recorder: plain integers on the worker's stack,
/// folded into the shared accumulator once per fault via
/// [`PhaseAccumulator::merge`].
#[derive(Debug, Clone)]
pub struct LocalPhases {
    nanos: [u64; SLOTS],
    counts: [u64; SLOTS],
}

impl LocalPhases {
    /// An empty scratch.
    pub fn new() -> Self {
        Self { nanos: [0; SLOTS], counts: [0; SLOTS] }
    }

    /// Adds one `elapsed` sample to `phase`.
    pub fn add(&mut self, phase: Phase, elapsed: Duration) {
        self.add_slot(phase.slot(), elapsed);
    }

    /// Adds one `elapsed` sample of forward simulation for `layer`.
    pub fn add_forward(&mut self, layer: usize, elapsed: Duration) {
        self.add_slot(forward_slot(layer), elapsed);
    }

    fn add_slot(&mut self, slot: usize, elapsed: Duration) {
        self.nanos[slot] = self.nanos[slot].saturating_add(nanos_of(elapsed));
        self.counts[slot] += 1;
    }

    /// Total recorded for `phase`.
    pub fn total(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.nanos[phase.slot()])
    }

    /// Total forward time summed across all layer slots.
    pub fn forward_total(&self) -> Duration {
        Duration::from_nanos(
            self.nanos[SLOT_FORWARD..].iter().fold(0u64, |a, n| a.saturating_add(*n)),
        )
    }
}

impl Default for LocalPhases {
    fn default() -> Self {
        Self::new()
    }
}

/// Totals captured by [`PhaseAccumulator::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSnapshot {
    nanos: [u64; SLOTS],
    counts: [u64; SLOTS],
}

impl PhaseSnapshot {
    /// The per-slot difference `self - earlier` (saturating) — the phase
    /// activity between two snapshots.
    pub fn delta_since(&self, earlier: &PhaseSnapshot) -> PhaseSnapshot {
        PhaseSnapshot {
            nanos: std::array::from_fn(|i| self.nanos[i].saturating_sub(earlier.nanos[i])),
            counts: std::array::from_fn(|i| self.counts[i].saturating_sub(earlier.counts[i])),
        }
    }

    /// Total wall time recorded for `phase`.
    pub fn total(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.nanos[phase.slot()])
    }

    /// Sample count recorded for `phase`.
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase.slot()]
    }

    /// `true` when no slot recorded any sample.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|c| *c == 0)
    }

    /// Named rows for every slot with at least one sample, in fixed slot
    /// order (inject, compare, expand, fault, pack.plan, pack.assign,
    /// pack.run, forward.l0…).
    pub fn entries(&self) -> Vec<PhaseEntry> {
        (0..SLOTS)
            .filter(|&slot| self.counts[slot] > 0)
            .map(|slot| PhaseEntry {
                name: slot_name(slot),
                total: Duration::from_nanos(self.nanos[slot]),
                count: self.counts[slot],
            })
            .collect()
    }
}

/// One named row of a [`PhaseSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEntry {
    /// Synthetic span name, e.g. `phase.inject` or `phase.forward.l0`.
    pub name: String,
    /// Summed wall time of the phase.
    pub total: Duration,
    /// Number of samples folded into `total`.
    pub count: u64,
}

/// The process-wide accumulator for the fault-simulation engine.
pub fn faultsim() -> &'static PhaseAccumulator {
    static FAULTSIM: OnceLock<PhaseAccumulator> = OnceLock::new();
    FAULTSIM.get_or_init(PhaseAccumulator::new)
}

/// Publishes `delta` into the installed trace collector as one synthetic
/// `phase.*` span per non-empty slot, each parented under `parent` and
/// carrying its sample count as a `count` attribute. No-op when tracing
/// is disabled.
pub fn emit_spans(delta: &PhaseSnapshot, parent: Option<u64>) {
    let Some(collector) = trace::installed() else { return };
    for entry in delta.entries() {
        collector.push_synthetic(
            &entry.name,
            parent,
            entry.total,
            vec![("count".to_string(), entry.count.to_string())],
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only shorthand
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::trace::{global_test_lock, install, uninstall, Collector};
    use std::sync::Arc;

    /// Reads a ManualClock-driven duration: advance, then measure.
    fn tick(clock: &ManualClock, ms: u64) -> Duration {
        let before = clock.now();
        clock.advance(Duration::from_millis(ms));
        clock.now() - before
    }

    #[test]
    fn accumulates_per_phase_totals_and_counts() {
        let clock = ManualClock::new();
        let acc = PhaseAccumulator::new();
        acc.add(Phase::Inject, tick(&clock, 2));
        acc.add(Phase::Inject, tick(&clock, 3));
        acc.add(Phase::Compare, tick(&clock, 7));
        let snap = acc.snapshot();
        assert_eq!(snap.total(Phase::Inject), Duration::from_millis(5));
        assert_eq!(snap.count(Phase::Inject), 2);
        assert_eq!(snap.total(Phase::Compare), Duration::from_millis(7));
        assert_eq!(snap.total(Phase::Expand), Duration::ZERO);
    }

    #[test]
    fn forward_layers_clamp_into_the_last_slot() {
        let acc = PhaseAccumulator::new();
        acc.add_forward(0, Duration::from_millis(1));
        acc.add_forward(MAX_FORWARD_LAYERS + 10, Duration::from_millis(2));
        let entries = acc.snapshot().entries();
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["phase.forward.l0", "phase.forward.l15"]);
        assert_eq!(entries[1].total, Duration::from_millis(2));
    }

    #[test]
    fn local_scratch_merges_once() {
        let clock = ManualClock::new();
        let acc = PhaseAccumulator::new();
        let mut local = LocalPhases::new();
        local.add(Phase::Inject, tick(&clock, 1));
        local.add_forward(0, tick(&clock, 4));
        local.add_forward(1, tick(&clock, 5));
        local.add(Phase::Fault, tick(&clock, 12));
        assert_eq!(local.forward_total(), Duration::from_millis(9));
        assert_eq!(local.total(Phase::Fault), Duration::from_millis(12));
        acc.merge(&local);
        let snap = acc.snapshot();
        assert_eq!(snap.total(Phase::Inject), Duration::from_millis(1));
        assert_eq!(snap.count(Phase::Fault), 1);
        assert_eq!(snap.entries().len(), 4);
    }

    #[test]
    fn pack_merge_attributes_seconds_once_but_counts_per_lane() {
        let clock = ManualClock::new();
        let acc = PhaseAccumulator::new();
        let mut local = LocalPhases::new();
        // One 17-lane pack: the forward kernel and verdict comparison run
        // once over packed words, the whole pack sits in one Fault
        // envelope, and word construction shows up as PackRun.
        local.add_forward(0, tick(&clock, 6));
        local.add(Phase::Compare, tick(&clock, 2));
        local.add(Phase::PackRun, tick(&clock, 1));
        local.add(Phase::Fault, tick(&clock, 9));
        acc.merge_pack(&local, 17);
        let snap = acc.snapshot();
        // Seconds attributed once: wall time is what actually elapsed.
        assert_eq!(snap.total(Phase::Fault), Duration::from_millis(9));
        assert_eq!(snap.total(Phase::Compare), Duration::from_millis(2));
        // Counts weighted by lane occupancy: 17 faults' worth of samples.
        assert_eq!(snap.count(Phase::Fault), 17);
        assert_eq!(snap.count(Phase::Compare), 17);
        let entries = snap.entries();
        let forward = entries.iter().find(|e| e.name == "phase.forward.l0").unwrap();
        assert_eq!(forward.total, Duration::from_millis(6));
        assert_eq!(forward.count, 17);
        let pack_run = entries.iter().find(|e| e.name == "phase.pack.run").unwrap();
        assert_eq!(pack_run.count, 17);
        // A scalar merge on top composes: one more fault's worth.
        let mut single = LocalPhases::new();
        single.add(Phase::Fault, tick(&clock, 3));
        acc.merge(&single);
        let snap = acc.snapshot();
        assert_eq!(snap.total(Phase::Fault), Duration::from_millis(12));
        assert_eq!(snap.count(Phase::Fault), 18);
    }

    #[test]
    fn delta_since_isolates_one_campaign() {
        let acc = PhaseAccumulator::new();
        acc.add(Phase::Inject, Duration::from_millis(10));
        let before = acc.snapshot();
        assert!(before.delta_since(&before).is_empty());
        acc.add(Phase::Inject, Duration::from_millis(2));
        acc.add(Phase::Expand, Duration::from_millis(3));
        let delta = acc.snapshot().delta_since(&before);
        assert_eq!(delta.total(Phase::Inject), Duration::from_millis(2));
        assert_eq!(delta.count(Phase::Inject), 1);
        assert_eq!(delta.total(Phase::Expand), Duration::from_millis(3));
    }

    #[test]
    fn emit_spans_publishes_named_synthetic_spans() {
        let _serial = global_test_lock();
        let acc = PhaseAccumulator::new();
        acc.add(Phase::Inject, Duration::from_millis(4));
        acc.add_forward(1, Duration::from_millis(6));
        acc.add(Phase::Fault, Duration::from_millis(11));
        let collector = Arc::new(Collector::with_clock(Arc::new(ManualClock::new())));
        install(collector.clone());
        emit_spans(&acc.snapshot(), Some(3));
        uninstall();
        let spans = collector.finished();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["phase.inject", "phase.fault", "phase.forward.l1"]);
        assert!(spans.iter().all(|s| s.parent == Some(3)));
        assert_eq!(spans[0].duration(), Duration::from_millis(4));
        assert_eq!(spans[0].attrs[0], ("count".to_string(), "1".to_string()));
    }

    #[test]
    fn emit_spans_is_inert_without_a_collector() {
        let _serial = global_test_lock();
        let acc = PhaseAccumulator::new();
        acc.add(Phase::Inject, Duration::from_millis(1));
        emit_spans(&acc.snapshot(), None); // must not panic or block
    }
}
