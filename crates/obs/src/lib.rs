//! Observability for the snn-mtfc pipeline: spans, metrics, profiling.
//!
//! The paper this workspace reproduces ("Minimum Time Maximum Fault
//! Coverage Testing of Spiking Neural Networks") is at its core a claim
//! about *time* — so the workspace needs to be able to say where a second
//! of wall-clock goes. This crate is the shared instrumentation layer:
//!
//! * [`clock`] — the [`Clock`] trait with the workspace's **single**
//!   sanctioned `Instant::now()` call site ([`RealClock`]) plus a
//!   deterministic [`ManualClock`] for tests. Everything else in the
//!   reproducibility-critical crates measures time through this.
//! * [`trace`] — hierarchical spans via the [`span!`] macro and a
//!   thread-safe [`Collector`], serializable to a JSONL trace
//!   (`--trace-out` on the CLI). Disabled-path cost is one atomic load.
//! * [`metrics`] — a global [`Registry`](metrics::Registry) of lock-free
//!   [`Counter`](metrics::Counter)s, [`Gauge`](metrics::Gauge)s and
//!   fixed-bucket [`Histogram`](metrics::Histogram)s, with a serializable
//!   snapshot (served by `Request::Metrics` on the job-server protocol)
//!   and Prometheus text-format 0.0.4 rendering.
//! * [`profile`] — folds a trace into an aggregated span tree with
//!   total/self time per node (the `snn profile` subcommand).
//! * [`phase`] — atomics-only kernel-phase accumulator splitting
//!   per-fault time into inject / forward-per-layer / compare / expand,
//!   published as synthetic `phase.*` spans and the
//!   `snn profile --phases` table.
//!
//! Metric names follow `snn_<subsystem>_<name>_<unit>`; span names are
//! lower-case dotted paths (`generate`, `stage1.backward`,
//! `faultsim.worker`). DESIGN.md §11 documents both conventions.

#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod phase;
pub mod profile;
pub mod span_names;
pub mod trace;

pub use clock::{Clock, ManualClock, RealClock};
pub use metrics::{MetricsSnapshot, Registry};
pub use phase::{LocalPhases, Phase, PhaseAccumulator, PhaseSnapshot};
pub use trace::{Collector, SpanGuard, SpanRecord};
