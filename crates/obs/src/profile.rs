//! Span-tree aggregation and rendering for `snn profile`.
//!
//! A JSONL trace is a flat list of [`SpanRecord`]s; this module folds it
//! into a tree of [`ProfileNode`]s, merging same-named siblings (so 400
//! `stage1` iterations render as one line with `count = 400`), and
//! renders the tree with per-node **total** and **self** time, where
//! `total == self + Σ children.total` by construction.

use crate::trace::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// One aggregated node of the span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Span name shared by every span merged into this node.
    pub name: String,
    /// Number of spans merged into this node.
    pub count: u64,
    /// Summed wall-clock duration of the merged spans.
    pub total: Duration,
    /// `total` minus the children's totals: time spent in this span
    /// itself.
    pub self_time: Duration,
    /// Aggregated children, descending by total (name-ascending ties).
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Finds a node by name anywhere in this subtree (pre-order).
    pub fn find(&self, name: &str) -> Option<&ProfileNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Folds a flat trace into aggregated root nodes.
///
/// Spans whose parent id is absent from the trace are treated as roots
/// (this happens when a trace is filtered or truncated mid-write).
pub fn build(records: &[SpanRecord]) -> Vec<ProfileNode> {
    let known: BTreeMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut children_of: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for record in records {
        match record.parent.filter(|p| known.contains_key(p)) {
            Some(parent) => children_of.entry(parent).or_default().push(record),
            None => roots.push(record),
        }
    }
    aggregate(&roots, &children_of)
}

/// Groups `spans` (siblings) by name into one node each, recursing into
/// their children.
fn aggregate(
    spans: &[&SpanRecord],
    children_of: &BTreeMap<u64, Vec<&SpanRecord>>,
) -> Vec<ProfileNode> {
    let mut groups: BTreeMap<&str, Vec<&SpanRecord>> = BTreeMap::new();
    for span in spans {
        groups.entry(span.name.as_str()).or_default().push(span);
    }
    let mut nodes: Vec<ProfileNode> = groups
        .into_iter()
        .map(|(name, members)| {
            let total: Duration = members.iter().map(|s| s.duration()).sum();
            let grandchildren: Vec<&SpanRecord> = members
                .iter()
                .flat_map(|m| children_of.get(&m.id).into_iter().flatten().copied())
                .collect();
            let children = aggregate(&grandchildren, children_of);
            let child_total: Duration = children.iter().map(|c| c.total).sum();
            ProfileNode {
                name: name.to_string(),
                count: members.len() as u64,
                total,
                self_time: total.saturating_sub(child_total),
                children,
            }
        })
        .collect();
    nodes.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.name.cmp(&b.name)));
    nodes
}

/// Renders the aggregated tree as an indented table:
///
/// ```text
///      TOTAL       SELF  COUNT  SPAN
///    12.003s     0.413s      1  generate
///    11.590s    11.590s    400    stage1
/// ```
pub fn render(roots: &[ProfileNode]) -> String {
    let mut out = String::from("     TOTAL       SELF   COUNT  SPAN\n");
    for root in roots {
        render_node(&mut out, root, 0);
    }
    out
}

fn render_node(out: &mut String, node: &ProfileNode, depth: usize) {
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>7}  {}{}",
        fmt_duration(node.total),
        fmt_duration(node.self_time),
        node.count,
        "  ".repeat(depth),
        node.name,
    );
    for child in &node.children {
        render_node(out, child, depth + 1);
    }
}

/// One aggregated row of the kernel-phase table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Phase span name (`phase.inject`, `phase.forward.l0`, …).
    pub name: String,
    /// Summed sample count across the trace's `phase.*` spans (each
    /// synthetic span carries its sample count in a `count` attribute;
    /// spans without one count as a single sample).
    pub count: u64,
    /// Summed wall time of the phase.
    pub total: Duration,
}

/// Aggregates every synthetic `phase.*` span in a trace — wherever it
/// sits in the tree — into one row per phase name, sorted by fixed slot
/// order: the order [`PhaseSnapshot::entries`](crate::phase::PhaseSnapshot::entries)
/// emits, which `phase.*` names sort to lexicographically.
pub fn phase_rows(records: &[SpanRecord]) -> Vec<PhaseRow> {
    let mut rows: BTreeMap<&str, (u64, Duration)> = BTreeMap::new();
    for record in records {
        if !record.name.starts_with("phase.") {
            continue;
        }
        let count = record
            .attrs
            .iter()
            .find(|(k, _)| k == "count")
            .and_then(|(_, v)| v.parse::<u64>().ok())
            .unwrap_or(1);
        let row = rows.entry(record.name.as_str()).or_insert((0, Duration::ZERO));
        row.0 += count;
        row.1 += record.duration();
    }
    rows.into_iter()
        .map(|(name, (count, total))| PhaseRow { name: name.to_string(), count, total })
        .collect()
}

/// Renders the kernel-phase table plus an attribution line:
///
/// ```text
/// KERNEL PHASES
///      TOTAL   COUNT  PHASE
///     1.204s    5140  phase.forward.l0
///     …
/// attributed: 98.2% of 2.510s fault-simulation time
/// ```
///
/// The denominator is the per-fault envelope (`phase.fault`) plus the
/// campaign-level phases that run outside it — the post-loop expansion
/// (`phase.expand`) and the packed engine's plan/assign stages
/// (`phase.pack.plan`, `phase.pack.assign`); the numerator is every
/// other phase plus those campaign-level phases. With no phase samples
/// in the trace the table says so instead.
pub fn render_phases(records: &[SpanRecord]) -> String {
    let rows = phase_rows(records);
    if rows.is_empty() {
        return String::from("KERNEL PHASES\n(no phase.* samples in this trace)\n");
    }
    let mut out = String::from("KERNEL PHASES\n     TOTAL   COUNT  PHASE\n");
    let mut fault = Duration::ZERO;
    let mut expand = Duration::ZERO;
    let mut attributed = Duration::ZERO;
    for row in &rows {
        let _ = writeln!(out, "{:>10} {:>7}  {}", fmt_duration(row.total), row.count, row.name);
        match row.name.as_str() {
            "phase.fault" => fault += row.total,
            "phase.expand" | "phase.pack.plan" | "phase.pack.assign" => {
                expand += row.total;
                attributed += row.total;
            }
            _ => attributed += row.total,
        }
    }
    let denominator = fault + expand;
    if denominator > Duration::ZERO {
        let pct = 100.0 * attributed.as_secs_f64() / denominator.as_secs_f64();
        let _ = writeln!(
            out,
            "attributed: {pct:.1}% of {} fault-simulation time",
            fmt_duration(denominator)
        );
    }
    out
}

/// Fixed-precision human duration: seconds above 1 s, milliseconds above
/// 1 ms, microseconds below.
fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us >= 1_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if us >= 1_000 {
        format!("{:.3}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only shorthand
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &str, start_us: u64, end_us: u64) -> SpanRecord {
        SpanRecord { id, parent, name: name.to_string(), start_us, end_us, attrs: Vec::new() }
    }

    #[test]
    fn same_named_siblings_merge() {
        let records = vec![
            span(1, None, "generate", 0, 1000),
            span(2, Some(1), "stage1", 0, 300),
            span(3, Some(1), "stage1", 300, 700),
        ];
        let roots = build(&records);
        assert_eq!(roots.len(), 1);
        let generate = &roots[0];
        assert_eq!(generate.count, 1);
        assert_eq!(generate.children.len(), 1);
        let stage1 = &generate.children[0];
        assert_eq!(stage1.count, 2);
        assert_eq!(stage1.total, Duration::from_micros(700));
        assert_eq!(generate.self_time, Duration::from_micros(300));
    }

    #[test]
    fn total_is_self_plus_children() {
        let records = vec![
            span(1, None, "root", 0, 10_000),
            span(2, Some(1), "a", 0, 4_000),
            span(3, Some(1), "b", 4_000, 7_000),
            span(4, Some(2), "a.inner", 0, 1_000),
        ];
        let roots = build(&records);
        let root = &roots[0];
        let child_total: Duration = root.children.iter().map(|c| c.total).sum();
        assert_eq!(root.total, root.self_time + child_total);
        for child in &root.children {
            let grand: Duration = child.children.iter().map(|c| c.total).sum();
            assert_eq!(child.total, child.self_time + grand);
        }
    }

    #[test]
    fn orphaned_spans_become_roots() {
        let records = vec![span(7, Some(99), "orphan", 0, 100)];
        let roots = build(&records);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "orphan");
    }

    #[test]
    fn children_sort_by_descending_total() {
        let records = vec![
            span(1, None, "root", 0, 1000),
            span(2, Some(1), "small", 0, 100),
            span(3, Some(1), "big", 100, 900),
        ];
        let roots = build(&records);
        let names: Vec<&str> = roots[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["big", "small"]);
    }

    #[test]
    fn find_walks_the_tree() {
        let records = vec![
            span(1, None, "root", 0, 1000),
            span(2, Some(1), "mid", 0, 500),
            span(3, Some(2), "leaf", 0, 100),
        ];
        let roots = build(&records);
        assert!(roots[0].find("leaf").is_some());
        assert!(roots[0].find("missing").is_none());
    }

    #[test]
    fn phase_rows_aggregate_by_name_with_count_attrs() {
        let mut a = span(1, Some(9), "phase.inject", 0, 2_000);
        a.attrs.push(("count".to_string(), "100".to_string()));
        let mut b = span(2, Some(10), "phase.inject", 0, 3_000);
        b.attrs.push(("count".to_string(), "50".to_string()));
        let c = span(3, Some(9), "phase.fault", 0, 10_000); // no count attr → 1
        let rows = phase_rows(&[a, b, c, span(4, None, "generate", 0, 99)]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "phase.fault");
        assert_eq!(rows[0].count, 1);
        assert_eq!(rows[1].name, "phase.inject");
        assert_eq!(rows[1].count, 150);
        assert_eq!(rows[1].total, Duration::from_micros(5_000));
    }

    #[test]
    fn render_phases_reports_attribution_against_fault_plus_expand() {
        let records = vec![
            span(1, None, "phase.inject", 0, 2_000),
            span(2, None, "phase.forward.l0", 0, 5_000),
            span(3, None, "phase.compare", 0, 1_000),
            span(4, None, "phase.fault", 0, 8_000),
            span(5, None, "phase.expand", 0, 2_000),
        ];
        let text = render_phases(&records);
        assert!(text.contains("phase.forward.l0"), "{text}");
        // numerator 2+5+1+2 = 10 ms, denominator 8+2 = 10 ms → 100%
        assert!(text.contains("attributed: 100.0%"), "{text}");
    }

    #[test]
    fn render_phases_without_samples_says_so() {
        let text = render_phases(&[span(1, None, "generate", 0, 100)]);
        assert!(text.contains("no phase.* samples"), "{text}");
    }

    #[test]
    fn render_indents_and_formats() {
        let records =
            vec![span(1, None, "generate", 0, 2_500_000), span(2, Some(1), "stage1", 0, 1_500_000)];
        let text = render(&build(&records));
        assert!(text.contains("generate"), "{text}");
        assert!(text.contains("  stage1"), "{text}");
        assert!(text.contains("2.500s"), "{text}");
        assert!(text.contains("1.500s"), "{text}");
        assert!(fmt_duration(Duration::from_micros(250)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
    }
}
