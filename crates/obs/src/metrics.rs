//! Lock-free metrics: counters, gauges and fixed-bucket histograms behind
//! a global [`Registry`].
//!
//! Instrumentation sites use the [`counter!`](crate::counter!),
//! [`gauge!`](crate::gauge!) and [`histogram!`](crate::histogram!) macros,
//! which cache the registry lookup in a per-site `OnceLock`: the registry
//! mutex is taken once per site per process, after which every update is
//! plain interior atomics — no allocation, no locks on the hot path.
//!
//! Naming convention (enforced socially, documented in DESIGN.md §11):
//! `snn_<subsystem>_<name>_<unit>`, e.g. `snn_faultsim_fault_seconds`.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A monotonically increasing integer metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins float metric.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Default duration buckets (seconds): 1 ms … 60 s, Prometheus-style.
pub const DURATION_BUCKETS: &[f64] =
    &[0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0];

/// Fine duration buckets (seconds) for micro-scale timings such as
/// per-loss evaluation: 1 µs … 1 s.
pub const FINE_DURATION_BUCKETS: &[f64] = &[0.000_001, 0.000_01, 0.000_1, 0.001, 0.01, 0.1, 1.0];

/// A fixed-bucket histogram with Prometheus semantics: bucket bounds are
/// *inclusive* upper edges, plus an implicit `+Inf` overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending inclusive upper bounds, excluding `+Inf`.
    bounds: Vec<f64>,
    /// One slot per bound plus the `+Inf` overflow slot (non-cumulative).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over the given ascending inclusive upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Records one observation. A value exactly equal to a bucket bound
    /// lands in that bucket (inclusive upper edge); values above every
    /// bound — and NaN — land in the overflow bucket.
    pub fn observe(&self, v: f64) {
        let slot = self.bounds.iter().position(|b| v <= *b).unwrap_or(self.bounds.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Non-cumulative per-bucket counts (last entry is the overflow
    /// bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// The inclusive upper bounds this histogram was built with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Clone)]
struct Entry {
    help: &'static str,
    metric: Metric,
}

/// A named collection of metrics. Most code uses the process-wide
/// [`global()`] registry through the site macros; tests build their own.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<&'static str, Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, registering it first
    /// if needed. If `name` is already registered as a different metric
    /// kind, a detached (unexported) counter is returned rather than
    /// panicking — the mismatch is a programming error the golden
    /// rendering tests catch.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let mut entries = self.entries.lock();
        let entry = entries
            .entry(name)
            .or_insert_with(|| Entry { help, metric: Metric::Counter(Arc::new(Counter::new())) });
        match &entry.metric {
            Metric::Counter(c) => c.clone(),
            _ => Arc::new(Counter::new()),
        }
    }

    /// Returns the gauge registered under `name` (see [`Registry::counter`]
    /// for the collision policy).
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let mut entries = self.entries.lock();
        let entry = entries
            .entry(name)
            .or_insert_with(|| Entry { help, metric: Metric::Gauge(Arc::new(Gauge::new())) });
        match &entry.metric {
            Metric::Gauge(g) => g.clone(),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Returns the histogram registered under `name`, creating it with
    /// `bounds` if absent (see [`Registry::counter`] for the collision
    /// policy; an existing histogram keeps its original bounds).
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let mut entries = self.entries.lock();
        let entry = entries.entry(name).or_insert_with(|| Entry {
            help,
            metric: Metric::Histogram(Arc::new(Histogram::new(bounds))),
        });
        match &entry.metric {
            Metric::Histogram(h) => h.clone(),
            _ => Arc::new(Histogram::new(bounds)),
        }
    }

    /// A point-in-time snapshot of every registered metric, ordered by
    /// name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock();
        let metrics = entries
            .iter()
            .map(|(name, entry)| MetricSample {
                name: (*name).to_string(),
                help: entry.help.to_string(),
                value: match &entry.metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(HistogramSnapshot {
                        bounds: h.bounds().to_vec(),
                        buckets: h.bucket_counts(),
                        count: h.count(),
                        sum: h.sum(),
                    }),
                },
            })
            .collect();
        MetricsSnapshot { metrics }
    }

    /// Renders the registry in Prometheus text format 0.0.4.
    pub fn render_prometheus(&self) -> String {
        render_prometheus(&self.snapshot())
    }
}

/// The process-wide registry used by the site macros.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ---------------------------------------------------------------------------
// Snapshot (the wire type) and Prometheus rendering
// ---------------------------------------------------------------------------

/// Serializable snapshot of a [`Registry`] — the payload of the service
/// protocol's `Metrics` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Every metric, ascending by name.
    pub metrics: Vec<MetricSample>,
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Metric name (`snn_<subsystem>_<name>_<unit>`).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// The observed value.
    pub value: MetricValue,
}

/// A snapshot value, by metric kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Last-set gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// Histogram state in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Ascending inclusive upper bounds (excluding `+Inf`).
    pub bounds: Vec<f64>,
    /// Non-cumulative bucket counts; one per bound plus the overflow
    /// bucket.
    pub buckets: Vec<u64>,
    /// Total observation count.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// Renders a snapshot in Prometheus text exposition format 0.0.4.
///
/// Output is deterministic: metrics appear in snapshot (name) order and
/// floats use Rust's shortest `Display` form.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for sample in &snapshot.metrics {
        let name = &sample.name;
        let kind = match &sample.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        let _ = writeln!(out, "# HELP {name} {}", sample.help);
        let _ = writeln!(out, "# TYPE {name} {kind}");
        match &sample.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (bound, bucket) in h.bounds.iter().zip(&h.buckets) {
                    cumulative += bucket;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Site macros
// ---------------------------------------------------------------------------

/// Returns a `&'static Counter` registered in the global registry under
/// the given name, caching the lookup at the call site.
#[macro_export]
macro_rules! counter {
    ($name:expr, $help:expr) => {{
        static SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(
            SITE.get_or_init(|| $crate::metrics::global().counter($name, $help)),
        )
    }};
}

/// Returns a `&'static Gauge` registered in the global registry under the
/// given name, caching the lookup at the call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $help:expr) => {{
        static SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(SITE.get_or_init(|| $crate::metrics::global().gauge($name, $help)))
    }};
}

/// Returns a `&'static Histogram` registered in the global registry under
/// the given name (created with the given bounds), caching the lookup at
/// the call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $help:expr, $bounds:expr) => {{
        static SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(
            SITE.get_or_init(|| $crate::metrics::global().histogram($name, $help, $bounds)),
        )
    }};
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only shorthand
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("snn_test_total", "help");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same counter.
        r.counter("snn_test_total", "help").inc();
        assert_eq!(c.get(), 6);
        let g = r.gauge("snn_test_tau", "help");
        g.set(1.5);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn kind_collision_returns_detached_metric() {
        let r = Registry::new();
        let c = r.counter("snn_test_total", "help");
        c.inc();
        let g = r.gauge("snn_test_total", "help");
        g.set(9.0);
        // The registry still exports the original counter.
        assert_eq!(c.get(), 1);
        match &r.snapshot().metrics[0].value {
            MetricValue::Counter(v) => assert_eq!(*v, 1),
            other => panic!("expected counter, got {other:?}"),
        }
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive() {
        let h = Histogram::new(&[1.0, 2.0, 5.0]);
        h.observe(1.0); // exactly on the first edge → first bucket
        h.observe(1.0000001); // just above → second bucket
        h.observe(2.0); // exactly on the second edge → second bucket
        h.observe(5.0); // exactly on the last edge → third bucket
        h.observe(5.0000001); // above every edge → overflow
        h.observe(f64::NAN); // NaN → overflow
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 2]);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_sum_accumulates_exactly_for_representable_values() {
        let h = Histogram::new(&[10.0]);
        for _ in 0..8 {
            h.observe(0.25);
        }
        assert!((h.sum() - 2.0).abs() < 1e-12);
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let r = Registry::new();
        let c = r.counter("snn_test_concurrent_total", "help");
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per_thread);
    }

    #[test]
    fn concurrent_histogram_observations_count_exactly() {
        let h = Arc::new(Histogram::new(&[0.5, 1.0]));
        let threads = 8;
        let per_thread = 5_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..per_thread {
                        h.observe(0.25);
                    }
                });
            }
        });
        assert_eq!(h.count(), threads * per_thread);
        assert_eq!(h.bucket_counts()[0], threads * per_thread);
        assert!((h.sum() - 0.25 * (threads * per_thread) as f64).abs() < 1e-6);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::new();
        r.counter("snn_a_total", "a").add(3);
        r.gauge("snn_b_value", "b").set(0.5);
        r.histogram("snn_c_seconds", "c", &[1.0]).observe(0.5);
        let snap = r.snapshot();
        let text = serde::json::to_string(&snap);
        let back: MetricsSnapshot = serde::json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_orders_by_name() {
        let r = Registry::new();
        r.counter("snn_z_total", "z");
        r.counter("snn_a_total", "a");
        let names: Vec<String> = r.snapshot().metrics.into_iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["snn_a_total".to_string(), "snn_z_total".to_string()]);
    }

    #[test]
    fn site_macros_hit_the_global_registry() {
        counter!("snn_obs_selftest_total", "macro self-test").inc();
        let snap = global().snapshot();
        let sample = snap.metrics.iter().find(|m| m.name == "snn_obs_selftest_total").unwrap();
        match &sample.value {
            MetricValue::Counter(v) => assert!(*v >= 1),
            other => panic!("expected counter, got {other:?}"),
        }
        gauge!("snn_obs_selftest_value", "macro self-test").set(2.0);
        histogram!("snn_obs_selftest_seconds", "macro self-test", DURATION_BUCKETS).observe(0.01);
    }
}
