//! Hierarchical spans and the trace collector.
//!
//! Instrumented code opens a span with the [`span!`](crate::span!) macro
//! and holds the returned guard for the duration of the region:
//!
//! ```
//! let _g = snn_obs::span!("stage1.backward");
//! // … timed work …
//! ```
//!
//! When no [`Collector`] is installed (the default), entering a span is a
//! single relaxed atomic load — no allocation, no lock, no clock read —
//! so instrumentation can stay in release builds. When a collector *is*
//! installed (e.g. by the CLI's `--trace-out`), each guard records a
//! [`SpanRecord`] with its parent (the span that was current on this
//! thread when it opened), start/end times from the collector's
//! [`Clock`], and any attributes attached via [`SpanGuard::attr`].
//!
//! Spans nest per thread via an implicit thread-local current span.
//! Work handed to another thread does not inherit a parent implicitly:
//! capture [`current_id`] before spawning and open the child with
//! [`enter_with_parent`] inside the worker.

use crate::clock::{Clock, RealClock};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One finished span, as stored in a trace and serialized to JSONL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Unique id within the trace (allocation order).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Dotted span name, e.g. `"stage1.backward"`.
    pub name: String,
    /// Start time in microseconds on the collector's clock.
    pub start_us: u64,
    /// End time in microseconds on the collector's clock.
    pub end_us: u64,
    /// Attached `key=value` attributes, in attachment order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Wall-clock duration of the span.
    pub fn duration(&self) -> Duration {
        Duration::from_micros(self.end_us.saturating_sub(self.start_us))
    }
}

/// Thread-safe sink for finished spans.
pub struct Collector {
    clock: Arc<dyn Clock>,
    next_id: AtomicU64,
    finished: Mutex<Vec<SpanRecord>>,
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector").field("finished", &self.finished.lock().len()).finish()
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A collector timing spans on the process [`RealClock`].
    pub fn new() -> Self {
        Self::with_clock(Arc::new(RealClock))
    }

    /// A collector timing spans on `clock` (tests pass a
    /// [`ManualClock`](crate::clock::ManualClock) here for determinism).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self { clock, next_id: AtomicU64::new(1), finished: Mutex::new(Vec::new()) }
    }

    /// Snapshot of every span finished so far, in completion order.
    pub fn finished(&self) -> Vec<SpanRecord> {
        self.finished.lock().clone()
    }

    /// Renders the finished spans as JSON-lines text (one record per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.finished.lock().iter() {
            out.push_str(&serde::json::to_string(record));
            out.push('\n');
        }
        out
    }

    /// Writes the finished spans to `path` as JSONL.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_jsonl().as_bytes())
    }

    /// Takes every span finished so far out of the collector, leaving it
    /// empty. Ids keep incrementing across drains, so spans recorded
    /// afterwards never collide with already-drained ones.
    pub fn drain(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.finished.lock())
    }

    /// Reserves a fresh span id without recording anything — for
    /// pre-allocating a parent id that later records (emitted out of
    /// order, e.g. a per-worker wrapper span) will attach to.
    pub fn allocate_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Records an already-closed synthetic span of the given `duration`
    /// ending now on this collector's clock, and returns its id. This is
    /// how aggregate data that was never a live [`SpanGuard`] — kernel
    /// phase totals, per-worker wrappers — enters the trace.
    pub fn push_synthetic(
        &self,
        name: &str,
        parent: Option<u64>,
        duration: Duration,
        attrs: Vec<(String, String)>,
    ) -> u64 {
        let id = self.allocate_id();
        self.push_synthetic_with_id(id, name, parent, duration, attrs);
        id
    }

    /// [`Collector::push_synthetic`] with a caller-reserved id from
    /// [`Collector::allocate_id`].
    pub fn push_synthetic_with_id(
        &self,
        id: u64,
        name: &str,
        parent: Option<u64>,
        duration: Duration,
        attrs: Vec<(String, String)>,
    ) {
        // Anchor the start and derive the end, so the duration survives
        // even when the clock is still near its origin.
        let duration_us = u64::try_from(duration.as_micros()).unwrap_or(u64::MAX);
        let start_us = self.now_us().saturating_sub(duration_us);
        let end_us = start_us.saturating_add(duration_us);
        self.record(SpanRecord { id, parent, name: name.to_string(), start_us, end_us, attrs });
    }

    /// Adopts a batch of spans recorded by a *different* collector (e.g.
    /// shipped back from a worker process) into this one.
    ///
    /// Every span receives a fresh id from this collector and intra-batch
    /// parent links are remapped accordingly; batch roots — and orphans
    /// whose parent is not part of the batch (a worker died mid-chunk) —
    /// are re-parented onto `parent`, stitching the foreign subtree into
    /// this trace. Start/end timestamps are kept verbatim: they are on
    /// the foreign clock's origin, and the profile tree only consumes
    /// durations.
    pub fn adopt(&self, records: &[SpanRecord], parent: Option<u64>) -> AdoptStats {
        let remap: BTreeMap<u64, u64> =
            records.iter().map(|r| (r.id, self.allocate_id())).collect();
        let mut stats = AdoptStats::default();
        let mut batch = Vec::with_capacity(records.len());
        for record in records {
            let Some(&id) = remap.get(&record.id) else { continue };
            let new_parent = match record.parent.and_then(|p| remap.get(&p)) {
                Some(&p) => Some(p),
                None => {
                    stats.roots += 1;
                    stats.root_total += record.duration();
                    parent
                }
            };
            batch.push(SpanRecord {
                id,
                parent: new_parent,
                name: record.name.clone(),
                start_us: record.start_us,
                end_us: record.end_us,
                attrs: record.attrs.clone(),
            });
        }
        stats.adopted = batch.len();
        self.finished.lock().extend(batch);
        stats
    }

    fn record(&self, record: SpanRecord) {
        self.finished.lock().push(record);
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.clock.now().as_micros()).unwrap_or(u64::MAX)
    }
}

/// What [`Collector::adopt`] did with a foreign span batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdoptStats {
    /// Number of spans copied into the collector.
    pub adopted: usize,
    /// Number of spans re-parented onto the supplied parent: roots of
    /// the foreign batch plus orphans whose parent was absent from it.
    pub roots: usize,
    /// Summed duration of those re-parented spans.
    pub root_total: Duration,
}

/// Parses JSONL trace text back into span records (empty lines skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<SpanRecord>, serde::Error> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: SpanRecord = serde::json::from_str(line)
            .map_err(|e| serde::Error::msg(format!("trace line {}: {e}", i + 1)))?;
        out.push(record);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The installed (global) collector
// ---------------------------------------------------------------------------

/// Fast-path switch: `true` iff a collector is installed. The disabled
/// span path reads only this.
static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<Option<Arc<Collector>>> = RwLock::new(None);

thread_local! {
    /// Id of the span currently open on this thread, if any.
    static CURRENT: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Installs `collector` as the process-wide span sink, replacing (and
/// returning) any previous one.
pub fn install(collector: Arc<Collector>) -> Option<Arc<Collector>> {
    let prev = GLOBAL.write().replace(collector);
    ENABLED.store(true, Ordering::Release);
    prev
}

/// Removes the installed collector, if any, and returns it. Spans entered
/// afterwards are no-ops again.
pub fn uninstall() -> Option<Arc<Collector>> {
    let mut slot = GLOBAL.write();
    ENABLED.store(false, Ordering::Release);
    slot.take()
}

/// `true` when a collector is installed. Instrumented code can use this
/// to skip computing expensive attribute values.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed collector, if any (a cheap `Arc` clone) — for code that
/// needs more than span guards, e.g. adopting foreign spans or pushing
/// synthetic records.
pub fn installed() -> Option<Arc<Collector>> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    GLOBAL.read().clone()
}

/// Serializes tests — across modules and crates — that install the
/// process-global collector.
#[doc(hidden)]
pub fn global_test_lock() -> parking_lot::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
}

/// Id of the span currently open on this thread (to pass across a thread
/// boundary into [`enter_with_parent`]).
pub fn current_id() -> Option<u64> {
    CURRENT.with(Cell::get)
}

/// Opens a span named `name` under the thread's current span.
///
/// Prefer the [`span!`](crate::span!) macro at call sites. With no
/// collector installed this is one atomic load.
pub fn enter(name: &'static str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { active: None };
    }
    enter_slow(name, CURRENT.with(Cell::get))
}

/// Opens a span with an explicit parent (or as a root when `None`) —
/// for work that crosses a thread boundary, where the implicit
/// thread-local parent would be wrong.
pub fn enter_with_parent(name: &'static str, parent: Option<u64>) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { active: None };
    }
    enter_slow(name, parent)
}

fn enter_slow(name: &'static str, parent: Option<u64>) -> SpanGuard {
    let Some(collector) = GLOBAL.read().clone() else {
        return SpanGuard { active: None };
    };
    let id = collector.next_id.fetch_add(1, Ordering::Relaxed);
    let start_us = collector.now_us();
    let prev = CURRENT.with(|c| c.replace(Some(id)));
    SpanGuard {
        active: Some(ActiveSpan { collector, id, parent, prev, name, start_us, attrs: Vec::new() }),
    }
}

struct ActiveSpan {
    collector: Arc<Collector>,
    id: u64,
    parent: Option<u64>,
    prev: Option<u64>,
    name: &'static str,
    start_us: u64,
    attrs: Vec<(String, String)>,
}

/// RAII guard for an open span; the span closes when the guard drops.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl fmt::Debug for ActiveSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActiveSpan").field("id", &self.id).field("name", &self.name).finish()
    }
}

impl SpanGuard {
    /// Attaches a `key=value` attribute to the span (no-op when disabled).
    pub fn attr(&mut self, key: &str, value: impl fmt::Display) {
        if let Some(active) = &mut self.active {
            active.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// The span's trace id, or `None` when tracing is disabled.
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        let end_us = active.collector.now_us();
        CURRENT.with(|c| c.set(active.prev));
        active.collector.record(SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name.to_string(),
            start_us: active.start_us,
            end_us,
            attrs: active.attrs,
        });
    }
}

/// Opens a span named by the argument; bind the guard to keep it open:
/// `let _g = snn_obs::span!("stage1.backward");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::enter($name)
    };
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only shorthand
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn record(id: u64, parent: Option<u64>, name: &str, start_us: u64, end_us: u64) -> SpanRecord {
        SpanRecord { id, parent, name: name.to_string(), start_us, end_us, attrs: Vec::new() }
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _serial = global_test_lock();
        assert!(!enabled());
        let mut g = span!("noop");
        g.attr("k", 1);
        assert!(g.id().is_none());
        drop(g);
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let _serial = global_test_lock();
        let clock = Arc::new(ManualClock::new());
        install(Arc::new(Collector::with_clock(clock.clone())));
        {
            let outer = span!("outer");
            clock.advance(Duration::from_millis(10));
            {
                let inner = span!("inner");
                assert_eq!(current_id(), inner.id());
                clock.advance(Duration::from_millis(5));
            }
            assert_eq!(current_id(), outer.id());
            clock.advance(Duration::from_millis(1));
        }
        let collector = uninstall().unwrap();
        let spans = collector.finished();
        assert_eq!(spans.len(), 2);
        // Completion order: inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].parent, None);
        assert_eq!(spans[0].duration(), Duration::from_millis(5));
        assert_eq!(spans[1].duration(), Duration::from_millis(16));
        assert_eq!(current_id(), None);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let _serial = global_test_lock();
        install(Arc::new(Collector::with_clock(Arc::new(ManualClock::new()))));
        let root = span!("root");
        let root_id = root.id();
        let handle = std::thread::spawn(move || {
            // A fresh thread has no implicit parent…
            assert_eq!(current_id(), None);
            let w = enter_with_parent("worker", root_id);
            let got = w.id();
            drop(w);
            got
        });
        let worker_id = handle.join().unwrap();
        drop(root);
        let collector = uninstall().unwrap();
        let spans = collector.finished();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.parent, root_id);
        assert_eq!(Some(worker.id), worker_id);
    }

    #[test]
    fn jsonl_round_trips_including_attrs() {
        let _serial = global_test_lock();
        let collector = Arc::new(Collector::with_clock(Arc::new(ManualClock::new())));
        install(collector.clone());
        {
            let mut g = span!("with.attrs");
            g.attr("faults", 42);
            g.attr("mode", "collapsed");
        }
        uninstall();
        let text = collector.to_jsonl();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, collector.finished());
        assert_eq!(parsed[0].attrs[0], ("faults".to_string(), "42".to_string()));
    }

    #[test]
    fn parse_rejects_garbage_with_line_number() {
        let err = parse_jsonl("not json\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn drain_takes_spans_and_ids_keep_incrementing() {
        let collector = Collector::with_clock(Arc::new(ManualClock::new()));
        collector.push_synthetic("a", None, Duration::from_millis(1), Vec::new());
        let first = collector.drain();
        assert_eq!(first.len(), 1);
        assert!(collector.finished().is_empty());
        let second_id = collector.push_synthetic("b", None, Duration::from_millis(1), Vec::new());
        assert!(second_id > first[0].id, "ids must not collide across drains");
    }

    #[test]
    fn synthetic_records_carry_duration_and_attrs() {
        let clock = Arc::new(ManualClock::new());
        clock.advance(Duration::from_secs(10));
        let collector = Collector::with_clock(clock);
        let id = collector.push_synthetic(
            "phase.inject",
            Some(7),
            Duration::from_millis(250),
            vec![("count".to_string(), "42".to_string())],
        );
        let spans = collector.finished();
        assert_eq!(spans[0].id, id);
        assert_eq!(spans[0].parent, Some(7));
        assert_eq!(spans[0].duration(), Duration::from_millis(250));
        assert_eq!(spans[0].attrs[0].1, "42");
    }

    #[test]
    fn adopt_remaps_ids_and_stitches_parents() {
        // A foreign batch using ids 1..=3 — guaranteed to collide with
        // ids the local collector has already handed out.
        let foreign = vec![
            record(1, None, "cluster.chunk", 0, 5_000),
            record(2, Some(1), "faultsim.campaign", 0, 4_000),
            record(3, Some(2), "faultsim.worker", 0, 3_000),
        ];
        let local = Collector::with_clock(Arc::new(ManualClock::new()));
        let local_root = local.push_synthetic("worker:w0", None, Duration::ZERO, Vec::new());
        let stats = local.adopt(&foreign, Some(local_root));
        assert_eq!(stats.adopted, 3);
        assert_eq!(stats.roots, 1);
        assert_eq!(stats.root_total, Duration::from_micros(5_000));
        let spans = local.finished();
        let chunk = spans.iter().find(|s| s.name == "cluster.chunk").unwrap();
        let campaign = spans.iter().find(|s| s.name == "faultsim.campaign").unwrap();
        let worker = spans.iter().find(|s| s.name == "faultsim.worker").unwrap();
        // Fresh ids, intra-batch links preserved, root stitched under the
        // local wrapper.
        assert_ne!(chunk.id, 1);
        assert_eq!(chunk.parent, Some(local_root));
        assert_eq!(campaign.parent, Some(chunk.id));
        assert_eq!(worker.parent, Some(campaign.id));
    }

    #[test]
    fn adopt_reparents_orphans_onto_the_supplied_parent() {
        // Parent id 99 is not part of the batch (truncated worker trace).
        let foreign = vec![record(5, Some(99), "cluster.chunk", 0, 1_000)];
        let local = Collector::with_clock(Arc::new(ManualClock::new()));
        let stats = local.adopt(&foreign, Some(123));
        assert_eq!(stats.roots, 1);
        assert_eq!(local.finished()[0].parent, Some(123));
        // And with no parent supplied, orphans become roots.
        let stats = local.adopt(&foreign, None);
        assert_eq!(stats.adopted, 1);
        assert_eq!(local.finished()[1].parent, None);
    }

    #[test]
    fn installed_returns_the_global_collector() {
        let _serial = global_test_lock();
        assert!(installed().is_none());
        let collector = Arc::new(Collector::with_clock(Arc::new(ManualClock::new())));
        install(collector.clone());
        assert!(Arc::ptr_eq(&installed().unwrap(), &collector));
        uninstall();
        assert!(installed().is_none());
    }
}
