//! Hierarchical spans and the trace collector.
//!
//! Instrumented code opens a span with the [`span!`](crate::span!) macro
//! and holds the returned guard for the duration of the region:
//!
//! ```
//! let _g = snn_obs::span!("stage1.backward");
//! // … timed work …
//! ```
//!
//! When no [`Collector`] is installed (the default), entering a span is a
//! single relaxed atomic load — no allocation, no lock, no clock read —
//! so instrumentation can stay in release builds. When a collector *is*
//! installed (e.g. by the CLI's `--trace-out`), each guard records a
//! [`SpanRecord`] with its parent (the span that was current on this
//! thread when it opened), start/end times from the collector's
//! [`Clock`], and any attributes attached via [`SpanGuard::attr`].
//!
//! Spans nest per thread via an implicit thread-local current span.
//! Work handed to another thread does not inherit a parent implicitly:
//! capture [`current_id`] before spawning and open the child with
//! [`enter_with_parent`] inside the worker.

use crate::clock::{Clock, RealClock};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One finished span, as stored in a trace and serialized to JSONL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Unique id within the trace (allocation order).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Dotted span name, e.g. `"stage1.backward"`.
    pub name: String,
    /// Start time in microseconds on the collector's clock.
    pub start_us: u64,
    /// End time in microseconds on the collector's clock.
    pub end_us: u64,
    /// Attached `key=value` attributes, in attachment order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Wall-clock duration of the span.
    pub fn duration(&self) -> Duration {
        Duration::from_micros(self.end_us.saturating_sub(self.start_us))
    }
}

/// Thread-safe sink for finished spans.
pub struct Collector {
    clock: Arc<dyn Clock>,
    next_id: AtomicU64,
    finished: Mutex<Vec<SpanRecord>>,
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector").field("finished", &self.finished.lock().len()).finish()
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A collector timing spans on the process [`RealClock`].
    pub fn new() -> Self {
        Self::with_clock(Arc::new(RealClock))
    }

    /// A collector timing spans on `clock` (tests pass a
    /// [`ManualClock`](crate::clock::ManualClock) here for determinism).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self { clock, next_id: AtomicU64::new(1), finished: Mutex::new(Vec::new()) }
    }

    /// Snapshot of every span finished so far, in completion order.
    pub fn finished(&self) -> Vec<SpanRecord> {
        self.finished.lock().clone()
    }

    /// Renders the finished spans as JSON-lines text (one record per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.finished.lock().iter() {
            out.push_str(&serde::json::to_string(record));
            out.push('\n');
        }
        out
    }

    /// Writes the finished spans to `path` as JSONL.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_jsonl().as_bytes())
    }

    fn record(&self, record: SpanRecord) {
        self.finished.lock().push(record);
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.clock.now().as_micros()).unwrap_or(u64::MAX)
    }
}

/// Parses JSONL trace text back into span records (empty lines skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<SpanRecord>, serde::Error> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: SpanRecord = serde::json::from_str(line)
            .map_err(|e| serde::Error::msg(format!("trace line {}: {e}", i + 1)))?;
        out.push(record);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The installed (global) collector
// ---------------------------------------------------------------------------

/// Fast-path switch: `true` iff a collector is installed. The disabled
/// span path reads only this.
static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<Option<Arc<Collector>>> = RwLock::new(None);

thread_local! {
    /// Id of the span currently open on this thread, if any.
    static CURRENT: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Installs `collector` as the process-wide span sink, replacing (and
/// returning) any previous one.
pub fn install(collector: Arc<Collector>) -> Option<Arc<Collector>> {
    let prev = GLOBAL.write().replace(collector);
    ENABLED.store(true, Ordering::Release);
    prev
}

/// Removes the installed collector, if any, and returns it. Spans entered
/// afterwards are no-ops again.
pub fn uninstall() -> Option<Arc<Collector>> {
    let mut slot = GLOBAL.write();
    ENABLED.store(false, Ordering::Release);
    slot.take()
}

/// `true` when a collector is installed. Instrumented code can use this
/// to skip computing expensive attribute values.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Id of the span currently open on this thread (to pass across a thread
/// boundary into [`enter_with_parent`]).
pub fn current_id() -> Option<u64> {
    CURRENT.with(Cell::get)
}

/// Opens a span named `name` under the thread's current span.
///
/// Prefer the [`span!`](crate::span!) macro at call sites. With no
/// collector installed this is one atomic load.
pub fn enter(name: &'static str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { active: None };
    }
    enter_slow(name, CURRENT.with(Cell::get))
}

/// Opens a span with an explicit parent (or as a root when `None`) —
/// for work that crosses a thread boundary, where the implicit
/// thread-local parent would be wrong.
pub fn enter_with_parent(name: &'static str, parent: Option<u64>) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { active: None };
    }
    enter_slow(name, parent)
}

fn enter_slow(name: &'static str, parent: Option<u64>) -> SpanGuard {
    let Some(collector) = GLOBAL.read().clone() else {
        return SpanGuard { active: None };
    };
    let id = collector.next_id.fetch_add(1, Ordering::Relaxed);
    let start_us = collector.now_us();
    let prev = CURRENT.with(|c| c.replace(Some(id)));
    SpanGuard {
        active: Some(ActiveSpan { collector, id, parent, prev, name, start_us, attrs: Vec::new() }),
    }
}

struct ActiveSpan {
    collector: Arc<Collector>,
    id: u64,
    parent: Option<u64>,
    prev: Option<u64>,
    name: &'static str,
    start_us: u64,
    attrs: Vec<(String, String)>,
}

/// RAII guard for an open span; the span closes when the guard drops.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl fmt::Debug for ActiveSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActiveSpan").field("id", &self.id).field("name", &self.name).finish()
    }
}

impl SpanGuard {
    /// Attaches a `key=value` attribute to the span (no-op when disabled).
    pub fn attr(&mut self, key: &str, value: impl fmt::Display) {
        if let Some(active) = &mut self.active {
            active.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// The span's trace id, or `None` when tracing is disabled.
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        let end_us = active.collector.now_us();
        CURRENT.with(|c| c.set(active.prev));
        active.collector.record(SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name.to_string(),
            start_us: active.start_us,
            end_us,
            attrs: active.attrs,
        });
    }
}

/// Opens a span named by the argument; bind the guard to keep it open:
/// `let _g = snn_obs::span!("stage1.backward");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::enter($name)
    };
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only shorthand
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    /// Serializes tests that install the process-global collector.
    static GLOBAL_TEST: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_are_inert() {
        let _serial = GLOBAL_TEST.lock();
        assert!(!enabled());
        let mut g = span!("noop");
        g.attr("k", 1);
        assert!(g.id().is_none());
        drop(g);
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let _serial = GLOBAL_TEST.lock();
        let clock = Arc::new(ManualClock::new());
        install(Arc::new(Collector::with_clock(clock.clone())));
        {
            let outer = span!("outer");
            clock.advance(Duration::from_millis(10));
            {
                let inner = span!("inner");
                assert_eq!(current_id(), inner.id());
                clock.advance(Duration::from_millis(5));
            }
            assert_eq!(current_id(), outer.id());
            clock.advance(Duration::from_millis(1));
        }
        let collector = uninstall().unwrap();
        let spans = collector.finished();
        assert_eq!(spans.len(), 2);
        // Completion order: inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].parent, None);
        assert_eq!(spans[0].duration(), Duration::from_millis(5));
        assert_eq!(spans[1].duration(), Duration::from_millis(16));
        assert_eq!(current_id(), None);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let _serial = GLOBAL_TEST.lock();
        install(Arc::new(Collector::with_clock(Arc::new(ManualClock::new()))));
        let root = span!("root");
        let root_id = root.id();
        let handle = std::thread::spawn(move || {
            // A fresh thread has no implicit parent…
            assert_eq!(current_id(), None);
            let w = enter_with_parent("worker", root_id);
            let got = w.id();
            drop(w);
            got
        });
        let worker_id = handle.join().unwrap();
        drop(root);
        let collector = uninstall().unwrap();
        let spans = collector.finished();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.parent, root_id);
        assert_eq!(Some(worker.id), worker_id);
    }

    #[test]
    fn jsonl_round_trips_including_attrs() {
        let _serial = GLOBAL_TEST.lock();
        let collector = Arc::new(Collector::with_clock(Arc::new(ManualClock::new())));
        install(collector.clone());
        {
            let mut g = span!("with.attrs");
            g.attr("faults", 42);
            g.attr("mode", "collapsed");
        }
        uninstall();
        let text = collector.to_jsonl();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, collector.finished());
        assert_eq!(parsed[0].attrs[0], ("faults".to_string(), "42".to_string()));
    }

    #[test]
    fn parse_rejects_garbage_with_line_number() {
        let err = parse_jsonl("not json\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }
}
