//! The workspace span-name registry.
//!
//! Every `span!("…")` / [`crate::trace::enter_with_parent`] name used by
//! production code is declared here, so span names stay greppable, stable
//! across refactors, and consistent between the profile tree and any
//! external trace consumer. `snn-lint`'s L-OBS pass cross-checks the two
//! directions: a span name used in `crates/*/src` but missing here is a
//! finding, and so is a registry entry no instrumentation site uses.
//!
//! Naming convention: `<subsystem>[.<operation>]`, lowercase, dot-separated
//! (`generate.calibrate`, `cluster.chunk`). Nesting in the profile tree
//! comes from guard scopes at runtime, not from the name, but the dotted
//! prefix should still reflect the intended parent.
//!
//! *Synthetic* spans — records pushed wholesale via
//! [`Collector::push_synthetic`](crate::trace::Collector::push_synthetic)
//! rather than opened by a guard at an instrumentation site — are outside
//! this registry: their names are dynamic (`phase.inject`,
//! `phase.forward.l3`, `worker:<name>`), so there is no literal site for
//! L-OBS to cross-check. The stable prefixes are `phase.` for
//! kernel-phase totals — including the packed engine's `phase.pack.plan`
//! / `phase.pack.assign` / `phase.pack.run` rows — and `worker:` for
//! per-worker trace subtrees.

/// Every production span name, grouped by subsystem, each group sorted.
pub const SPAN_NAMES: &[&str] = &[
    // snn-analyze: static pre-analysis of the network.
    "analyze",
    "analyze.collapse",
    "analyze.intervals",
    // snn-batch: the bit-packed fault-parallel engine.
    "batch.pack",
    "batch.plan",
    // snn-cluster + the service's worker-message handler.
    "cluster.campaign",
    "cluster.chunk",
    "cluster.worker_msg",
    // snn-faults: fault-simulation campaigns.
    "faultsim.baseline",
    "faultsim.campaign",
    "faultsim.worker",
    // snn-testgen: the two-stage test generator.
    "generate",
    "generate.calibrate",
    "generate.iteration",
    "stage1",
    "stage1.backward",
    "stage1.losses",
    "stage2",
    "stage2.backward",
    // snn-reliability: reliability-impact campaigns.
    "reliability.chunk",
    "reliability.prepare",
    // snn-model: forward/backward simulation kernels.
    "snn.backward",
    "snn.forward",
];

/// `true` when `name` is a declared span name.
pub fn is_declared(name: &str) -> bool {
    SPAN_NAMES.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_within_groups_and_duplicate_free() {
        let mut seen = std::collections::BTreeSet::new();
        for name in SPAN_NAMES {
            assert!(seen.insert(*name), "duplicate span name {name:?}");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "span name {name:?} breaks the lowercase dotted convention"
            );
        }
    }

    #[test]
    fn is_declared_matches_membership() {
        assert!(is_declared("generate.calibrate"));
        assert!(!is_declared("no.such.span"));
    }
}
