//! Deliberate lock-order inversion: proves the vendored `parking_lot`
//! runtime detector actually fires for the service's registered order.
//!
//! Debug builds only — the detector compiles out in release, where this
//! file is empty.

#![cfg(debug_assertions)]

use parking_lot::Mutex;

#[test]
fn inverting_the_documented_service_order_panics() {
    snn_service::lock_order::register();
    let queue = Mutex::named("service.queue", ());
    let jobs = Mutex::named("service.store.jobs", ());

    // The documented direction is fine: queue before store.jobs.
    {
        let _q = queue.lock();
        let _j = jobs.lock();
    }

    // The inversion must panic, naming both locks and both acquisition
    // sites.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _j = jobs.lock();
        let _q = queue.lock();
    }));
    let payload = result.expect_err("lock-order inversion must panic under debug_assertions");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload is a message");
    assert!(msg.contains("lock-order violation"), "unexpected panic message: {msg}");
    assert!(msg.contains("service.queue"), "message must name the violating lock: {msg}");
    assert!(msg.contains("service.store.jobs"), "message must name the held lock: {msg}");
    assert!(msg.contains("lock_order.rs"), "message must carry acquisition sites: {msg}");
}

#[test]
fn cluster_locks_rank_after_every_service_lock() {
    snn_service::lock_order::register();
    let queue = Mutex::named("service.queue", ());
    let coordinator = Mutex::named("cluster.coordinator", ());

    // Documented direction: the coordinator may be taken while a service
    // lock is held (the scheduler hands work to the coordinator from the
    // job execution path).
    {
        let _q = queue.lock();
        let _c = coordinator.lock();
    }

    // The reverse — touching service state while holding the coordinator
    // — is the cross-crate deadlock this PR's lock registry exists to
    // catch, and must panic deterministically.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _c = coordinator.lock();
        let _q = queue.lock();
    }));
    let payload = result.expect_err("coordinator-then-queue must panic under debug_assertions");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload is a message");
    assert!(msg.contains("lock-order violation"), "unexpected panic message: {msg}");
    assert!(msg.contains("cluster.coordinator"), "message must name the held lock: {msg}");
    assert!(msg.contains("service.queue"), "message must name the violating lock: {msg}");
}

#[test]
fn analysis_cache_is_a_leaf_lock() {
    snn_service::lock_order::register();
    let cache = parking_lot::Mutex::named("service.analysis.cache", ());
    let queue = parking_lot::Mutex::named("service.queue", ());

    // Documented direction: any service lock may be held when the cache
    // is taken.
    {
        let _q = queue.lock();
        let _c = cache.lock();
    }

    // Acquiring anything while holding the cache is an inversion and
    // must panic deterministically.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _c = cache.lock();
        let _q = queue.lock();
    }));
    let payload = result.expect_err("cache-then-queue must panic under debug_assertions");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload is a message");
    assert!(msg.contains("lock-order violation"), "unexpected panic message: {msg}");
    assert!(msg.contains("service.analysis.cache"), "message must name the held lock: {msg}");
}
