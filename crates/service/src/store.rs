//! Persistent job store: one JSON file per job under
//! `<state-dir>/jobs/`, rewritten (atomically, via temp file + rename) on
//! every state change, so a restarted server recovers every record.

use crate::protocol::{JobRecord, JobSpec, JobState};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Current Unix time in milliseconds.
pub fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

/// Thread-safe, disk-backed map of job records.
#[derive(Debug)]
pub struct JobStore {
    state_dir: PathBuf,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    next_id: AtomicU64,
    /// Ids of jobs recovered from disk in `Queued` state (sorted); the
    /// server re-enqueues these on startup.
    recovered_queued: Vec<u64>,
}

impl JobStore {
    /// Opens (creating if needed) the store under `state_dir` and loads
    /// every persisted record.
    ///
    /// Recovery policy: jobs found `Running` were interrupted by the
    /// previous shutdown/crash and are marked `Failed`; jobs found
    /// `Queued` never started and are kept queued (the server re-enqueues
    /// them); terminal jobs load as-is. Unreadable job files are skipped.
    pub fn open(state_dir: impl Into<PathBuf>) -> io::Result<Self> {
        crate::lock_order::register();
        let state_dir = state_dir.into();
        fs::create_dir_all(state_dir.join("jobs"))?;
        fs::create_dir_all(state_dir.join("results"))?;

        let mut jobs = HashMap::new();
        let mut recovered_queued = Vec::new();
        let mut max_id = 0u64;
        for entry in fs::read_dir(state_dir.join("jobs"))? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Some(mut record) = read_record(&path) else { continue };
            match record.state {
                JobState::Running => {
                    record.state = JobState::Failed;
                    record.error = Some("interrupted by server restart".into());
                    record.finished_at_ms = Some(now_ms());
                    let _ = persist(&state_dir, &record);
                }
                JobState::Queued => recovered_queued.push(record.id),
                _ => {}
            }
            max_id = max_id.max(record.id);
            jobs.insert(record.id, record);
        }
        recovered_queued.sort_unstable();

        Ok(Self {
            state_dir,
            jobs: Mutex::named("service.store.jobs", jobs),
            next_id: AtomicU64::new(max_id + 1),
            recovered_queued,
        })
    }

    /// The state directory this store persists into.
    pub fn state_dir(&self) -> &Path {
        &self.state_dir
    }

    /// Jobs recovered from disk still in `Queued` state, ascending.
    pub fn recovered_queued(&self) -> &[u64] {
        &self.recovered_queued
    }

    /// Number of known jobs.
    pub fn len(&self) -> usize {
        self.jobs.lock().len()
    }

    /// `true` when no jobs are known.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Creates, persists and returns a new `Queued` record for `spec`.
    pub fn submit(&self, spec: JobSpec) -> JobRecord {
        let record = JobRecord {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            spec,
            state: JobState::Queued,
            submitted_at_ms: now_ms(),
            started_at_ms: None,
            finished_at_ms: None,
            progress: None,
            result: None,
            error: None,
        };
        self.jobs.lock().insert(record.id, record.clone());
        let _ = persist(&self.state_dir, &record);
        record
    }

    /// A snapshot of one record.
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        self.jobs.lock().get(&id).cloned()
    }

    /// Snapshots of every record, ascending by id.
    pub fn list(&self) -> Vec<JobRecord> {
        let mut all: Vec<JobRecord> = self.jobs.lock().values().cloned().collect();
        all.sort_by_key(|r| r.id);
        all
    }

    /// Applies `f` to the record, persists the result, and returns the
    /// updated snapshot. `None` for unknown ids.
    pub fn update(&self, id: u64, f: impl FnOnce(&mut JobRecord)) -> Option<JobRecord> {
        let updated = {
            let mut jobs = self.jobs.lock();
            let record = jobs.get_mut(&id)?;
            f(record);
            record.clone()
        };
        let _ = persist(&self.state_dir, &updated);
        Some(updated)
    }

    /// Updates only the in-memory progress snapshot of a record — called
    /// on the hot path for every progress event, so it skips the disk
    /// write (`update` persists progress alongside the next state change).
    pub fn update_progress_in_memory(
        &self,
        id: u64,
        progress: snn_faults::progress::Progress,
    ) -> bool {
        let mut jobs = self.jobs.lock();
        match jobs.get_mut(&id) {
            Some(record) => {
                record.progress = Some(progress);
                true
            }
            None => false,
        }
    }

    /// The server-side path generated artifacts of job `id` live under.
    pub fn result_path(&self, id: u64, extension: &str) -> PathBuf {
        self.state_dir.join("results").join(format!("job-{id}.{extension}"))
    }
}

fn job_path(state_dir: &Path, id: u64) -> PathBuf {
    state_dir.join("jobs").join(format!("job-{id}.json"))
}

fn read_record(path: &Path) -> Option<JobRecord> {
    let text = fs::read_to_string(path).ok()?;
    serde::json::from_str(&text).ok()
}

fn persist(state_dir: &Path, record: &JobRecord) -> io::Result<()> {
    let path = job_path(state_dir, record.id);
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, serde::json::to_string_pretty(record))?;
    fs::rename(&tmp, &path)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only shorthand
mod tests {
    use super::*;
    use crate::protocol::{JobResult, JobSpec};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("snn-service-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> JobSpec {
        JobSpec::synthetic_repro(4, vec![8], 2, 1)
    }

    #[test]
    fn submit_assigns_increasing_ids_and_persists() {
        let dir = tmp_dir("submit");
        let store = JobStore::open(&dir).unwrap();
        let a = store.submit(spec());
        let b = store.submit(spec());
        assert!(b.id > a.id);
        assert_eq!(store.list().len(), 2);
        assert!(job_path(&dir, a.id).is_file());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_survive_reopen_and_ids_continue() {
        let dir = tmp_dir("reopen");
        let done_id;
        {
            let store = JobStore::open(&dir).unwrap();
            let a = store.submit(spec());
            done_id = a.id;
            store.update(a.id, |r| {
                r.state = JobState::Done;
                r.result = Some(JobResult {
                    chunks: 1,
                    test_steps: 10,
                    activated: 5,
                    total_neurons: 10,
                    activation_coverage: 0.5,
                    runtime_ms: 12,
                    faults_total: None,
                    faults_detected: None,
                    fault_coverage: None,
                    events_path: None,
                    analysis: None,
                    timings: None,
                    verdict_digest: None,
                });
            });
        }
        let store = JobStore::open(&dir).unwrap();
        let rec = store.get(done_id).expect("record survived restart");
        assert_eq!(rec.state, JobState::Done);
        assert_eq!(rec.result.as_ref().unwrap().test_steps, 10);
        let fresh = store.submit(spec());
        assert!(fresh.id > done_id, "id allocation continues after restart");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_fails_running_jobs_and_requeues_queued_ones() {
        let dir = tmp_dir("recovery");
        let (running_id, queued_id);
        {
            let store = JobStore::open(&dir).unwrap();
            let a = store.submit(spec());
            running_id = a.id;
            store.update(a.id, |r| r.state = JobState::Running);
            queued_id = store.submit(spec()).id;
        }
        let store = JobStore::open(&dir).unwrap();
        let interrupted = store.get(running_id).unwrap();
        assert_eq!(interrupted.state, JobState::Failed);
        assert!(interrupted.error.as_ref().unwrap().contains("restart"));
        assert_eq!(store.recovered_queued(), &[queued_id]);
        assert_eq!(store.get(queued_id).unwrap().state, JobState::Queued);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_ids_are_none() {
        let dir = tmp_dir("unknown");
        let store = JobStore::open(&dir).unwrap();
        assert!(store.get(999).is_none());
        assert!(store.update(999, |_| ()).is_none());
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
