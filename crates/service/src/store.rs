//! Persistent job store: one JSON file per job under
//! `<state-dir>/jobs/`, rewritten (atomically, via temp file + rename) on
//! every state change, so a restarted server recovers every record.

use crate::protocol::{JobRecord, JobSpec, JobState, JOB_SCHEMA_VERSION};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Current Unix time in milliseconds.
pub fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

/// Thread-safe, disk-backed map of job records.
#[derive(Debug)]
pub struct JobStore {
    state_dir: PathBuf,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    next_id: AtomicU64,
    /// Ids of jobs recovered from disk in `Queued` state (sorted); the
    /// server re-enqueues these on startup.
    recovered_queued: Vec<u64>,
}

impl JobStore {
    /// Opens (creating if needed) the store under `state_dir` and loads
    /// every persisted record.
    ///
    /// Recovery policy: jobs found `Running` were interrupted by the
    /// previous shutdown/crash and are marked `Failed`; jobs found
    /// `Queued` never started and are kept queued (the server re-enqueues
    /// them); terminal jobs load as-is. Unreadable job files are skipped.
    pub fn open(state_dir: impl Into<PathBuf>) -> io::Result<Self> {
        crate::lock_order::register();
        let state_dir = state_dir.into();
        fs::create_dir_all(state_dir.join("jobs"))?;
        fs::create_dir_all(state_dir.join("results"))?;

        let mut jobs = HashMap::new();
        let mut recovered_queued = Vec::new();
        let mut max_id = 0u64;
        for entry in fs::read_dir(state_dir.join("jobs"))? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Some(mut record) = read_record(&path) else { continue };
            match record.state {
                JobState::Running => {
                    record.state = JobState::Failed;
                    record.error = Some("interrupted by server restart".into());
                    record.finished_at_ms = Some(now_ms());
                    let _ = persist(&state_dir, &record);
                }
                JobState::Queued => recovered_queued.push(record.id),
                _ => {}
            }
            max_id = max_id.max(record.id);
            jobs.insert(record.id, record);
        }
        recovered_queued.sort_unstable();

        Ok(Self {
            state_dir,
            jobs: Mutex::named("service.store.jobs", jobs),
            next_id: AtomicU64::new(max_id + 1),
            recovered_queued,
        })
    }

    /// The state directory this store persists into.
    pub fn state_dir(&self) -> &Path {
        &self.state_dir
    }

    /// Jobs recovered from disk still in `Queued` state, ascending.
    pub fn recovered_queued(&self) -> &[u64] {
        &self.recovered_queued
    }

    /// Number of known jobs.
    pub fn len(&self) -> usize {
        self.jobs.lock().len()
    }

    /// `true` when no jobs are known.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Creates, persists and returns a new `Queued` record for `spec`.
    pub fn submit(&self, spec: JobSpec) -> JobRecord {
        let record = JobRecord {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            spec,
            state: JobState::Queued,
            submitted_at_ms: now_ms(),
            started_at_ms: None,
            finished_at_ms: None,
            progress: None,
            result: None,
            error: None,
            schema: Some(JOB_SCHEMA_VERSION),
        };
        self.jobs.lock().insert(record.id, record.clone());
        let _ = persist(&self.state_dir, &record);
        record
    }

    /// A snapshot of one record.
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        self.jobs.lock().get(&id).cloned()
    }

    /// Snapshots of every record, ascending by id.
    pub fn list(&self) -> Vec<JobRecord> {
        let mut all: Vec<JobRecord> = self.jobs.lock().values().cloned().collect();
        all.sort_by_key(|r| r.id);
        all
    }

    /// Applies `f` to the record, persists the result, and returns the
    /// updated snapshot. `None` for unknown ids.
    pub fn update(&self, id: u64, f: impl FnOnce(&mut JobRecord)) -> Option<JobRecord> {
        let updated = {
            let mut jobs = self.jobs.lock();
            let record = jobs.get_mut(&id)?;
            f(record);
            record.clone()
        };
        let _ = persist(&self.state_dir, &updated);
        Some(updated)
    }

    /// Updates only the in-memory progress snapshot of a record — called
    /// on the hot path for every progress event, so it skips the disk
    /// write (`update` persists progress alongside the next state change).
    pub fn update_progress_in_memory(
        &self,
        id: u64,
        progress: snn_faults::progress::Progress,
    ) -> bool {
        let mut jobs = self.jobs.lock();
        match jobs.get_mut(&id) {
            Some(record) => {
                record.progress = Some(progress);
                true
            }
            None => false,
        }
    }

    /// The server-side path generated artifacts of job `id` live under.
    pub fn result_path(&self, id: u64, extension: &str) -> PathBuf {
        self.state_dir.join("results").join(format!("job-{id}.{extension}"))
    }
}

fn job_path(state_dir: &Path, id: u64) -> PathBuf {
    state_dir.join("jobs").join(format!("job-{id}.json"))
}

fn read_record(path: &Path) -> Option<JobRecord> {
    let text = fs::read_to_string(path).ok()?;
    serde::json::from_str(&text).ok()
}

fn persist(state_dir: &Path, record: &JobRecord) -> io::Result<()> {
    let path = job_path(state_dir, record.id);
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, serde::json::to_string_pretty(record))?;
    fs::rename(&tmp, &path)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only shorthand
mod tests {
    use super::*;
    use crate::protocol::{JobResult, JobSpec};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("snn-service-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> JobSpec {
        JobSpec::synthetic_repro(4, vec![8], 2, 1)
    }

    #[test]
    fn submit_assigns_increasing_ids_and_persists() {
        let dir = tmp_dir("submit");
        let store = JobStore::open(&dir).unwrap();
        let a = store.submit(spec());
        let b = store.submit(spec());
        assert!(b.id > a.id);
        assert_eq!(store.list().len(), 2);
        assert!(job_path(&dir, a.id).is_file());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_survive_reopen_and_ids_continue() {
        let dir = tmp_dir("reopen");
        let done_id;
        {
            let store = JobStore::open(&dir).unwrap();
            let a = store.submit(spec());
            done_id = a.id;
            store.update(a.id, |r| {
                r.state = JobState::Done;
                r.result = Some(JobResult {
                    chunks: 1,
                    test_steps: 10,
                    activated: 5,
                    total_neurons: 10,
                    activation_coverage: 0.5,
                    runtime_ms: 12,
                    faults_total: None,
                    faults_detected: None,
                    fault_coverage: None,
                    events_path: None,
                    analysis: None,
                    timings: None,
                    verdict_digest: None,
                    reliability: None,
                    engine: None,
                });
            });
        }
        let store = JobStore::open(&dir).unwrap();
        let rec = store.get(done_id).expect("record survived restart");
        assert_eq!(rec.state, JobState::Done);
        assert_eq!(rec.result.as_ref().unwrap().test_steps, 10);
        let fresh = store.submit(spec());
        assert!(fresh.id > done_id, "id allocation continues after restart");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_fails_running_jobs_and_requeues_queued_ones() {
        let dir = tmp_dir("recovery");
        let (running_id, queued_id);
        {
            let store = JobStore::open(&dir).unwrap();
            let a = store.submit(spec());
            running_id = a.id;
            store.update(a.id, |r| r.state = JobState::Running);
            queued_id = store.submit(spec()).id;
        }
        let store = JobStore::open(&dir).unwrap();
        let interrupted = store.get(running_id).unwrap();
        assert_eq!(interrupted.state, JobState::Failed);
        assert!(interrupted.error.as_ref().unwrap().contains("restart"));
        assert_eq!(store.recovered_queued(), &[queued_id]);
        assert_eq!(store.get(queued_id).unwrap().state, JobState::Queued);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn submitted_records_carry_the_current_schema_version() {
        let dir = tmp_dir("schema");
        let store = JobStore::open(&dir).unwrap();
        let rec = store.submit(spec());
        assert_eq!(rec.schema, Some(JOB_SCHEMA_VERSION));
        let on_disk = fs::read_to_string(job_path(&dir, rec.id)).unwrap();
        assert!(on_disk.contains("\"schema\""), "schema field persisted: {on_disk}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_through_v3_job_records_still_load() {
        // Pinned on-disk shapes from earlier servers. v1 predates the
        // analysis/timings fields, v2 predates the verdict digest, v3
        // predates the schema-version and reliability fields. Every
        // schema change has been an additive Option, so all three must
        // load through the normal recovery path.
        let spec_json = "{\"model\":{\"Synthetic\":{\"inputs\":4,\"hidden\":[8],\"outputs\":2,\
                         \"seed\":1}},\"preset\":\"repro\",\"seed\":1,\"max_iterations\":null,\
                         \"t_limit_secs\":null,\"evaluate_coverage\":false,\"threads\":0}";
        let v1 = format!(
            "{{\"id\":1,\"spec\":{spec_json},\"state\":\"Done\",\"submitted_at_ms\":100,\
             \"started_at_ms\":110,\"finished_at_ms\":200,\"progress\":null,\"result\":{{\
             \"chunks\":1,\"test_steps\":10,\"activated\":2,\"total_neurons\":4,\
             \"activation_coverage\":0.5,\"runtime_ms\":3,\"faults_total\":null,\
             \"faults_detected\":null,\"fault_coverage\":null,\"events_path\":null}},\
             \"error\":null}}"
        );
        let v2 = format!(
            "{{\"id\":2,\"spec\":{spec_json},\"state\":\"Failed\",\"submitted_at_ms\":300,\
             \"started_at_ms\":310,\"finished_at_ms\":400,\"progress\":null,\"result\":null,\
             \"error\":\"boom\"}}"
        );
        let v3 = format!(
            "{{\"id\":3,\"spec\":{spec_json},\"state\":\"Done\",\"submitted_at_ms\":500,\
             \"started_at_ms\":510,\"finished_at_ms\":600,\"progress\":null,\"result\":{{\
             \"chunks\":1,\"test_steps\":10,\"activated\":2,\"total_neurons\":4,\
             \"activation_coverage\":0.5,\"runtime_ms\":3,\"faults_total\":8,\
             \"faults_detected\":6,\"fault_coverage\":0.75,\"events_path\":null,\
             \"analysis\":null,\"timings\":null,\
             \"verdict_digest\":\"cbf29ce484222325\"}},\"error\":null}}"
        );

        let dir = tmp_dir("back-compat");
        fs::create_dir_all(dir.join("jobs")).unwrap();
        for (id, text) in [(1, &v1), (2, &v2), (3, &v3)] {
            fs::write(job_path(&dir, id), text).unwrap();
        }
        let store = JobStore::open(&dir).unwrap();
        assert_eq!(store.len(), 3);

        let r1 = store.get(1).unwrap();
        assert_eq!(r1.state, JobState::Done);
        assert_eq!(r1.schema, None, "pre-v4 records have no schema stamp");
        let res1 = r1.result.unwrap();
        assert!(res1.verdict_digest.is_none() && res1.reliability.is_none());

        let r2 = store.get(2).unwrap();
        assert_eq!(r2.state, JobState::Failed);
        assert_eq!(r2.error.as_deref(), Some("boom"));

        let r3 = store.get(3).unwrap();
        let res3 = r3.result.unwrap();
        assert_eq!(res3.verdict_digest.as_deref(), Some("cbf29ce484222325"));
        assert!(res3.reliability.is_none());
        assert_eq!(r3.schema, None);

        // Id allocation continues past recovered records.
        assert!(store.submit(spec()).id > 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_ids_are_none() {
        let dir = tmp_dir("unknown");
        let store = JobStore::open(&dir).unwrap();
        assert!(store.get(999).is_none());
        assert!(store.update(999, |_| ()).is_none());
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
