//! The service crate's documented lock acquisition order.
//!
//! Every `Mutex`/`RwLock` in this crate is constructed with
//! `Mutex::named(..)` using a name from [`LOCK_ORDER`] — enforced
//! statically by the `snn-lint` pass `L-LOCK` — and the order itself is
//! enforced at runtime, in debug builds only, by the vendored
//! `parking_lot`'s lock-order detector: acquiring a lock while holding
//! one that ranks after it panics immediately with both acquisition
//! sites, turning a timing-dependent ABBA deadlock into a deterministic
//! single-run test failure.

/// Lock names in their required acquisition order (earlier first).
///
/// Since the guard narrowing driven by `snn-lint`'s `L-HELDLOCK` pass
/// (DESIGN.md §15), no service lock nests inside another in practice —
/// the static acquisition graph built by `L-LOCKGRAPH` has no edges
/// among these locks. The ranks are kept anyway: they document the only
/// nestings that would ever be legal, and the runtime detector still
/// catches regressions reaching a lock through a path the static pass
/// cannot see (trait objects, function pointers).
///
/// * `service.queue` guards only the queue itself: the capacity check,
///   the push and the pop each take it briefly. `JobStore::submit`
///   persists to disk and therefore runs *between* two short queue
///   critical sections, not under one.
/// * `service.sink.last_persist` guards only the throttle decision on
///   the progress path; the persisting `JobStore::update` runs after the
///   guard is released.
/// * `service.running` is held only to insert/remove/clone cancellation
///   tokens — tokens are cloned out before `cancel()` is called. It sits
///   between the queue and the store so a future "queue → running"
///   handoff under both locks would stay legal.
/// * `service.bus.subscribers` ranks second-to-last: event fan-out must
///   never acquire another service lock while delivering (the analysis
///   cache is never touched from the event path).
/// * `service.analysis.cache` ranks last among the service locks: it is
///   a leaf — the cache is locked only for a point lookup or insert,
///   never while computing an analysis and never while holding it
///   acquiring anything else.
/// * The `cluster.*` locks rank after every service lock; see
///   `snn_cluster::lock_order` for their rationale. The two lists must
///   stay identical (first registration wins process-wide) — a test
///   below pins them together.
pub const LOCK_ORDER: &[&str] = &[
    "service.queue",
    "service.running",
    "service.sink.last_persist",
    "service.store.jobs",
    "service.bus.subscribers",
    "service.analysis.cache",
    "cluster.coordinator",
    "cluster.worker.session",
];

/// Registers [`LOCK_ORDER`] with the runtime detector. Idempotent —
/// every entry point (server bind, store open, bus construction) calls
/// it defensively so partial uses of the crate are still checked.
pub fn register() {
    parking_lot::lock_order::register(LOCK_ORDER);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_names_are_unique_and_prefixed() {
        for (i, name) in LOCK_ORDER.iter().enumerate() {
            assert!(
                name.starts_with("service.") || name.starts_with("cluster."),
                "lock name {name} must be crate-prefixed"
            );
            assert!(!LOCK_ORDER[i + 1..].contains(name), "duplicate lock name {name}");
        }
    }

    #[test]
    fn order_matches_the_cluster_crate_exactly() {
        // First registration wins process-wide, so the two crates must
        // publish byte-identical orders or whichever registers second
        // silently loses its entries.
        assert_eq!(LOCK_ORDER, snn_cluster::lock_order::LOCK_ORDER);
    }
}
