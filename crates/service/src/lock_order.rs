//! The service crate's documented lock acquisition order.
//!
//! Every `Mutex`/`RwLock` in this crate is constructed with
//! `Mutex::named(..)` using a name from [`LOCK_ORDER`] — enforced
//! statically by the `snn-lint` pass `L-LOCK` — and the order itself is
//! enforced at runtime, in debug builds only, by the vendored
//! `parking_lot`'s lock-order detector: acquiring a lock while holding
//! one that ranks after it panics immediately with both acquisition
//! sites, turning a timing-dependent ABBA deadlock into a deterministic
//! single-run test failure.

/// Lock names in their required acquisition order (earlier first).
///
/// The order encodes the nestings the server actually performs:
///
/// * `service.queue` is held across `JobStore::submit`
///   (`service.store.jobs`) so a submit is atomic with its enqueue.
/// * `service.sink.last_persist` is held across the throttled
///   `JobStore::update` (`service.store.jobs`) on the progress path.
/// * `service.running` only nests inside nothing today, but sits between
///   the queue and the store so a future "queue → running" handoff under
///   both locks stays legal.
/// * `service.bus.subscribers` ranks second-to-last: event fan-out must
///   never acquire another service lock while delivering (the analysis
///   cache is never touched from the event path).
/// * `service.analysis.cache` ranks last among the service locks: it is
///   a leaf — the cache is locked only for a point lookup or insert,
///   never while computing an analysis and never while holding it
///   acquiring anything else.
/// * The `cluster.*` locks rank after every service lock; see
///   `snn_cluster::lock_order` for their rationale. The two lists must
///   stay identical (first registration wins process-wide) — a test
///   below pins them together.
pub const LOCK_ORDER: &[&str] = &[
    "service.queue",
    "service.running",
    "service.sink.last_persist",
    "service.store.jobs",
    "service.bus.subscribers",
    "service.analysis.cache",
    "cluster.coordinator",
    "cluster.worker.session",
];

/// Registers [`LOCK_ORDER`] with the runtime detector. Idempotent —
/// every entry point (server bind, store open, bus construction) calls
/// it defensively so partial uses of the crate are still checked.
pub fn register() {
    parking_lot::lock_order::register(LOCK_ORDER);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_names_are_unique_and_prefixed() {
        for (i, name) in LOCK_ORDER.iter().enumerate() {
            assert!(
                name.starts_with("service.") || name.starts_with("cluster."),
                "lock name {name} must be crate-prefixed"
            );
            assert!(!LOCK_ORDER[i + 1..].contains(name), "duplicate lock name {name}");
        }
    }

    #[test]
    fn order_matches_the_cluster_crate_exactly() {
        // First registration wins process-wide, so the two crates must
        // publish byte-identical orders or whichever registers second
        // silently loses its entries.
        assert_eq!(LOCK_ORDER, snn_cluster::lock_order::LOCK_ORDER);
    }
}
