//! A blocking client for the job server's wire protocol.

use crate::protocol::{read_line, write_line, JobEvent, JobRecord, JobSpec, Request, Response};
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

/// One TCP connection to a job server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server address such as `"127.0.0.1:7077"`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(Self { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    /// Sends one request and reads one response.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        write_line(&mut self.writer, request).map_err(|e| format!("send failed: {e}"))?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response, String> {
        match read_line::<Response>(&mut self.reader) {
            Ok(Some(Ok(response))) => Ok(response),
            Ok(Some(Err(e))) => Err(e),
            Ok(None) => Err("server closed the connection".into()),
            Err(e) => Err(format!("receive failed: {e}")),
        }
    }

    /// Submits a job, returning its id.
    pub fn submit(&mut self, spec: JobSpec) -> Result<u64, String> {
        match self.request(&Request::Submit(spec))? {
            Response::Submitted { job } => Ok(job),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches one job's record.
    pub fn status(&mut self, job: u64) -> Result<JobRecord, String> {
        match self.request(&Request::Status { job })? {
            Response::Status(record) => Ok(*record),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches every job record, ascending by id.
    pub fn list(&mut self) -> Result<Vec<JobRecord>, String> {
        match self.request(&Request::List)? {
            Response::Jobs(records) => Ok(records),
            other => Err(unexpected(&other)),
        }
    }

    /// Requests cancellation of a job.
    pub fn cancel(&mut self, job: u64) -> Result<(), String> {
        match self.request(&Request::Cancel { job })? {
            Response::CancelRequested { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness probe; returns the server's protocol version.
    pub fn ping(&mut self) -> Result<u64, String> {
        match self.request(&Request::Ping)? {
            Response::Pong { version } => Ok(version),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches a snapshot of the server's metrics registry.
    pub fn metrics(&mut self) -> Result<snn_obs::MetricsSnapshot, String> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), String> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Watches a job: `on_event` sees every streamed [`JobEvent`]; returns
    /// the job's final record once it is terminal.
    pub fn watch(
        &mut self,
        job: u64,
        mut on_event: impl FnMut(&JobEvent),
    ) -> Result<JobRecord, String> {
        write_line(&mut self.writer, &Request::Watch { job })
            .map_err(|e| format!("send failed: {e}"))?;
        // First line: the snapshot (or an error for unknown jobs).
        let snapshot = match self.read_response()? {
            Response::Status(record) => *record,
            Response::Error { message } => return Err(message),
            other => return Err(unexpected(&other)),
        };
        if snapshot.state.is_terminal() {
            return Ok(snapshot);
        }
        loop {
            match self.read_response()? {
                Response::Event(event) => {
                    let terminal = matches!(
                        &event.payload,
                        crate::protocol::JobEventPayload::State { state, .. }
                            if state.is_terminal()
                    );
                    on_event(&event);
                    if terminal {
                        // The stream is over; fetch the full final record.
                        return self.status(job);
                    }
                }
                other => return Err(unexpected(&other)),
            }
        }
    }
}

fn unexpected(response: &Response) -> String {
    match response {
        Response::Error { message } => message.clone(),
        other => format!("unexpected response: {}", serde::json::to_string(other)),
    }
}
