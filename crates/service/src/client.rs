//! A blocking client for the job server's wire protocol, hardened for
//! flaky links: optional connect/read timeouts and bounded
//! exponential-backoff retry — applied to idempotent requests only, so a
//! retried line can never double-submit a job.

use crate::protocol::{
    read_line, write_line, ClusterStatus, JobEvent, JobRecord, JobSpec, Request, Response,
};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Link-resilience tunables. The [`Default`] is fully transparent — no
/// timeouts, no retries — matching the pre-hardening behaviour that the
/// e2e suites rely on.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-attempt connect budget; `None` blocks until the OS gives up.
    pub connect_timeout: Option<Duration>,
    /// Per-response read budget; `None` blocks indefinitely. Cleared
    /// while a `watch` streams (events are legitimately sparse) and
    /// restored afterwards.
    pub read_timeout: Option<Duration>,
    /// Extra attempts for *idempotent* requests (ping, status, list,
    /// metrics, cluster status) after a transport failure. Submit,
    /// cancel, shutdown and watch never retry.
    pub retries: u32,
    /// Backoff before retry `n` is `backoff << n` (exponential).
    pub backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: None,
            read_timeout: None,
            retries: 0,
            backoff: Duration::from_millis(100),
        }
    }
}

impl ClientConfig {
    /// A sensible hardened profile for CLI use over real networks.
    pub fn resilient() -> Self {
        Self {
            connect_timeout: Some(Duration::from_secs(2)),
            read_timeout: Some(Duration::from_secs(30)),
            retries: 3,
            backoff: Duration::from_millis(100),
        }
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One (auto-reconnecting) TCP connection to a job server.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Conn>,
}

/// Why a request attempt failed — transport failures are retryable for
/// idempotent requests, anything the server *said* is not.
enum Attempt {
    /// Send/receive failed or the connection is gone; the link was
    /// dropped and the next attempt reconnects.
    Transport(String),
    /// The server answered, just not something decodable.
    Fatal(String),
}

impl Client {
    /// Connects to a server address such as `"127.0.0.1:7077"` with the
    /// transparent [`ClientConfig::default`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit link-resilience settings.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let conn = Self::open(&addr, &config)?;
        Ok(Self { addr, config, conn: Some(conn) })
    }

    fn open(addr: &SocketAddr, config: &ClientConfig) -> io::Result<Conn> {
        let stream = match config.connect_timeout {
            Some(budget) => TcpStream::connect_timeout(addr, budget)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_read_timeout(config.read_timeout)?;
        Ok(Conn { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    /// The connection, reconnecting first when a previous attempt
    /// dropped it.
    fn conn(&mut self) -> Result<&mut Conn, Attempt> {
        if self.conn.is_none() {
            let conn = Self::open(&self.addr, &self.config)
                .map_err(|e| Attempt::Transport(format!("reconnect failed: {e}")))?;
            self.conn = Some(conn);
        }
        // snn-lint: allow(L-PANIC): populated two lines up when absent
        Ok(self.conn.as_mut().expect("populated above"))
    }

    fn attempt(&mut self, request: &Request) -> Result<Response, Attempt> {
        let conn = self.conn()?;
        if let Err(e) = write_line(&mut conn.writer, request) {
            self.conn = None;
            return Err(Attempt::Transport(format!("send failed: {e}")));
        }
        match read_line::<Response>(&mut conn.reader) {
            Ok(Some(Ok(response))) => Ok(response),
            Ok(Some(Err(e))) => Err(Attempt::Fatal(e)),
            Ok(None) => {
                self.conn = None;
                Err(Attempt::Transport("server closed the connection".into()))
            }
            Err(e) => {
                self.conn = None;
                Err(Attempt::Transport(format!("receive failed: {e}")))
            }
        }
    }

    /// Sends one request and reads one response. Exactly one attempt —
    /// safe for any request.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        self.attempt(request).map_err(|e| match e {
            Attempt::Transport(m) | Attempt::Fatal(m) => m,
        })
    }

    /// Sends an idempotent request, retrying transport failures up to
    /// `config.retries` extra attempts with exponential backoff.
    fn request_idempotent(&mut self, request: &Request) -> Result<Response, String> {
        let mut attempt = 0u32;
        loop {
            match self.attempt(request) {
                Ok(response) => return Ok(response),
                Err(Attempt::Fatal(m)) => return Err(m),
                Err(Attempt::Transport(m)) => {
                    if attempt >= self.config.retries {
                        return Err(m);
                    }
                    let backoff = self.config.backoff.saturating_mul(1 << attempt.min(16));
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
            }
        }
    }

    /// Submits a job, returning its id. Never retried: a lost response
    /// leaves the submission status unknown, and a blind resend could
    /// run the job twice.
    pub fn submit(&mut self, spec: JobSpec) -> Result<u64, String> {
        match self.request(&Request::Submit(Box::new(spec)))? {
            Response::Submitted { job } => Ok(job),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches one job's record (idempotent; retried).
    pub fn status(&mut self, job: u64) -> Result<JobRecord, String> {
        match self.request_idempotent(&Request::Status { job })? {
            Response::Status(record) => Ok(*record),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches every job record, ascending by id (idempotent; retried).
    pub fn list(&mut self) -> Result<Vec<JobRecord>, String> {
        match self.request_idempotent(&Request::List)? {
            Response::Jobs(records) => Ok(records),
            other => Err(unexpected(&other)),
        }
    }

    /// Requests cancellation of a job (not retried).
    pub fn cancel(&mut self, job: u64) -> Result<(), String> {
        match self.request(&Request::Cancel { job })? {
            Response::CancelRequested { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness probe; returns the server's protocol version
    /// (idempotent; retried).
    pub fn ping(&mut self) -> Result<u64, String> {
        match self.request_idempotent(&Request::Ping)? {
            Response::Pong { version } => Ok(version),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches a snapshot of the server's metrics registry (idempotent;
    /// retried).
    pub fn metrics(&mut self) -> Result<snn_obs::MetricsSnapshot, String> {
        match self.request_idempotent(&Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the worker-pool and chunk bookkeeping snapshot
    /// (idempotent; retried).
    pub fn cluster_status(&mut self) -> Result<ClusterStatus, String> {
        match self.request_idempotent(&Request::ClusterStatus)? {
            Response::Cluster(status) => Ok(status),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down gracefully (not retried).
    pub fn shutdown(&mut self) -> Result<(), String> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Watches a job: `on_event` sees every streamed [`JobEvent`]; returns
    /// the job's final record once it is terminal. Never retried (a
    /// reconnect would silently drop events mid-stream); the read
    /// timeout is lifted while the stream runs, since a healthy watch
    /// can be quiet for a long time.
    pub fn watch(
        &mut self,
        job: u64,
        mut on_event: impl FnMut(&JobEvent),
    ) -> Result<JobRecord, String> {
        let streaming_guard = |conn: &Conn, timeout: Option<Duration>| {
            // Read timeouts live on the OS socket, shared by the reader
            // clone; failures here degrade to the previous behaviour.
            let _ = conn.writer.set_read_timeout(timeout);
        };
        let restore = self.config.read_timeout;
        let result = (|| {
            let conn = match self.conn() {
                Ok(conn) => conn,
                Err(Attempt::Transport(m) | Attempt::Fatal(m)) => return Err(m),
            };
            streaming_guard(conn, None);
            write_line(&mut conn.writer, &Request::Watch { job })
                .map_err(|e| format!("send failed: {e}"))?;
            // First line: the snapshot (or an error for unknown jobs).
            let snapshot = match self.read_streamed()? {
                Response::Status(record) => *record,
                Response::Error { message } => return Err(message),
                other => return Err(unexpected(&other)),
            };
            if snapshot.state.is_terminal() {
                return Ok(snapshot);
            }
            loop {
                match self.read_streamed()? {
                    Response::Event(event) => {
                        let terminal = matches!(
                            &event.payload,
                            crate::protocol::JobEventPayload::State { state, .. }
                                if state.is_terminal()
                        );
                        on_event(&event);
                        if terminal {
                            // The stream is over; fetch the final record.
                            break;
                        }
                    }
                    other => return Err(unexpected(&other)),
                }
            }
            if let Some(conn) = &self.conn {
                streaming_guard(conn, restore);
            }
            self.status(job)
        })();
        if let Some(conn) = &self.conn {
            streaming_guard(conn, restore);
        }
        result
    }

    fn read_streamed(&mut self) -> Result<Response, String> {
        let Some(conn) = self.conn.as_mut() else {
            return Err("connection lost mid-stream".into());
        };
        match read_line::<Response>(&mut conn.reader) {
            Ok(Some(Ok(response))) => Ok(response),
            Ok(Some(Err(e))) => Err(e),
            Ok(None) => {
                self.conn = None;
                Err("server closed the connection".into())
            }
            Err(e) => {
                self.conn = None;
                Err(format!("receive failed: {e}"))
            }
        }
    }
}

fn unexpected(response: &Response) -> String {
    match response {
        Response::Error { message } => message.clone(),
        other => format!("unexpected response: {}", serde::json::to_string(other)),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only shorthand
mod tests {
    use super::*;
    use crate::protocol::PROTOCOL_VERSION;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Accepts `drops` connections and kills each immediately, then
    /// serves Pong forever on the next one. Returns the bound address
    /// and the accept counter.
    fn flaky_listener(drops: usize) -> (SocketAddr, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepts = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&accepts);
        std::thread::spawn(move || {
            for (i, stream) in listener.incoming().enumerate() {
                let Ok(stream) = stream else { return };
                counter.fetch_add(1, Ordering::SeqCst);
                if i < drops {
                    drop(stream); // half-open: accepted, then torn down
                    continue;
                }
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                while let Ok(Some(_)) = read_line::<Request>(&mut reader) {
                    if write_line(&mut writer, &Response::Pong { version: PROTOCOL_VERSION })
                        .is_err()
                    {
                        return;
                    }
                }
            }
        });
        (addr, accepts)
    }

    /// Accepts connections and never answers anything.
    fn silent_listener() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut parked = Vec::new();
            for stream in listener.incoming() {
                let Ok(stream) = stream else { return };
                parked.push(stream); // keep the socket open, say nothing
            }
        });
        addr
    }

    #[test]
    fn read_timeout_turns_a_silent_server_into_an_error() {
        let addr = silent_listener();
        let config = ClientConfig {
            read_timeout: Some(Duration::from_millis(80)),
            ..ClientConfig::default()
        };
        let started = std::time::Instant::now();
        let err = Client::connect_with(addr, config).unwrap().ping().unwrap_err();
        assert!(err.contains("receive failed"), "{err}");
        assert!(started.elapsed() < Duration::from_secs(5), "timed out promptly");
    }

    #[test]
    fn idempotent_requests_retry_through_a_flaky_link() {
        let (addr, accepts) = flaky_listener(2);
        let config = ClientConfig {
            retries: 3,
            backoff: Duration::from_millis(5),
            ..ClientConfig::default()
        };
        let mut client = Client::connect_with(addr, config).unwrap();
        // Attempt 1 dies on the torn-down first connection, attempt 2 on
        // the second; attempt 3 reconnects to the healthy listener.
        assert_eq!(client.ping().unwrap(), PROTOCOL_VERSION);
        assert!(accepts.load(Ordering::SeqCst) >= 3);
    }

    #[test]
    fn retries_are_bounded() {
        let (addr, _accepts) = flaky_listener(usize::MAX);
        let config = ClientConfig {
            retries: 2,
            backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        };
        let mut client = Client::connect_with(addr, config).unwrap();
        let err = client.ping().unwrap_err();
        // A torn-down connection surfaces as EOF or ECONNRESET depending
        // on timing; both are transport failures.
        assert!(err.contains("server closed") || err.contains("receive failed"), "{err}");
    }

    #[test]
    fn non_idempotent_requests_never_retry() {
        let (addr, accepts) = flaky_listener(usize::MAX);
        let config = ClientConfig {
            retries: 5,
            backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        };
        let mut client = Client::connect_with(addr, config).unwrap();
        let err = client.submit(JobSpec::synthetic_repro(4, vec![6], 2, 1)).unwrap_err();
        assert!(err.contains("server closed") || err.contains("receive failed"), "{err}");
        // Exactly the initial connection: a submit must not reconnect.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(accepts.load(Ordering::SeqCst), 1, "no retry connections for submit");
    }
}
