//! The newline-delimited JSON wire protocol of the job server.
//!
//! Every message is one JSON value on one line (`\n`-terminated). Clients
//! send [`Request`] lines; the server answers each request with exactly one
//! [`Response`] line, except [`Request::Watch`] which answers with a
//! [`Response::Status`] snapshot followed by a stream of
//! [`Response::Event`] lines until the watched job reaches a terminal
//! state. Enum values are externally tagged, e.g. `"Ping"` or
//! `{"Status":{"job":3}}` — see `DESIGN.md` §8 for the full specification
//! and an example session.
//!
//! Since protocol v3 the same listener also serves cluster workers:
//! the server tries to decode each incoming line as a [`Request`] first
//! and as a `snn_cluster::wire::WorkerMsg` second (the variant names are
//! disjoint), so clients and workers share one port. The worker-side
//! messages are documented in `snn_cluster::wire` and `DESIGN.md` §12.

use serde::{Deserialize, Serialize};
use snn_faults::progress::Progress;
use std::io::{BufRead, Write};

// The protocol's foundation — the version constant, the model spec and
// the line codec — lives in `snn-cluster`'s wire module since protocol
// v3, because worker processes speak the same newline-JSON framing on
// the same port. Re-exported here so service clients keep one import
// surface.
pub use snn_cluster::wire::{ClusterStatus, ModelSpec, PROTOCOL_VERSION};

/// A test-generation job description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Network under test.
    pub model: ModelSpec,
    /// Generation preset: `"fast"`, `"repro"` or `"paper"`.
    pub preset: String,
    /// RNG seed of the generation run.
    pub seed: u64,
    /// Override of the preset's outer-iteration cap.
    pub max_iterations: Option<usize>,
    /// Override of the preset's wall-clock budget, in seconds.
    pub t_limit_secs: Option<u64>,
    /// Also run a full fault-detection campaign on the generated test and
    /// report fault coverage.
    pub evaluate_coverage: bool,
    /// Worker threads for the coverage campaign (0 = all cores).
    pub threads: usize,
    /// Run a fault-map reliability campaign instead of test generation
    /// (protocol v4). The generation fields above are ignored except
    /// `model` and `threads`. `None` on records written by older
    /// clients/servers.
    pub reliability: Option<snn_reliability::ReliabilitySpec>,
    /// Execution engine of the coverage campaign (protocol v6): the
    /// bit-packed fault-parallel engine, the scalar engine, or `Auto`.
    /// `None` — the shape older clients send — means `Auto`. Engine
    /// choice never changes verdicts, only execution strategy.
    pub engine: Option<snn_faults::Engine>,
}

impl JobSpec {
    /// A repro-preset job over a synthetic network — the typical
    /// smoke-test submission.
    pub fn synthetic_repro(inputs: usize, hidden: Vec<usize>, outputs: usize, seed: u64) -> Self {
        Self {
            model: ModelSpec::Synthetic { inputs, hidden, outputs, seed },
            preset: "repro".into(),
            seed,
            max_iterations: None,
            t_limit_secs: None,
            evaluate_coverage: false,
            threads: 0,
            reliability: None,
            engine: None,
        }
    }
}

/// Lifecycle state of a job: `Queued → Running → Done | Failed |
/// Cancelled`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted and waiting for a worker.
    Queued,
    /// Executing on a worker thread.
    Running,
    /// Finished successfully; the record carries a result.
    Done,
    /// Aborted with an error; the record carries the message.
    Failed,
    /// Stopped by a cancel request (or server shutdown) before finishing.
    Cancelled,
}

impl JobState {
    /// `true` for states a job can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(self, Self::Done | Self::Failed | Self::Cancelled)
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Done => "done",
            Self::Failed => "failed",
            Self::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// Wall-clock breakdown of one job's phases, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobTimings {
    /// Time spent in the queue before a worker picked the job up.
    pub queue_wait_ms: u64,
    /// Static-analysis time (interval analysis + fault collapsing, or a
    /// cache hit).
    pub analyze_ms: u64,
    /// Test-generation time.
    pub generation_ms: u64,
    /// Fault-simulation (coverage campaign) time; `0` when no campaign
    /// ran.
    pub fault_sim_ms: u64,
}

/// Outcome of a finished job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Chunks in the generated test.
    pub chunks: usize,
    /// Total ticks of the assembled test stimulus.
    pub test_steps: usize,
    /// Neurons the test activates.
    pub activated: usize,
    /// Spiking neurons in the network.
    pub total_neurons: usize,
    /// `activated / total_neurons`.
    pub activation_coverage: f64,
    /// Generation wall-clock, in milliseconds.
    pub runtime_ms: u64,
    /// Fault-universe size, when a coverage campaign ran.
    pub faults_total: Option<usize>,
    /// Detected faults, when a coverage campaign ran.
    pub faults_detected: Option<usize>,
    /// Fault coverage (Eq. 4), when a coverage campaign ran.
    pub fault_coverage: Option<f64>,
    /// Server-side path of the persisted `.events` stimulus file.
    pub events_path: Option<String>,
    /// Static-analysis summary of the model (interval classes and fault
    /// collapsing). `None` on records written by older servers.
    pub analysis: Option<snn_analyze::AnalysisSummary>,
    /// Per-phase wall-clock breakdown. `None` on records written by
    /// older servers.
    pub timings: Option<JobTimings>,
    /// FNV-1a digest of every per-fault verdict of the coverage
    /// campaign (16 hex chars) — identical for a local and a
    /// distributed run of the same job, which is exactly what CI gates
    /// on. `None` when no campaign ran or on records written by older
    /// servers.
    pub verdict_digest: Option<String>,
    /// Reliability-campaign report (drop distributions, region
    /// criticality ranking, mitigation recovery), when the job ran a
    /// fault-map campaign. `None` for generation jobs and on records
    /// written by older servers.
    pub reliability: Option<snn_reliability::ReliabilityReport>,
    /// Execution engine the coverage campaign actually ran under
    /// (`"packed"` or `"scalar"`, after `Auto` resolution; protocol v6).
    /// `None` when no campaign ran or on records written by older
    /// servers.
    pub engine: Option<String>,
}

/// Schema revision stamped into every [`JobRecord`] the server persists.
///
/// Matches [`PROTOCOL_VERSION`] since v4, when the field was introduced.
/// Every schema change so far is an additive `Option` field (v6 added
/// the spec's requested `engine` and the result's resolved `engine`),
/// so records from any earlier schema (including v1–v3 records, which
/// predate the field itself) still decode — `crate::store` proves it
/// with pinned JSON fixtures.
pub const JOB_SCHEMA_VERSION: u32 = 6;

/// Everything the server knows about one job. Persisted as one JSON file
/// under `<state-dir>/jobs/`, rewritten on every state change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Server-assigned id, unique within a state directory.
    pub id: u64,
    /// The submitted description.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Submission time, Unix milliseconds.
    pub submitted_at_ms: u64,
    /// Execution start time, Unix milliseconds.
    pub started_at_ms: Option<u64>,
    /// Terminal-state time, Unix milliseconds.
    pub finished_at_ms: Option<u64>,
    /// Most recent progress event, while running.
    pub progress: Option<Progress>,
    /// Result, once `Done`.
    pub result: Option<JobResult>,
    /// Failure message, once `Failed` (or cancellation detail).
    pub error: Option<String>,
    /// Persisted-record schema revision ([`JOB_SCHEMA_VERSION`] on
    /// records this server writes). `None` on records persisted before
    /// protocol v4 — absence itself identifies a pre-v4 record.
    pub schema: Option<u32>,
}

/// A sequenced, timestamped notification streamed to watchers.
///
/// `seq` is a server-wide monotonic counter stamped at publish time:
/// consecutive events a subscriber receives normally have consecutive
/// sequence numbers, so a *gap* tells the subscriber that it was too
/// slow and events were dropped — loss is observable, never silent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobEvent {
    /// Server-wide monotonic sequence number, assigned at publish time.
    pub seq: u64,
    /// Emission time, Unix milliseconds.
    pub at_ms: u64,
    /// What happened.
    pub payload: JobEventPayload,
}

impl JobEvent {
    /// The job this event concerns.
    pub fn job(&self) -> u64 {
        self.payload.job()
    }
}

/// The body of a [`JobEvent`]: a lifecycle change or a progress report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobEventPayload {
    /// The job entered `state`.
    State {
        /// Job id.
        job: u64,
        /// New lifecycle state.
        state: JobState,
        /// Failure/cancellation detail, when entering such a state.
        error: Option<String>,
    },
    /// The running job reported algorithm progress.
    Progress {
        /// Job id.
        job: u64,
        /// The progress payload.
        progress: Progress,
    },
}

impl JobEventPayload {
    /// The job this event concerns.
    pub fn job(&self) -> u64 {
        match self {
            Self::State { job, .. } | Self::Progress { job, .. } => *job,
        }
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a job; answered with [`Response::Submitted`] or an error
    /// when the queue is full or the spec is invalid.
    Submit(Box<JobSpec>),
    /// Fetch a job's record.
    Status {
        /// Job id.
        job: u64,
    },
    /// Fetch every job record, ordered by id.
    List,
    /// Request cancellation of a queued or running job.
    Cancel {
        /// Job id.
        job: u64,
    },
    /// Stream the job's events until it reaches a terminal state.
    Watch {
        /// Job id.
        job: u64,
    },
    /// Liveness probe.
    Ping,
    /// Fetch a snapshot of the server's metrics registry.
    Metrics,
    /// Fetch a snapshot of the worker pool and chunk bookkeeping.
    ClusterStatus,
    /// Graceful server shutdown: running jobs are cancelled, queued jobs
    /// stay queued (they resume on restart), state is persisted.
    Shutdown,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Job accepted under this id.
    Submitted {
        /// Assigned job id.
        job: u64,
    },
    /// One job's record (boxed: it dwarfs the other variants).
    Status(Box<JobRecord>),
    /// All job records.
    Jobs(Vec<JobRecord>),
    /// Cancellation acknowledged (delivery, not completion).
    CancelRequested {
        /// Job id.
        job: u64,
    },
    /// Liveness answer; carries [`PROTOCOL_VERSION`].
    Pong {
        /// Server protocol revision.
        version: u64,
    },
    /// Shutdown acknowledged.
    ShuttingDown,
    /// A snapshot of every registered counter, gauge and histogram.
    Metrics(snn_obs::MetricsSnapshot),
    /// The worker pool and chunk bookkeeping snapshot.
    Cluster(ClusterStatus),
    /// A streamed watch notification.
    Event(JobEvent),
    /// The request failed.
    Error {
        /// One-line diagnostic.
        message: String,
    },
}

/// Writes `value` as one JSON line and flushes.
pub fn write_line<T: Serialize>(w: &mut impl Write, value: &T) -> std::io::Result<()> {
    snn_cluster::wire::write_line(w, value)
}

/// Reads one JSON line. `Ok(None)` on clean EOF; decode failures carry a
/// one-line diagnostic.
pub fn read_line<T: serde::Deserialize>(
    r: &mut impl BufRead,
) -> std::io::Result<Option<Result<T, String>>> {
    snn_cluster::wire::read_line(r)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only shorthand
mod tests {
    use super::*;

    fn round_trip<T: Serialize + serde::Deserialize + PartialEq + std::fmt::Debug>(v: &T) {
        let s = serde::json::to_string(v);
        let back: T = serde::json::from_str(&s).unwrap();
        assert_eq!(&back, v, "round trip of {s}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip(&Request::Submit(Box::new(JobSpec::synthetic_repro(6, vec![12], 4, 7))));
        round_trip(&Request::Status { job: 3 });
        round_trip(&Request::List);
        round_trip(&Request::Cancel { job: 9 });
        round_trip(&Request::Watch { job: 0 });
        round_trip(&Request::Ping);
        round_trip(&Request::Metrics);
        round_trip(&Request::ClusterStatus);
        round_trip(&Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        let record = JobRecord {
            id: 1,
            spec: JobSpec {
                model: ModelSpec::Path("model.snn".into()),
                preset: "fast".into(),
                seed: 1,
                max_iterations: Some(4),
                t_limit_secs: None,
                evaluate_coverage: true,
                threads: 2,
                reliability: None,
                engine: Some(snn_faults::Engine::Packed),
            },
            state: JobState::Done,
            submitted_at_ms: 1_700_000_000_000,
            started_at_ms: Some(1_700_000_000_100),
            finished_at_ms: Some(1_700_000_003_000),
            progress: Some(Progress::FaultsSimulated { done: 5, total: 9, detected: 4 }),
            result: Some(JobResult {
                chunks: 3,
                test_steps: 120,
                activated: 14,
                total_neurons: 16,
                activation_coverage: 0.875,
                runtime_ms: 2900,
                faults_total: Some(9),
                faults_detected: Some(7),
                fault_coverage: Some(7.0 / 9.0),
                events_path: Some("results/job-1.events".into()),
                analysis: Some(snn_analyze::AnalysisSummary {
                    neurons: 16,
                    dead_neurons: 2,
                    excitable_neurons: 10,
                    undecided_neurons: 4,
                    faults: 9,
                    collapsed: 3,
                    representatives: 6,
                    collapse_fraction: 3.0 / 9.0,
                }),
                timings: Some(JobTimings {
                    queue_wait_ms: 100,
                    analyze_ms: 20,
                    generation_ms: 2500,
                    fault_sim_ms: 380,
                }),
                verdict_digest: Some("cbf29ce484222325".into()),
                reliability: None,
                engine: Some("packed".into()),
            }),
            error: None,
            schema: Some(JOB_SCHEMA_VERSION),
        };
        round_trip(&Response::Submitted { job: 1 });
        round_trip(&Response::Status(Box::new(record.clone())));
        round_trip(&Response::Jobs(vec![record]));
        round_trip(&Response::CancelRequested { job: 1 });
        round_trip(&Response::Pong { version: PROTOCOL_VERSION });
        round_trip(&Response::ShuttingDown);
        round_trip(&Response::Event(JobEvent {
            seq: 41,
            at_ms: 1_700_000_002_000,
            payload: JobEventPayload::State {
                job: 1,
                state: JobState::Cancelled,
                error: Some("cancelled by user".into()),
            },
        }));
        round_trip(&Response::Error { message: "queue full".into() });
        round_trip(&Response::Metrics(snn_obs::MetricsSnapshot { metrics: Vec::new() }));
        round_trip(&Response::Cluster(ClusterStatus {
            workers: Vec::new(),
            campaigns_active: 0,
            chunks_pending: 0,
            chunks_leased: 0,
            chunks_completed: 4,
            chunks_reissued: 1,
            results_stale: 1,
        }));
    }

    #[test]
    fn job_result_without_analysis_field_still_decodes() {
        // Records persisted before the analysis summary and the timing
        // breakdown existed must still load (the fields are additive).
        let json = "{\"chunks\":1,\"test_steps\":10,\"activated\":2,\"total_neurons\":4,\
                    \"activation_coverage\":0.5,\"runtime_ms\":3,\"faults_total\":null,\
                    \"faults_detected\":null,\"fault_coverage\":null,\"events_path\":null}";
        let r: JobResult = serde::json::from_str(json).unwrap();
        assert!(r.analysis.is_none());
        assert!(r.timings.is_none());
        assert!(r.verdict_digest.is_none());
        assert!(r.reliability.is_none());
        assert_eq!(r.chunks, 1);
    }

    #[test]
    fn reliability_job_spec_round_trips() {
        use snn_reliability::{
            EvalSpec, FaultMapSpec, MemoryRegion, MitigationKind, RegionSpec, ReliabilitySpec,
            WeightFaultModel,
        };
        let mut spec = JobSpec::synthetic_repro(4, vec![6], 2, 5);
        spec.reliability = Some(ReliabilitySpec {
            map: FaultMapSpec {
                regions: vec![RegionSpec {
                    region: MemoryRegion::Weights { layer: 0, tensor: 0 },
                    ber: 0.01,
                }],
                configs: 8,
                seed: 42,
                weight_model: WeightFaultModel::BitFlip,
                window: Some(snn_faults::TransientWindow::new(2, 9)),
            },
            eval: EvalSpec { samples: 8, steps: 16, rate: 0.3, seed: 7 },
            mitigation: MitigationKind::FaultAwareMapping,
        });
        round_trip(&Request::Submit(Box::new(spec)));
    }

    #[test]
    fn line_codec_round_trips_and_skips_blank_lines() {
        let mut buf = Vec::new();
        write_line(&mut buf, &Request::Ping).unwrap();
        buf.extend_from_slice(b"\n  \n");
        write_line(&mut buf, &Request::Status { job: 2 }).unwrap();

        let mut r = std::io::BufReader::new(buf.as_slice());
        assert_eq!(read_line::<Request>(&mut r).unwrap().unwrap().unwrap(), Request::Ping);
        assert_eq!(
            read_line::<Request>(&mut r).unwrap().unwrap().unwrap(),
            Request::Status { job: 2 }
        );
        assert!(read_line::<Request>(&mut r).unwrap().is_none(), "EOF");
    }

    #[test]
    fn malformed_lines_are_reported_not_fatal() {
        let mut r = std::io::BufReader::new(&b"{nonsense\n\"Ping\"\n"[..]);
        let bad = read_line::<Request>(&mut r).unwrap().unwrap();
        assert!(bad.is_err());
        let ok = read_line::<Request>(&mut r).unwrap().unwrap();
        assert_eq!(ok.unwrap(), Request::Ping);
    }

    #[test]
    fn terminal_states_are_exactly_done_failed_cancelled() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert_eq!(JobState::Cancelled.to_string(), "cancelled");
    }
}
