//! The job server: TCP accept loop, bounded job queue, worker pool,
//! cluster coordinator and graceful shutdown.
//!
//! One listener serves two populations: job clients speaking
//! [`Request`]/[`Response`] and cluster workers speaking
//! `snn_cluster::wire::WorkerMsg`/`CoordMsg`. Each incoming line is
//! decoded as a client request first and a worker message second (the
//! variant names are disjoint). With `expect_workers > 0`, coverage
//! campaigns are sharded onto the worker pool through the
//! [`Coordinator`]; with the default `0`, the in-process path runs
//! unchanged — and both produce bit-identical verdicts and digests.

use crate::bus::EventBus;
use crate::protocol::{
    write_line, JobEventPayload, JobRecord, JobResult, JobSpec, JobState, JobTimings, ModelSpec,
    Request, Response, PROTOCOL_VERSION,
};
use crate::store::{now_ms, JobStore};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_cluster::build_model;
use snn_cluster::coordinator::{ClusterError, Coordinator, CoordinatorConfig, Grant};
use snn_cluster::wire::{CampaignSpec, CoordMsg, TraceContext, WorkerMsg};
use snn_faults::progress::{CancelToken, Progress, ProgressSink};
use snn_faults::{verdict_digest_hex, FaultOutcome, FaultSimConfig, FaultUniverse};
use snn_model::Network;
use snn_testgen::{TestGenConfig, TestGenerator};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often a running job's progress snapshot is flushed to disk (every
/// event still updates memory and the event bus).
const PROGRESS_PERSIST_EVERY: Duration = Duration::from_millis(500);

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address, e.g. `"127.0.0.1:7077"` (port 0 picks a free one).
    pub addr: String,
    /// Worker threads executing jobs (0 = all cores).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before submits are refused.
    pub queue_capacity: usize,
    /// Directory holding the persistent job store.
    pub state_dir: PathBuf,
    /// Cluster workers coverage campaigns wait for before sharding onto
    /// the pool. `0` (the default) keeps campaigns in-process.
    pub expect_workers: usize,
    /// Faults per distributed chunk.
    pub chunk_size: usize,
    /// Chunk lease lifetime in milliseconds; an unheartbeated lease is
    /// re-issued after this long.
    pub lease_ms: u64,
}

impl ServiceConfig {
    /// A loopback server on an OS-assigned port over `state_dir` — the
    /// defaults used by tests and `snn-mtfc serve`.
    pub fn loopback(state_dir: impl Into<PathBuf>) -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 64,
            state_dir: state_dir.into(),
            expect_workers: 0,
            chunk_size: 256,
            lease_ms: 5000,
        }
    }
}

/// Shared server state: store, event bus, queue and worker bookkeeping.
struct Inner {
    store: JobStore,
    bus: EventBus,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    queue_capacity: usize,
    /// Cancellation tokens of currently running jobs.
    running: Mutex<HashMap<u64, CancelToken>>,
    /// Static-analysis results keyed by model-spec JSON, shared across
    /// jobs over the same model. Assumes `ModelSpec::Path` files do not
    /// change while the server runs (restart to pick up a new model).
    analysis_cache: Mutex<HashMap<String, Arc<CachedAnalysis>>>,
    /// The chunk scheduler for distributed coverage campaigns. Always
    /// present; it simply idles when no workers connect.
    coordinator: Coordinator,
    /// Workers a coverage campaign waits for before sharding; `0` keeps
    /// campaigns in-process.
    expect_workers: usize,
    shutdown: AtomicBool,
    /// The bound listen address — shutdown connects back to it once to
    /// wake the blocking accept loop.
    local_addr: SocketAddr,
}

impl Inner {
    /// Moves a job through a state change: persists, then broadcasts.
    fn transition(&self, id: u64, f: impl FnOnce(&mut JobRecord)) -> Option<JobRecord> {
        let updated = self.store.update(id, f)?;
        // Metrics are updated before the broadcast so a client reacting to
        // the terminal event already sees this job in a Metrics snapshot.
        if updated.state.is_terminal() {
            if let Some(finished) = updated.finished_at_ms {
                let wall_ms = finished.saturating_sub(updated.submitted_at_ms);
                snn_obs::histogram!(
                    "snn_service_job_wall_seconds",
                    "Submit-to-terminal wall-clock time of finished jobs.",
                    snn_obs::metrics::DURATION_BUCKETS
                )
                .observe(wall_ms as f64 / 1000.0);
            }
        }
        self.refresh_gauges();
        self.bus.publish(JobEventPayload::State {
            job: id,
            state: updated.state,
            error: updated.error.clone(),
        });
        Some(updated)
    }

    /// The single registration site for the queue-depth gauge; every
    /// depth publication funnels through here.
    fn set_queue_depth(depth: usize) {
        snn_obs::gauge!("snn_service_queue_depth", "Jobs queued but not yet running.")
            .set(depth as f64);
    }

    /// Publishes the queue depth and per-state job counts as gauges.
    fn refresh_gauges(&self) {
        let depth = self.queue.lock().len();
        Self::set_queue_depth(depth);
        let (mut queued, mut running, mut done, mut failed, mut cancelled) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for record in self.store.list() {
            match record.state {
                JobState::Queued => queued += 1,
                JobState::Running => running += 1,
                JobState::Done => done += 1,
                JobState::Failed => failed += 1,
                JobState::Cancelled => cancelled += 1,
            }
        }
        snn_obs::gauge!("snn_service_jobs_queued", "Jobs in the Queued state.").set(queued as f64);
        snn_obs::gauge!("snn_service_jobs_running", "Jobs in the Running state.")
            .set(running as f64);
        snn_obs::gauge!("snn_service_jobs_done", "Jobs in the Done state.").set(done as f64);
        snn_obs::gauge!("snn_service_jobs_failed", "Jobs in the Failed state.").set(failed as f64);
        snn_obs::gauge!("snn_service_jobs_cancelled", "Jobs in the Cancelled state.")
            .set(cancelled as f64);
    }

    /// Accepts a job into the store and queue, or explains why not.
    fn submit(&self, spec: JobSpec) -> Result<JobRecord, String> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err("server is shutting down".into());
        }
        validate_spec(&spec)?;
        // Capacity is checked under its own short guard: `store.submit`
        // persists the record (a disk write) and must not run under
        // `service.queue`. Concurrent submits racing past the check can
        // overshoot `queue_capacity` by at most the number of racers —
        // the bound is backpressure, not an invariant.
        {
            let queue = self.queue.lock();
            if queue.len() >= self.queue_capacity {
                return Err(format!("queue full ({} jobs waiting)", queue.len()));
            }
        }
        let record = self.store.submit(spec);
        {
            let mut queue = self.queue.lock();
            queue.push_back(record.id);
            self.queue_cv.notify_one();
        }
        self.refresh_gauges();
        Ok(record)
    }

    /// Blocks until a job is available or shutdown begins.
    fn next_job(&self) -> Option<u64> {
        let mut queue = self.queue.lock();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(id) = queue.pop_front() {
                Self::set_queue_depth(queue.len());
                return Some(id);
            }
            self.queue_cv.wait_for(&mut queue, Duration::from_millis(100));
        }
    }

    /// Handles a cancel request for a queued, running or finished job.
    fn cancel(&self, id: u64) -> Response {
        let Some(record) = self.store.get(id) else {
            return Response::Error { message: format!("no such job: {id}") };
        };
        if record.state.is_terminal() {
            return Response::Error { message: format!("job {id} already {}", record.state) };
        }
        // Still queued: pull it out of the queue and finish it directly.
        let dequeued = {
            let mut queue = self.queue.lock();
            let before = queue.len();
            queue.retain(|&q| q != id);
            queue.len() < before
        };
        if dequeued {
            self.transition(id, |r| {
                r.state = JobState::Cancelled;
                r.error = Some("cancelled while queued".into());
                r.finished_at_ms = Some(now_ms());
            });
            return Response::CancelRequested { job: id };
        }
        // Running: trip the token; the worker finishes the transition.
        // The token is cloned out so `service.running` is not held while
        // the cancellation (which may notify listeners) runs.
        let token = self.running.lock().get(&id).cloned();
        if let Some(token) = token {
            token.cancel();
        }
        Response::CancelRequested { job: id }
    }

    /// Begins shutdown: refuses new submits, cancels running jobs (queued
    /// ones stay queued so a restart resumes them) and wakes the workers
    /// and the accept loop.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Snapshot the tokens so `service.running` is released before any
        // of them is tripped.
        let tokens: Vec<CancelToken> = self.running.lock().values().cloned().collect();
        for token in tokens {
            token.cancel();
        }
        self.coordinator.shutdown();
        self.queue_cv.notify_all();
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
    }
}

/// Streams a running job's progress into the store and event bus,
/// persisting to disk at most every [`PROGRESS_PERSIST_EVERY`].
struct ServiceSink {
    inner: Arc<Inner>,
    job: u64,
    last_persist: Mutex<Instant>,
}

impl ServiceSink {
    fn new(inner: Arc<Inner>, job: u64) -> Self {
        Self { inner, job, last_persist: Mutex::named("service.sink.last_persist", Instant::now()) }
    }
}

impl ProgressSink for ServiceSink {
    fn emit(&self, progress: Progress) {
        self.inner.store.update_progress_in_memory(self.job, progress.clone());
        self.inner
            .bus
            .publish(JobEventPayload::Progress { job: self.job, progress: progress.clone() });
        // The throttle decision happens under `service.sink.last_persist`;
        // the persisting `store.update` (a disk write) runs after the
        // guard is released.
        let should_persist = {
            let mut last = self.last_persist.lock();
            if last.elapsed() >= PROGRESS_PERSIST_EVERY {
                *last = Instant::now();
                true
            } else {
                false
            }
        };
        if should_persist {
            self.inner.store.update(self.job, |r| r.progress = Some(progress));
        }
    }
}

/// A bound, not-yet-running job server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    workers: usize,
    inner: Arc<Inner>,
}

impl Server {
    /// Binds the listen socket and opens (or recovers) the job store.
    /// Jobs found `Queued` on disk are re-enqueued immediately.
    pub fn bind(config: ServiceConfig) -> io::Result<Self> {
        crate::lock_order::register();
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let store = JobStore::open(&config.state_dir)?;
        let recovered: VecDeque<u64> = store.recovered_queued().iter().copied().collect();
        let lease_ms = config.lease_ms.max(100);
        let coordinator = Coordinator::new(CoordinatorConfig {
            chunk_size: config.chunk_size,
            lease_ms,
            heartbeat_ms: (lease_ms / 4).clamp(25, 1000),
            idle_retry_ms: 50,
        });
        let inner = Arc::new(Inner {
            store,
            bus: EventBus::new(),
            queue: Mutex::named("service.queue", recovered),
            queue_cv: Condvar::new(),
            queue_capacity: config.queue_capacity.max(1),
            running: Mutex::named("service.running", HashMap::new()),
            analysis_cache: Mutex::named("service.analysis.cache", HashMap::new()),
            coordinator,
            expect_workers: config.expect_workers,
            shutdown: AtomicBool::new(false),
            local_addr,
        });
        let workers = snn_faults::parallel::effective_threads(config.workers);
        Ok(Self { listener, local_addr, workers, inner })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs the accept loop and worker pool until a `Shutdown` request
    /// arrives; returns once every worker has drained and state is
    /// persisted.
    pub fn run(self) -> io::Result<()> {
        let mut worker_handles = Vec::with_capacity(self.workers);
        for w in 0..self.workers {
            let inner = Arc::clone(&self.inner);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("snn-worker-{w}"))
                    .spawn(move || worker_loop(inner))?,
            );
        }

        let mut conn_handles = Vec::new();
        for stream in self.listener.incoming() {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let inner = Arc::clone(&self.inner);
                    conn_handles.push(std::thread::spawn(move || {
                        let _ = handle_connection(inner, stream);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(_) => continue,
            }
        }

        for h in conn_handles {
            let _ = h.join();
        }
        for h in worker_handles {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Rejects obviously unusable specs before they enter the queue.
fn validate_spec(spec: &JobSpec) -> Result<(), String> {
    preset_config(spec)?;
    if let Some(r) = &spec.reliability {
        // Model-dependent checks (region bounds etc.) run at execution
        // time via `ReliabilitySpec::validate`; these shape checks don't
        // need the network.
        if r.map.configs == 0 {
            return Err("reliability campaign needs at least one fault configuration".into());
        }
        if r.eval.samples == 0 || r.eval.steps == 0 {
            return Err("reliability evaluation set needs samples and steps".into());
        }
    }
    match &spec.model {
        ModelSpec::Path(p) if p.is_empty() => Err("model path is empty".into()),
        ModelSpec::Synthetic { inputs, outputs, hidden, .. } => {
            if *inputs == 0 || *outputs == 0 || hidden.contains(&0) {
                Err("synthetic model layers must be non-empty".into())
            } else {
                Ok(())
            }
        }
        _ => Ok(()),
    }
}

/// Resolves the spec's preset name plus overrides into a generator config.
fn preset_config(spec: &JobSpec) -> Result<TestGenConfig, String> {
    let mut cfg = match spec.preset.as_str() {
        "fast" => TestGenConfig::fast(),
        "repro" => TestGenConfig::repro(),
        "paper" => TestGenConfig::paper(),
        other => return Err(format!("unknown preset {other:?} (expected fast, repro or paper)")),
    };
    if let Some(iters) = spec.max_iterations {
        cfg.max_iterations = iters;
    }
    if let Some(secs) = spec.t_limit_secs {
        cfg.t_limit = Duration::from_secs(secs);
    }
    Ok(cfg)
}

/// Cached per-model static analysis: the standard fault universe and
/// the collapsed partition over it.
struct CachedAnalysis {
    universe: FaultUniverse,
    analysis: snn_analyze::Analysis,
}

/// Looks up (or computes and caches) the static analysis of `net`. The
/// potentially slow analysis runs outside the cache lock; a racing
/// duplicate computation is tolerated and the first insert wins.
fn analysis_for(inner: &Inner, model: &ModelSpec, net: &Network) -> Arc<CachedAnalysis> {
    let key = serde::json::to_string(model);
    if let Some(cached) = inner.analysis_cache.lock().get(&key) {
        return Arc::clone(cached);
    }
    let universe = FaultUniverse::standard(net);
    let analysis = snn_analyze::analyze(net, &universe);
    let entry = Arc::new(CachedAnalysis { universe, analysis });
    Arc::clone(inner.analysis_cache.lock().entry(key).or_insert(entry))
}

/// How one job execution ended.
enum JobOutcome {
    Done(Box<JobResult>),
    Cancelled(String),
    Failed(String),
}

/// Takes jobs off the queue until shutdown.
fn worker_loop(inner: Arc<Inner>) {
    while let Some(id) = inner.next_job() {
        // The record may have been cancelled while queued by a racing
        // cancel; re-check before running.
        match inner.store.get(id) {
            Some(r) if r.state == JobState::Queued => {}
            _ => continue,
        }
        run_job(&inner, id);
    }
}

/// Executes one job end to end, including its lifecycle transitions.
fn run_job(inner: &Arc<Inner>, id: u64) {
    let token = CancelToken::new();
    inner.running.lock().insert(id, token.clone());
    let record = inner.transition(id, |r| {
        r.state = JobState::Running;
        r.started_at_ms = Some(now_ms());
    });
    let Some(record) = record else {
        inner.running.lock().remove(&id);
        return;
    };

    let queue_wait_ms = record
        .started_at_ms
        .unwrap_or(record.submitted_at_ms)
        .saturating_sub(record.submitted_at_ms);
    let sink = ServiceSink::new(Arc::clone(inner), id);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        execute(inner, &record.spec, id, queue_wait_ms, &sink, &token)
    }))
    .unwrap_or_else(|panic| JobOutcome::Failed(format!("job panicked: {}", panic_msg(&panic))));

    inner.running.lock().remove(&id);
    inner.transition(id, |r| {
        r.finished_at_ms = Some(now_ms());
        match outcome {
            JobOutcome::Done(result) => {
                r.state = JobState::Done;
                r.result = Some(*result);
            }
            JobOutcome::Cancelled(why) => {
                r.state = JobState::Cancelled;
                r.error = Some(why);
            }
            JobOutcome::Failed(why) => {
                r.state = JobState::Failed;
                r.error = Some(why);
            }
        }
    });
}

fn panic_msg(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".into()
    }
}

/// The job body: build the model, generate the test, optionally measure
/// fault coverage, and persist the stimulus file.
fn execute(
    inner: &Arc<Inner>,
    spec: &JobSpec,
    id: u64,
    queue_wait_ms: u64,
    sink: &ServiceSink,
    token: &CancelToken,
) -> JobOutcome {
    /// Milliseconds elapsed since `start` on the observability clock.
    fn ms_since(start: Duration) -> u64 {
        u64::try_from(snn_obs::clock::monotonic().saturating_sub(start).as_millis())
            .unwrap_or(u64::MAX)
    }

    let cancelled_why = |inner: &Inner| {
        if inner.shutdown.load(Ordering::SeqCst) {
            "cancelled by server shutdown".to_string()
        } else {
            "cancelled by request".to_string()
        }
    };

    let cfg = match preset_config(spec) {
        Ok(cfg) => cfg,
        Err(e) => return JobOutcome::Failed(e),
    };
    let net = match build_model(&spec.model) {
        Ok(net) => net,
        Err(e) => return JobOutcome::Failed(e),
    };

    // Reliability jobs replace the generate-then-cover pipeline entirely:
    // the spec's fault map is scored for accuracy impact instead.
    if let Some(rspec) = &spec.reliability {
        return execute_reliability(inner, spec, rspec, &net, queue_wait_ms, sink, token);
    }

    let started = Instant::now();
    // Static analysis first: dead neurons leave the generator's target
    // set, and the collapsed universe prunes the coverage campaign.
    let analyze_started = snn_obs::clock::monotonic();
    let cached = analysis_for(inner, &spec.model, &net);
    let analyze_ms = ms_since(analyze_started);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let generator =
        TestGenerator::new(&net, cfg).with_excluded(cached.analysis.intervals.dead_mask(&net));
    let generation_started = snn_obs::clock::monotonic();
    let test = match generator.generate_with(&mut rng, sink, token) {
        Ok(test) => test,
        Err(_) => return JobOutcome::Cancelled(cancelled_why(inner)),
    };
    let generation_ms = ms_since(generation_started);

    // Persist the stimulus in the event format the CLI understands.
    let events_path = inner.store.result_path(id, "events");
    let events_path =
        match std::fs::File::create(&events_path).and_then(|mut f| test.write_events(&mut f)) {
            Ok(()) => Some(events_path.display().to_string()),
            Err(_) => None,
        };

    let mut result = JobResult {
        chunks: test.chunks.len(),
        test_steps: test.test_steps(),
        activated: test.activated_count(),
        total_neurons: test.activated.len(),
        activation_coverage: test.activated_fraction(),
        runtime_ms: started.elapsed().as_millis() as u64,
        faults_total: None,
        faults_detected: None,
        fault_coverage: None,
        events_path,
        analysis: Some(cached.analysis.summary.clone()),
        timings: Some(JobTimings { queue_wait_ms, analyze_ms, generation_ms, fault_sim_ms: 0 }),
        verdict_digest: None,
        reliability: None,
        engine: None,
    };

    if spec.evaluate_coverage && !test.chunks.is_empty() {
        let fault_sim_started = snn_obs::clock::monotonic();
        let sim_cfg = FaultSimConfig {
            threads: spec.threads,
            engine: spec.engine,
            ..FaultSimConfig::default()
        };
        let universe = &cached.universe;
        let per_fault = if inner.expect_workers > 0 {
            match distributed_coverage(inner, spec, &cached, &test, sim_cfg, sink, token) {
                Ok(per_fault) => per_fault,
                Err(outcome) => return outcome,
            }
        } else {
            let assembled = test.assembled();
            let tests = std::slice::from_ref(&assembled);
            // Simulate only the representatives and expand to
            // full-universe outcomes; coverage accounting is still over
            // every fault. The campaign runs under the engine the spec
            // selected (packed/scalar/auto) — verdicts are
            // engine-invariant, so the expansion is too.
            let campaign = cached
                .analysis
                .collapsed
                .detect_collapsed_via(tests, |reps| {
                    snn_batch::engine_detect(&net, sim_cfg, universe, reps, tests, sink, token)
                })
                .or_else(|e| match e {
                    snn_analyze::CollapsedCampaignError::Campaign(e) => Err(e),
                    // Expansion refused (e.g. the test is too short for a
                    // provably-detected claim): fall back to the full
                    // campaign.
                    snn_analyze::CollapsedCampaignError::Expand(_) => snn_batch::engine_detect(
                        &net,
                        sim_cfg,
                        universe,
                        universe.faults(),
                        tests,
                        sink,
                        token,
                    ),
                });
            match campaign {
                Ok(outcome) => outcome.per_fault,
                Err(snn_faults::CampaignError::Cancelled) => {
                    return JobOutcome::Cancelled(cancelled_why(inner));
                }
                Err(e) => return JobOutcome::Failed(e.to_string()),
            }
        };
        // Workers resolve `Auto` against a bit-identical rebuild of the
        // model, so the local resolution also names the distributed
        // engine.
        result.engine = Some(snn_batch::resolve_engine(&net, spec.engine).name().to_string());
        let total = universe.len();
        let detected = per_fault.iter().filter(|o| o.detected).count();
        result.faults_total = Some(total);
        result.faults_detected = Some(detected);
        result.fault_coverage = Some(if total == 0 { 1.0 } else { detected as f64 / total as f64 });
        result.verdict_digest = Some(verdict_digest_hex(&per_fault));
        result.runtime_ms = started.elapsed().as_millis() as u64;
        if let Some(timings) = result.timings.as_mut() {
            timings.fault_sim_ms = ms_since(fault_sim_started);
        }
    }

    JobOutcome::Done(Box::new(result))
}

/// The reliability-job body: score every fault-map configuration for
/// accuracy impact — in-process, or sharded over the worker pool exactly
/// like coverage campaigns (lease `fault_ids` are configuration indices;
/// workers re-sample configurations from the spec, so the merged
/// outcomes and digest are bit-identical to the local path).
fn execute_reliability(
    inner: &Arc<Inner>,
    spec: &JobSpec,
    rspec: &snn_reliability::ReliabilitySpec,
    net: &Network,
    queue_wait_ms: u64,
    sink: &ServiceSink,
    token: &CancelToken,
) -> JobOutcome {
    let cancelled_why = |inner: &Inner| {
        if inner.shutdown.load(Ordering::SeqCst) {
            "cancelled by server shutdown".to_string()
        } else {
            "cancelled by request".to_string()
        }
    };

    let started = Instant::now();
    let sim_started = snn_obs::clock::monotonic();
    let ids: Vec<usize> = (0..rspec.map.configs).collect();
    let outcomes = if inner.expect_workers > 0 {
        if let Err(e) =
            inner.coordinator.wait_for_workers(inner.expect_workers, token, Duration::from_secs(60))
        {
            return cluster_outcome(inner, e);
        }
        let payload = CampaignSpec {
            id: 0,
            model: spec.model.clone(),
            events: Vec::new(),
            sim: FaultSimConfig { threads: spec.threads, ..FaultSimConfig::default() },
            faults: rspec.map.configs,
            reliability: Some(rspec.clone()),
        };
        match run_distributed(inner, payload, ids, sink, token) {
            Ok(outcomes) => outcomes,
            Err(outcome) => return outcome,
        }
    } else {
        let evaluator = match snn_reliability::ReliabilityEvaluator::new(net.clone(), rspec.clone())
        {
            Ok(evaluator) => evaluator,
            Err(e) => return JobOutcome::Failed(e),
        };
        match evaluator.evaluate_chunk(&ids, spec.threads, token) {
            Ok(outcomes) => outcomes,
            Err(_) => return JobOutcome::Cancelled(cancelled_why(inner)),
        }
    };

    let report = match snn_reliability::ReliabilityReport::build(net, rspec, &outcomes) {
        Ok(report) => report,
        Err(e) => return JobOutcome::Failed(format!("reliability report: {e}")),
    };
    let impactful = outcomes.iter().filter(|o| o.detected).count();
    let fault_sim_ms =
        u64::try_from(snn_obs::clock::monotonic().saturating_sub(sim_started).as_millis())
            .unwrap_or(u64::MAX);

    JobOutcome::Done(Box::new(JobResult {
        chunks: 0,
        test_steps: rspec.eval.steps,
        activated: 0,
        total_neurons: 0,
        activation_coverage: 0.0,
        runtime_ms: started.elapsed().as_millis() as u64,
        faults_total: Some(rspec.map.configs),
        faults_detected: Some(impactful),
        fault_coverage: None,
        events_path: None,
        analysis: None,
        timings: Some(JobTimings { queue_wait_ms, analyze_ms: 0, generation_ms: 0, fault_sim_ms }),
        verdict_digest: Some(report.digest.clone()),
        reliability: Some(report),
        engine: None,
    }))
}

/// Maps a cluster failure to the job outcome it should produce.
fn cluster_outcome(inner: &Inner, e: ClusterError) -> JobOutcome {
    match e {
        ClusterError::Cancelled | ClusterError::Shutdown => {
            if inner.shutdown.load(Ordering::SeqCst) {
                JobOutcome::Cancelled("cancelled by server shutdown".into())
            } else {
                JobOutcome::Cancelled("cancelled by request".into())
            }
        }
        other => JobOutcome::Failed(format!("distributed campaign: {other}")),
    }
}

/// Runs the coverage campaign on the worker pool: representatives are
/// sharded into leased chunks, merged exactly, and expanded to the full
/// universe — bit-identical to the in-process path, including the
/// expansion-refused fallback to a full-universe campaign.
fn distributed_coverage(
    inner: &Inner,
    spec: &JobSpec,
    cached: &CachedAnalysis,
    test: &snn_testgen::GeneratedTest,
    sim_cfg: FaultSimConfig,
    sink: &ServiceSink,
    token: &CancelToken,
) -> Result<Vec<FaultOutcome>, JobOutcome> {
    inner
        .coordinator
        .wait_for_workers(inner.expect_workers, token, Duration::from_secs(60))
        .map_err(|e| cluster_outcome(inner, e))?;

    // The events text format is an exact transport for spike tensors, so
    // workers re-parse to the very tensor `test.assembled()` yields here.
    let mut events = Vec::new();
    if let Err(e) = test.write_events(&mut events) {
        return Err(JobOutcome::Failed(format!("cannot encode stimulus: {e}")));
    }
    let events = match String::from_utf8(events) {
        Ok(text) => text,
        Err(e) => return Err(JobOutcome::Failed(format!("cannot encode stimulus: {e}"))),
    };
    let payload = CampaignSpec {
        id: 0,
        model: spec.model.clone(),
        events: vec![events],
        sim: sim_cfg,
        faults: 0,
        reliability: None,
    };

    let collapsed = &cached.analysis.collapsed;
    let reps: Vec<usize> = collapsed.representatives().iter().map(|f| f.id).collect();
    let rep_outcomes = run_distributed(inner, payload.clone(), reps, sink, token)?;
    match collapsed.expand(&rep_outcomes, test.test_steps()) {
        Ok(full) => Ok(full),
        // Expansion refused: re-run distributed over the whole universe.
        Err(_) => {
            let all: Vec<usize> = (0..cached.universe.len()).collect();
            run_distributed(inner, payload, all, sink, token)
        }
    }
}

/// Submits one distributed campaign and waits for its merged outcomes,
/// relaying chunk completions as job progress.
fn run_distributed(
    inner: &Inner,
    payload: CampaignSpec,
    fault_ids: Vec<usize>,
    sink: &ServiceSink,
    token: &CancelToken,
) -> Result<Vec<FaultOutcome>, JobOutcome> {
    // The campaign span roots the merged trace: its id travels to the
    // workers inside every lease grant, and their shipped chunk spans
    // come back parented (via per-worker wrappers) under it.
    let mut span = snn_obs::span!("cluster.campaign");
    span.attr("faults", fault_ids.len());
    // The trace has no identity separate from its root span, so the
    // campaign span's id doubles as the trace id.
    let trace = span.id().map(|id| TraceContext { trace_id: id, parent_span_id: id });
    let campaign = inner.coordinator.submit(payload, fault_ids, trace);
    let merged = inner.coordinator.wait(campaign, token, |p| {
        sink.emit(Progress::FaultsSimulated { done: p.done, total: p.total, detected: p.detected });
    });
    drop(span);
    merged.map_err(|e| cluster_outcome(inner, e))
}

/// Serves one connection — client or cluster worker. Each line is
/// decoded as a client [`Request`] first and a [`WorkerMsg`] second (the
/// variant names are disjoint); requests are answered by one
/// [`Response`] (`Watch` by a response stream), worker messages by one
/// [`CoordMsg`] (`Bye` by none).
fn handle_connection(inner: Arc<Inner>, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    while let Some(line) = snn_cluster::wire::read_raw_line(&mut reader)? {
        let text = line.trim();
        let request = match serde::json::from_str::<Request>(text) {
            Ok(request) => request,
            Err(client_err) => match serde::json::from_str::<WorkerMsg>(text) {
                Ok(msg) => {
                    if let Some(reply) = worker_reply(&inner, msg) {
                        write_line(&mut writer, &reply)?;
                    }
                    continue;
                }
                Err(_) => {
                    let message = format!("bad message: {client_err}");
                    write_line(&mut writer, &Response::Error { message })?;
                    continue;
                }
            },
        };
        match request {
            Request::Ping => {
                write_line(&mut writer, &Response::Pong { version: PROTOCOL_VERSION })?
            }
            Request::Metrics => {
                write_line(&mut writer, &Response::Metrics(snn_obs::metrics::global().snapshot()))?
            }
            Request::ClusterStatus => {
                write_line(&mut writer, &Response::Cluster(inner.coordinator.status()))?
            }
            Request::Submit(spec) => match inner.submit(*spec) {
                Ok(record) => write_line(&mut writer, &Response::Submitted { job: record.id })?,
                Err(message) => write_line(&mut writer, &Response::Error { message })?,
            },
            Request::Status { job } => match inner.store.get(job) {
                Some(record) => write_line(&mut writer, &Response::Status(Box::new(record)))?,
                None => write_line(
                    &mut writer,
                    &Response::Error { message: format!("no such job: {job}") },
                )?,
            },
            Request::List => write_line(&mut writer, &Response::Jobs(inner.store.list()))?,
            Request::Cancel { job } => write_line(&mut writer, &inner.cancel(job))?,
            Request::Watch { job } => watch(&inner, &mut writer, job)?,
            Request::Shutdown => {
                write_line(&mut writer, &Response::ShuttingDown)?;
                inner.begin_shutdown();
                return Ok(());
            }
        }
    }
    Ok(())
}

/// Answers one cluster-worker message, delegating to the coordinator.
/// `None` for `Bye`, which gets no reply.
fn worker_reply(inner: &Inner, msg: WorkerMsg) -> Option<CoordMsg> {
    let span = snn_obs::span!("cluster.worker_msg");
    let reply = match msg {
        WorkerMsg::Hello { name, protocol } => {
            if protocol == PROTOCOL_VERSION {
                let (protocol, lease_ms, heartbeat_ms) = inner.coordinator.hello(&name);
                CoordMsg::Welcome { protocol, lease_ms, heartbeat_ms }
            } else {
                CoordMsg::Error {
                    message: format!(
                        "worker speaks protocol {protocol}, server speaks {PROTOCOL_VERSION}"
                    ),
                }
            }
        }
        WorkerMsg::Lease { worker } => match inner.coordinator.grant(&worker) {
            Grant::Lease(grant) => CoordMsg::Granted(grant),
            Grant::Idle { retry_ms } => CoordMsg::Idle { retry_ms },
            Grant::Shutdown => CoordMsg::Shutdown,
        },
        WorkerMsg::Fetch { worker: _, campaign } => match inner.coordinator.payload(campaign) {
            Some(spec) => CoordMsg::Campaign(spec),
            None => CoordMsg::Error { message: format!("no such campaign: {campaign}") },
        },
        WorkerMsg::Heartbeat { worker, lease } => {
            CoordMsg::HeartbeatAck { live: inner.coordinator.heartbeat(&worker, lease) }
        }
        WorkerMsg::Result { worker, lease, campaign, chunk, epoch, outcomes, spans } => {
            CoordMsg::ResultAck {
                accepted: inner
                    .coordinator
                    .result(&worker, lease, campaign, chunk, epoch, outcomes, spans),
            }
        }
        WorkerMsg::Bye { .. } => return None,
    };
    drop(span);
    Some(reply)
}

/// Streams `job`'s snapshot and then its events until it is terminal.
fn watch(inner: &Arc<Inner>, writer: &mut TcpStream, job: u64) -> io::Result<()> {
    // Subscribe before snapshotting so no event between the two is lost.
    let rx = inner.bus.subscribe(Some(job));
    let Some(snapshot) = inner.store.get(job) else {
        return write_line(writer, &Response::Error { message: format!("no such job: {job}") });
    };
    let terminal_at_snapshot = snapshot.state.is_terminal();
    write_line(writer, &Response::Status(Box::new(snapshot)))?;
    if terminal_at_snapshot {
        return Ok(());
    }
    loop {
        match rx.recv_timeout(Duration::from_millis(250)) {
            Ok(event) => {
                let done = matches!(
                    &event.payload,
                    JobEventPayload::State { state, .. } if state.is_terminal()
                );
                write_line(writer, &Response::Event(event))?;
                if done {
                    return Ok(());
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Fallback: the publisher may have raced our subscription.
                if let Some(r) = inner.store.get(job) {
                    if r.state.is_terminal() {
                        // Synthesized (not bus-delivered) terminal event;
                        // stamping still consumes a real sequence number.
                        return write_line(
                            writer,
                            &Response::Event(inner.bus.stamp(JobEventPayload::State {
                                job,
                                state: r.state,
                                error: r.error,
                            })),
                        );
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}
