//! `snn-service` — a concurrent test-generation job server.
//!
//! Turns the single-shot `snn-mtfc generate` pipeline into a long-lived
//! daemon: clients submit test-generation jobs over TCP, a worker pool
//! (sized to the machine's cores) executes them, progress events stream
//! live to watchers, jobs can be cancelled cooperatively mid-run, and
//! every job record survives a server restart via a serde-JSON store
//! under `--state-dir`.
//!
//! # Architecture
//!
//! * [`protocol`] — the newline-delimited JSON wire protocol
//!   ([`Request`]/[`Response`]) plus the job model ([`JobSpec`],
//!   [`JobRecord`], [`JobState`], [`JobEvent`]).
//! * [`store`] — [`JobStore`], the persistent record map (one JSON file
//!   per job, atomic rewrite on every state change, restart recovery).
//! * [`bus`] — [`EventBus`], in-process fan-out of lifecycle and
//!   progress events to watch subscribers.
//! * [`server`] — [`Server`], the accept loop, bounded queue and worker
//!   pool; wires [`snn_faults::progress::ProgressSink`] and
//!   [`snn_faults::progress::CancelToken`] into the generator and fault
//!   simulator.
//! * [`client`] — [`Client`], a small blocking client used by the
//!   `snn-mtfc submit`/`status`/`watch`/`cancel` subcommands and the
//!   integration tests, with optional timeouts and idempotent-only
//!   retry ([`ClientConfig`]).
//!
//! With `ServiceConfig::expect_workers > 0` the server also acts as a
//! cluster coordinator: coverage campaigns are sharded into leased
//! chunks and farmed out to `snn-mtfc worker` processes over the same
//! listener (see `snn_cluster`), with results merged bit-identically to
//! the in-process path.
//!
//! # Example
//!
//! ```
//! use snn_service::{Client, JobSpec, JobState, Server, ServiceConfig};
//!
//! let state_dir = std::env::temp_dir().join(format!("snn-svc-doc-{}", std::process::id()));
//! let server = Server::bind(ServiceConfig::loopback(&state_dir)).unwrap();
//! let addr = server.local_addr();
//! let handle = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr).unwrap();
//! let mut spec = JobSpec::synthetic_repro(4, vec![6], 2, 7);
//! spec.preset = "fast".into(); // doc-test scale
//! let job = client.submit(spec).unwrap();
//! let record = client.watch(job, |_event| {}).unwrap();
//! assert_eq!(record.state, JobState::Done);
//!
//! client.shutdown().unwrap();
//! handle.join().unwrap().unwrap();
//! let _ = std::fs::remove_dir_all(&state_dir);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod client;
pub mod lock_order;
pub mod protocol;
pub mod server;
pub mod store;

pub use bus::EventBus;
pub use client::{Client, ClientConfig};
pub use protocol::{
    ClusterStatus, JobEvent, JobEventPayload, JobRecord, JobResult, JobSpec, JobState, JobTimings,
    ModelSpec, Request, Response, PROTOCOL_VERSION,
};
pub use server::{Server, ServiceConfig};
pub use store::JobStore;
