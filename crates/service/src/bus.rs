//! In-process publish/subscribe fan-out of [`JobEvent`]s to watchers.
//!
//! Delivery is *bounded*: every subscriber has a fixed-capacity channel
//! and a publish never blocks on a slow consumer. Instead the event is
//! dropped for that subscriber — and because every published event
//! carries a server-wide monotonic `seq`, the subscriber observes the
//! drop as a gap in the sequence numbers rather than silent loss.

use crate::protocol::{JobEvent, JobEventPayload};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

/// Default per-subscriber channel capacity. Large enough that only a
/// genuinely stuck consumer ever drops events.
pub const DEFAULT_SUBSCRIBER_CAPACITY: usize = 1024;

struct Subscriber {
    /// `Some(id)` restricts delivery to that job's events.
    job: Option<u64>,
    tx: mpsc::SyncSender<JobEvent>,
}

/// Broadcasts job events to any number of subscribers. Disconnected
/// subscribers (dropped receivers) are pruned on the next publish; slow
/// subscribers (full channels) lose the event but stay subscribed.
pub struct EventBus {
    subscribers: Mutex<Vec<Subscriber>>,
    next_seq: AtomicU64,
}

impl Default for EventBus {
    fn default() -> Self {
        Self::new()
    }
}

impl EventBus {
    /// An empty bus.
    pub fn new() -> Self {
        crate::lock_order::register();
        Self {
            subscribers: Mutex::named("service.bus.subscribers", Vec::new()),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Registers a subscriber with the default channel capacity.
    /// `job = Some(id)` delivers only that job's events; `None` delivers
    /// everything.
    pub fn subscribe(&self, job: Option<u64>) -> mpsc::Receiver<JobEvent> {
        self.subscribe_with_capacity(job, DEFAULT_SUBSCRIBER_CAPACITY)
    }

    /// Registers a subscriber whose channel holds at most `capacity`
    /// undelivered events (minimum 1). Events published while the
    /// channel is full are dropped for this subscriber; the next event
    /// it does receive has a non-consecutive `seq`.
    pub fn subscribe_with_capacity(
        &self,
        job: Option<u64>,
        capacity: usize,
    ) -> mpsc::Receiver<JobEvent> {
        let (tx, rx) = mpsc::sync_channel(capacity.max(1));
        self.subscribers.lock().push(Subscriber { job, tx });
        rx
    }

    /// Wraps `payload` in an envelope carrying the next sequence number
    /// and the emission time, without delivering it.
    pub fn stamp(&self, payload: JobEventPayload) -> JobEvent {
        JobEvent {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            at_ms: crate::store::now_ms(),
            payload,
        }
    }

    /// Stamps `payload` with the next sequence number and the emission
    /// time, then delivers it to every interested live subscriber.
    /// Never blocks: a full subscriber channel drops this event for
    /// that subscriber.
    pub fn publish(&self, payload: JobEventPayload) {
        let event = self.stamp(payload);
        let mut subs = self.subscribers.lock();
        subs.retain(|s| {
            if s.job.is_some_and(|id| id != event.job()) {
                return true; // not interested, but still live
            }
            match s.tx.try_send(event.clone()) {
                Ok(()) => true,
                // Slow subscriber: drop the event, keep the subscription.
                // The seq gap makes the loss observable on their side.
                Err(mpsc::TrySendError::Full(_)) => {
                    snn_obs::counter!(
                        "snn_service_events_dropped_total",
                        "Events dropped because a subscriber channel was full."
                    )
                    .inc();
                    true
                }
                Err(mpsc::TrySendError::Disconnected(_)) => false,
            }
        });
    }

    /// Live subscriber count (dead ones linger until a publish prunes
    /// them).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::JobState;

    fn state_payload(job: u64) -> JobEventPayload {
        JobEventPayload::State { job, state: JobState::Running, error: None }
    }

    #[test]
    fn filtered_subscribers_see_only_their_job() {
        let bus = EventBus::new();
        let all = bus.subscribe(None);
        let only_two = bus.subscribe(Some(2));

        bus.publish(state_payload(1));
        bus.publish(state_payload(2));

        assert_eq!(all.try_iter().count(), 2);
        let got: Vec<_> = only_two.try_iter().collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].job(), 2);
    }

    #[test]
    fn dropped_subscribers_are_pruned_on_publish() {
        let bus = EventBus::new();
        let rx = bus.subscribe(None);
        drop(rx);
        assert_eq!(bus.subscriber_count(), 1);
        bus.publish(state_payload(1));
        assert_eq!(bus.subscriber_count(), 0);
    }

    #[test]
    fn sequence_numbers_are_consecutive_and_stamped_at_publish() {
        let bus = EventBus::new();
        let rx = bus.subscribe(None);
        for job in 0..5 {
            bus.publish(state_payload(job));
        }
        let got: Vec<JobEvent> = rx.try_iter().collect();
        assert_eq!(got.len(), 5);
        for (i, event) in got.iter().enumerate() {
            assert_eq!(event.seq, i as u64);
            assert!(event.at_ms > 0, "emission timestamp must be stamped");
        }
    }

    #[test]
    fn slow_subscriber_observes_a_seq_gap_not_silent_loss() {
        let bus = EventBus::new();
        // Capacity 2: the subscriber can buffer two events; the third
        // and fourth are dropped while it is "busy".
        let rx = bus.subscribe_with_capacity(None, 2);
        for job in 0..4 {
            bus.publish(state_payload(job));
        }
        assert_eq!(bus.subscriber_count(), 1, "slow subscriber must stay subscribed");

        // The consumer wakes up and drains: seq 0 and 1 arrived, 2 and 3
        // were dropped.
        let first = rx.recv().expect("buffered event");
        let second = rx.recv().expect("buffered event");
        assert_eq!((first.seq, second.seq), (0, 1));

        // It catches up: the next event it sees skips the dropped range.
        bus.publish(state_payload(9));
        let resumed = rx.recv().expect("post-drain event");
        assert_eq!(resumed.seq, 4, "seq gap (2, 3 missing) reveals the dropped events");
        assert!(resumed.seq > second.seq + 1, "the gap is observable");
    }
}
