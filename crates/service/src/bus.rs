//! In-process publish/subscribe fan-out of [`JobEvent`]s to watchers.

use crate::protocol::JobEvent;
use parking_lot::Mutex;
use std::sync::mpsc;

struct Subscriber {
    /// `Some(id)` restricts delivery to that job's events.
    job: Option<u64>,
    tx: mpsc::Sender<JobEvent>,
}

/// Broadcasts job events to any number of subscribers. Disconnected
/// subscribers (dropped receivers) are pruned on the next publish.
pub struct EventBus {
    subscribers: Mutex<Vec<Subscriber>>,
}

impl Default for EventBus {
    fn default() -> Self {
        Self::new()
    }
}

impl EventBus {
    /// An empty bus.
    pub fn new() -> Self {
        crate::lock_order::register();
        Self { subscribers: Mutex::named("service.bus.subscribers", Vec::new()) }
    }

    /// Registers a subscriber. `job = Some(id)` delivers only that job's
    /// events; `None` delivers everything.
    pub fn subscribe(&self, job: Option<u64>) -> mpsc::Receiver<JobEvent> {
        let (tx, rx) = mpsc::channel();
        self.subscribers.lock().push(Subscriber { job, tx });
        rx
    }

    /// Delivers `event` to every interested live subscriber.
    pub fn publish(&self, event: &JobEvent) {
        let mut subs = self.subscribers.lock();
        subs.retain(|s| {
            if s.job.is_some_and(|id| id != event.job()) {
                return true; // not interested, but still live
            }
            s.tx.send(event.clone()).is_ok()
        });
    }

    /// Live subscriber count (dead ones linger until a publish prunes
    /// them).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::JobState;

    fn state_event(job: u64) -> JobEvent {
        JobEvent::State { job, state: JobState::Running, error: None }
    }

    #[test]
    fn filtered_subscribers_see_only_their_job() {
        let bus = EventBus::new();
        let all = bus.subscribe(None);
        let only_two = bus.subscribe(Some(2));

        bus.publish(&state_event(1));
        bus.publish(&state_event(2));

        assert_eq!(all.try_iter().count(), 2);
        let got: Vec<_> = only_two.try_iter().collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].job(), 2);
    }

    #[test]
    fn dropped_subscribers_are_pruned_on_publish() {
        let bus = EventBus::new();
        let rx = bus.subscribe(None);
        drop(rx);
        assert_eq!(bus.subscriber_count(), 1);
        bus.publish(&state_event(1));
        assert_eq!(bus.subscriber_count(), 0);
    }
}
