//! BPTT backward-pass cost: input-gradient only (test generation) vs
//! input+weight gradients (training) on the repro-scale benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_bench::{build_dataset, build_network, BenchmarkKind, Scale};
use snn_model::{InjectedGrads, RecordOptions, Surrogate};
use snn_tensor::{Shape, Tensor};
use std::hint::black_box;

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("backward");
    group.sample_size(10);
    for kind in BenchmarkKind::ALL {
        let mut rng = StdRng::seed_from_u64(2);
        let net = build_network(kind, Scale::Repro, &mut rng);
        let ds = build_dataset(kind, Scale::Repro, 2);
        let steps = ds.steps();
        let input =
            snn_tensor::init::bernoulli(&mut rng, Shape::d2(steps, net.input_features()), 0.1);
        let trace = net.forward(&input, RecordOptions::full());
        // Uniform gradient on every spiking layer (the L2/L5 shape).
        let mut inj = InjectedGrads::none(net.layers().len());
        for (idx, layer) in net.layers().iter().enumerate() {
            if layer.is_spiking() {
                inj.set(idx, Tensor::full(Shape::d2(steps, layer.out_features()), 1.0));
            }
        }
        group.bench_function(format!("{}/input_grad", kind.name()), |b| {
            b.iter(|| {
                black_box(net.backward(
                    black_box(&input),
                    &trace,
                    &inj,
                    Surrogate::default(),
                    false,
                ))
            })
        });
        group.bench_function(format!("{}/with_weight_grads", kind.name()), |b| {
            b.iter(|| {
                black_box(net.backward(black_box(&input), &trace, &inj, Surrogate::default(), true))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backward);
criterion_main!(benches);
