//! Forward-pass throughput of the three repro-scale benchmark networks.
//!
//! The test-generation loop is dominated by forward+backward passes, so
//! these numbers bound the per-iteration cost `M` in the paper's
//! `O(M + T_FS)` complexity argument.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_bench::{build_dataset, build_network, BenchmarkKind, Scale};
use snn_model::RecordOptions;
use snn_tensor::Shape;
use std::hint::black_box;

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward");
    group.sample_size(10);
    for kind in BenchmarkKind::ALL {
        let mut rng = StdRng::seed_from_u64(1);
        let net = build_network(kind, Scale::Repro, &mut rng);
        let ds = build_dataset(kind, Scale::Repro, 1);
        let input =
            snn_tensor::init::bernoulli(&mut rng, Shape::d2(ds.steps(), net.input_features()), 0.1);
        group.bench_function(format!("{}/spikes_only", kind.name()), |b| {
            b.iter(|| black_box(net.forward(black_box(&input), RecordOptions::spikes_only())))
        });
        group.bench_function(format!("{}/full_record", kind.name()), |b| {
            b.iter(|| black_box(net.forward(black_box(&input), RecordOptions::full())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
