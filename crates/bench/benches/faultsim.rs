//! Fault-simulation campaign throughput, with the two accelerations
//! ablated: prefix caching (re-simulate only from the faulty layer) and
//! early exit (stop when a layer's activity matches the baseline).
//!
//! Together with `losses`, this backs the paper's `O(M·T_FS)` vs
//! `O(M + T_FS)` argument with measured per-fault costs.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_bench::{build_dataset, build_network, BenchmarkKind, Scale};
use snn_faults::{FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_tensor::Shape;
use std::hint::black_box;

fn bench_faultsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("faultsim");
    group.sample_size(10);
    let kind = BenchmarkKind::Nmnist;
    let mut rng = StdRng::seed_from_u64(4);
    let net = build_network(kind, Scale::Repro, &mut rng);
    let ds = build_dataset(kind, Scale::Repro, 4);
    let universe = FaultUniverse::standard(&net);
    // A 400-fault random sample keeps each iteration sub-second.
    let faults = universe.sample(&mut rng, 400);
    let test =
        snn_tensor::init::bernoulli(&mut rng, Shape::d2(ds.steps(), net.input_features()), 0.15);
    let tests = std::slice::from_ref(&test);

    let configs = [
        ("baseline_full_resim", false, false, false),
        ("prefix_cache", true, false, false),
        ("early_exit", false, true, false),
        ("prefix_cache+early_exit", true, true, false),
        ("all+activity_filter", true, true, true),
    ];
    for (name, prefix, early, filter) in configs {
        let sim = FaultSimulator::new(
            &net,
            FaultSimConfig {
                threads: 1,
                prefix_cache: prefix,
                early_exit: early,
                activity_filter: filter,
                record_class_diffs: false,
                engine: None,
            },
        );
        group.bench_function(format!("400_faults/{name}"), |b| {
            b.iter(|| black_box(sim.detect(&universe, black_box(&faults), tests)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_faultsim);
criterion_main!(benches);
