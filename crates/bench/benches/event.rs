//! Dense (clocked) vs event-driven simulation engines across input
//! activity levels.
//!
//! On an event-driven accelerator, cost follows spike traffic — which is
//! why the paper's stage 2 (minimizing hidden activity while preserving
//! the output) reduces not just information loss but also test energy and
//! time. This bench quantifies the dense/event crossover on the
//! NMNIST-like repro network.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_bench::{build_dataset, build_network, BenchmarkKind, Scale};
use snn_model::{event_forward, NeuronFaultMap, RecordOptions};
use snn_tensor::Shape;
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(9);
    let net = build_network(BenchmarkKind::Nmnist, Scale::Repro, &mut rng);
    let ds = build_dataset(BenchmarkKind::Nmnist, Scale::Repro, 9);
    let no_faults = NeuronFaultMap::new();

    for density in [0.02f32, 0.1, 0.4] {
        let input = snn_tensor::init::bernoulli(
            &mut rng,
            Shape::d2(ds.steps(), net.input_features()),
            density,
        );
        group.bench_function(format!("dense/density_{density}"), |b| {
            b.iter(|| black_box(net.forward(black_box(&input), RecordOptions::spikes_only())))
        });
        group.bench_function(format!("event/density_{density}"), |b| {
            b.iter(|| black_box(event_forward(&net, black_box(&input), &no_faults)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
