//! Cost of the input-relaxation pipeline: Gumbel-Softmax sampling (Eq. 17),
//! STE binarization (Eq. 18) and the logit-gradient backward step — the
//! per-iteration overhead of the paper's Fig. 3 on top of forward/backward.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_model::gumbel::GumbelSample;
use snn_tensor::{Shape, Tensor};
use std::hint::black_box;

fn bench_gumbel(c: &mut Criterion) {
    let mut group = c.benchmark_group("gumbel");
    // IBM-repro-sized input: 48 ticks × 1152 features.
    let shape = Shape::d2(48, 2 * 24 * 24);
    let mut rng = StdRng::seed_from_u64(5);
    let logits = snn_tensor::init::uniform(&mut rng, shape.clone(), -1.0, 1.0);
    let grad = Tensor::full(shape, 0.5);

    group.bench_function("stochastic_sample", |b| {
        b.iter(|| black_box(GumbelSample::stochastic(&mut rng, black_box(&logits), 0.9)))
    });
    group.bench_function("deterministic_sample", |b| {
        b.iter(|| black_box(GumbelSample::deterministic(black_box(&logits), 0.9)))
    });
    let sample = GumbelSample::deterministic(&logits, 0.9);
    group.bench_function("grad_logits", |b| {
        b.iter(|| black_box(sample.grad_logits(black_box(&grad))))
    });
    group.finish();
}

criterion_group!(benches, bench_gumbel);
criterion_main!(benches);
