//! Evaluation cost of the five loss functions L1–L5.
//!
//! The paper's central complexity claim is that these losses replace a
//! fault-simulation campaign (`T_FS`) inside the optimization loop; these
//! numbers quantify how cheap the replacement is (compare against
//! `faultsim` benches).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_bench::{build_dataset, build_network, BenchmarkKind, Scale};
use snn_model::{InjectedGrads, RecordOptions};
use snn_tensor::Shape;
use snn_testgen::losses;
use std::hint::black_box;

fn bench_losses(c: &mut Criterion) {
    let mut group = c.benchmark_group("losses");
    group.sample_size(20);
    let kind = BenchmarkKind::Ibm; // largest repro network
    let mut rng = StdRng::seed_from_u64(3);
    let net = build_network(kind, Scale::Repro, &mut rng);
    let ds = build_dataset(kind, Scale::Repro, 3);
    let input =
        snn_tensor::init::bernoulli(&mut rng, Shape::d2(ds.steps(), net.input_features()), 0.1);
    let trace = net.forward(&input, RecordOptions::full());
    let mask = losses::full_mask(&net);
    let n_layers = net.layers().len();
    let reference = trace.output().clone();

    group.bench_function("L1_output_activation", |b| {
        b.iter(|| {
            let mut inj = InjectedGrads::none(n_layers);
            black_box(losses::l1_output_activation(&net, &trace, &mut inj))
        })
    });
    group.bench_function("L2_neuron_activation", |b| {
        b.iter(|| {
            let mut inj = InjectedGrads::none(n_layers);
            black_box(losses::l2_neuron_activation(&net, &trace, &mask, &mut inj))
        })
    });
    group.bench_function("L3_temporal_diversity", |b| {
        b.iter(|| {
            let mut inj = InjectedGrads::none(n_layers);
            black_box(losses::l3_temporal_diversity(&net, &trace, &mask, 4.0, &mut inj))
        })
    });
    group.bench_function("L4_contribution_variance", |b| {
        b.iter(|| {
            let mut inj = InjectedGrads::none(n_layers);
            black_box(losses::l4_contribution_variance(&net, &trace, &mut inj))
        })
    });
    group.bench_function("L5_hidden_activity", |b| {
        b.iter(|| {
            let mut inj = InjectedGrads::none(n_layers);
            black_box(losses::l5_hidden_activity(&net, &trace, &mut inj))
        })
    });
    group.bench_function("output_preservation", |b| {
        b.iter(|| {
            let mut inj = InjectedGrads::none(n_layers);
            black_box(losses::output_preservation(&net, &trace, &reference, 4.0, &mut inj))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_losses);
criterion_main!(benches);
