//! Benchmark harness regenerating every table and figure of the paper.
//!
//! The three benchmarks (NMNIST-like, IBM-DVS-like, SHD-like) exist at two
//! scales:
//!
//! * [`Scale::Repro`] — spatially downscaled networks and datasets on
//!   which the *entire* pipeline (training, fault campaign, test
//!   generation, baselines) runs in minutes on a laptop CPU. All `tableN`
//!   / `figN` binaries default to this scale.
//! * [`Scale::Paper`] — the paper's geometries (for the IBM benchmark the
//!   architecture reproduces Table I's neuron/synapse counts exactly).
//!   Static characteristics are always printable; running the full
//!   pipeline at this scale is a multi-hour job, as in the paper.
//!
//! Shape, not absolute numbers: the simulator is a CPU process, not an
//! A100 + SLAYER stack, so wall-clock entries differ from the paper; the
//! comparisons that matter (who wins, by what factor, where coverage
//! saturates) are preserved and printed next to the paper's values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_datasets::{GestureLike, NmnistLike, ShdLike, SpikeDataset};
use snn_model::train::{evaluate, TrainConfig, Trainer};
use snn_model::{LifParams, Network, NetworkBuilder};
use std::ops::Range;
use std::time::{Duration, Instant};

/// Benchmark identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchmarkKind {
    /// NMNIST-like digit recognition (dense network).
    Nmnist,
    /// IBM-DVS-Gesture-like recognition (convolutional network).
    Ibm,
    /// SHD-like spoken digits (recurrent network).
    Shd,
}

impl BenchmarkKind {
    /// All three benchmarks in paper order.
    pub const ALL: [BenchmarkKind; 3] =
        [BenchmarkKind::Nmnist, BenchmarkKind::Ibm, BenchmarkKind::Shd];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            BenchmarkKind::Nmnist => "NMNIST",
            BenchmarkKind::Ibm => "IBM",
            BenchmarkKind::Shd => "SHD",
        }
    }
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-scale geometry; the default for all binaries.
    Repro,
    /// The paper's geometry.
    Paper,
}

impl Scale {
    /// Reads `SNN_MTFC_SCALE` (`repro`/`paper`), defaulting to repro.
    pub fn from_env() -> Self {
        match std::env::var("SNN_MTFC_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Repro,
        }
    }
}

/// Builds the dataset of a benchmark at a scale.
pub fn build_dataset(kind: BenchmarkKind, scale: Scale, seed: u64) -> Box<dyn SpikeDataset> {
    match (kind, scale) {
        (BenchmarkKind::Nmnist, Scale::Repro) => Box::new(NmnistLike::new(16, 48, 2_000, seed)),
        (BenchmarkKind::Nmnist, Scale::Paper) => Box::new(NmnistLike::paper(seed)),
        (BenchmarkKind::Ibm, Scale::Repro) => Box::new(GestureLike::new(24, 48, 1_100, seed)),
        (BenchmarkKind::Ibm, Scale::Paper) => Box::new(GestureLike::paper(seed)),
        (BenchmarkKind::Shd, Scale::Repro) => Box::new(ShdLike::new(140, 50, 2_000, seed)),
        (BenchmarkKind::Shd, Scale::Paper) => Box::new(ShdLike::paper(seed)),
    }
}

/// Builds the (untrained) benchmark network at a scale.
///
/// The paper-scale IBM topology reproduces Table I exactly:
/// `pool4 → conv16c5p2 → pool2 → conv32c3p1 → pool2 → dense512 → dense11`
/// gives 24,576 + 512 + 11 = 25,099 neurons and 1,059,616 weights.
pub fn build_network(kind: BenchmarkKind, scale: Scale, rng: &mut StdRng) -> Network {
    let lif = LifParams { threshold: 1.0, leak: 0.9, refrac_steps: 1 };
    match (kind, scale) {
        (BenchmarkKind::Nmnist, Scale::Repro) => {
            NetworkBuilder::new_spatial(2, 16, 16, lif).avg_pool(2).dense(48).dense(10).build(rng)
        }
        (BenchmarkKind::Nmnist, Scale::Paper) => {
            // ≈ Table I: 1,790 neurons / 61,908 synapses. This topology
            // gives 1,734 + 35 + 10 = 1,779 neurons (−0.6%) and
            // 300 + 60,690 + 350 = 61,340 weights (−0.9%).
            NetworkBuilder::new_spatial(2, 34, 34, lif)
                .conv(6, 5, 2, 2)
                .dense(35)
                .dense(10)
                .build(rng)
        }
        (BenchmarkKind::Ibm, Scale::Repro) => NetworkBuilder::new_spatial(2, 24, 24, lif)
            .avg_pool(2)
            .conv(6, 5, 1, 2)
            .avg_pool(2)
            .dense(32)
            .dense(11)
            .build(rng),
        (BenchmarkKind::Ibm, Scale::Paper) => NetworkBuilder::new_spatial(2, 128, 128, lif)
            .avg_pool(4)
            .conv(16, 5, 1, 2)
            .avg_pool(2)
            .conv(32, 3, 1, 1)
            .avg_pool(2)
            .dense(512)
            .dense(11)
            .build(rng),
        (BenchmarkKind::Shd, Scale::Repro) => {
            NetworkBuilder::new(140, lif).recurrent(32).dense(20).build(rng)
        }
        (BenchmarkKind::Shd, Scale::Paper) => {
            // ≈ Table I: 404 neurons / 124,928 synapses. 700→128→256→20
            // gives exactly 404 neurons and 127,488 weights (+2.0%); the
            // repro-scale variant keeps a recurrent layer to exercise that
            // architecture class (the paper's SHD models are recurrent).
            NetworkBuilder::new(700, lif).dense(128).dense(256).dense(20).build(rng)
        }
    }
}

/// A trained, ready-to-test benchmark.
pub struct Benchmark {
    /// Benchmark identity.
    pub kind: BenchmarkKind,
    /// Scale it was built at.
    pub scale: Scale,
    /// The trained network.
    pub net: Network,
    /// Its dataset.
    pub dataset: Box<dyn SpikeDataset>,
    /// Sample indices used for training.
    pub train_range: Range<usize>,
    /// Sample indices used for evaluation / criticality labelling.
    pub test_range: Range<usize>,
    /// Top-1 accuracy on the test range after training.
    pub accuracy: f64,
    /// Wall-clock training time.
    pub train_time: Duration,
}

/// Training effort for benchmark preparation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepConfig {
    /// Training samples to materialize.
    pub train_samples: usize,
    /// Test samples for accuracy/criticality.
    pub test_samples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
}

impl PrepConfig {
    /// Default preparation at repro scale.
    pub fn repro() -> Self {
        Self { train_samples: 160, test_samples: 60, epochs: 6, batch: 8 }
    }

    /// Quick preparation for smoke tests.
    pub fn fast() -> Self {
        Self { train_samples: 40, test_samples: 20, epochs: 2, batch: 8 }
    }
}

impl Benchmark {
    /// Builds and trains a benchmark.
    pub fn prepare(kind: BenchmarkKind, scale: Scale, seed: u64, prep: PrepConfig) -> Benchmark {
        let mut rng = StdRng::seed_from_u64(seed);
        let dataset = build_dataset(kind, scale, seed);
        let mut net = build_network(kind, scale, &mut rng);

        let train_range = 0..prep.train_samples.min(dataset.len());
        let test_start = train_range.end;
        let test_range = test_start..(test_start + prep.test_samples).min(dataset.len());

        let started = Instant::now();
        let train_set = snn_datasets::materialize(dataset.as_ref(), train_range.clone());
        let mut trainer = Trainer::new(&net, TrainConfig { lr: 0.015, ..TrainConfig::default() });
        for _ in 0..prep.epochs {
            for chunk in train_set.chunks(prep.batch) {
                trainer.train_batch(&mut net, chunk);
            }
        }
        let train_time = started.elapsed();

        let test_set = snn_datasets::materialize(dataset.as_ref(), test_range.clone());
        let accuracy = f64::from(evaluate(&net, &test_set));

        Benchmark { kind, scale, net, dataset, train_range, test_range, accuracy, train_time }
    }

    /// Materialized `(input, label)` test set.
    pub fn test_set(&self) -> Vec<(snn_tensor::Tensor, usize)> {
        snn_datasets::materialize(self.dataset.as_ref(), self.test_range.clone())
    }

    /// Materialized test inputs only.
    pub fn test_inputs(&self) -> Vec<snn_tensor::Tensor> {
        snn_datasets::materialize_inputs(self.dataset.as_ref(), self.test_range.clone())
    }
}

/// Renders an ASCII table with a title, headers and rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
    println!("\n== {title} ==");
    println!("+{line}+");
    let fmt_row = |cells: &[String]| {
        let body: Vec<String> =
            cells.iter().zip(widths.iter()).map(|(c, w)| format!(" {c:<w$} ")).collect();
        println!("|{}|", body.join("|"));
    };
    fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!("+{line}+");
    for row in rows {
        fmt_row(row);
    }
    println!("+{line}+");
}

/// Formats a `Duration` compactly (`1.52s`, `2.3min`).
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1.0 {
        format!("{:.0}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_networks_chain_correctly() {
        let mut rng = StdRng::seed_from_u64(0);
        for kind in BenchmarkKind::ALL {
            let ds = build_dataset(kind, Scale::Repro, 0);
            let net = build_network(kind, Scale::Repro, &mut rng);
            assert_eq!(
                net.input_features(),
                ds.input_shape().len(),
                "{}: dataset/network geometry mismatch",
                kind.name()
            );
            assert_eq!(net.output_features(), ds.classes());
        }
    }

    #[test]
    fn paper_ibm_counts_match_table1_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = build_network(BenchmarkKind::Ibm, Scale::Paper, &mut rng);
        assert_eq!(net.neuron_count(), 25_099);
        assert_eq!(net.synapse_count(), 1_059_616);
    }

    #[test]
    fn paper_nmnist_and_shd_counts_are_close_to_table1() {
        let mut rng = StdRng::seed_from_u64(2);
        // Table I: NMNIST 1,790 neurons / 61,908 synapses — within 1%.
        let nm = build_network(BenchmarkKind::Nmnist, Scale::Paper, &mut rng);
        assert_eq!(nm.neuron_count(), 1_779);
        assert_eq!(nm.synapse_count(), 61_340);
        // Table I: SHD 404 neurons (exact) / 124,928 synapses — within 3%.
        let shd = build_network(BenchmarkKind::Shd, Scale::Paper, &mut rng);
        assert_eq!(shd.neuron_count(), 404);
        assert_eq!(shd.synapse_count(), 127_488);
    }

    #[test]
    fn fast_preparation_learns_something() {
        let b = Benchmark::prepare(BenchmarkKind::Nmnist, Scale::Repro, 7, PrepConfig::fast());
        // 10 classes ⇒ chance is 0.1; a briefly trained net should beat it.
        assert!(b.accuracy > 0.1, "accuracy {}", b.accuracy);
        assert!(!b.test_set().is_empty());
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(fmt_duration(Duration::from_millis(500)), "500ms");
        assert_eq!(fmt_duration(Duration::from_secs(20)), "20.00s");
        assert!(fmt_duration(Duration::from_secs(600)).ends_with("min"));
    }
}
