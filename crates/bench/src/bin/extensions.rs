//! Extension experiment (beyond the paper's campaign): coverage of the
//! *extended* fault model — timing-variation neuron faults (Section III's
//! "(c)" neuron class) and int8 memory bit-flip synapse faults — by the
//! very same optimized stimulus, without re-running generation.
//!
//! The paper's standard campaign enumerates 2 faults/neuron +
//! 3 faults/synapse; its fault taxonomy also names timing variations and
//! weight perturbations (bit flips), which `snn-faults` implements as
//! extensions. This binary quantifies how well a test optimized for the
//! standard universe generalizes to them — the premise behind the L3
//! (temporal diversity) loss.
//!
//! Usage: `cargo run -p snn-bench --bin extensions --release`
//! (`SNN_MTFC_FAST=1` shrinks the run).

use snn_bench::{print_table, Benchmark, BenchmarkKind, PrepConfig, Scale};
use snn_faults::{FaultKind, FaultModelConfig, FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_testgen::{TestGenConfig, TestGenerator};

fn main() {
    let fast = std::env::var("SNN_MTFC_FAST").is_ok();
    let prep = if fast { PrepConfig::fast() } else { PrepConfig::repro() };

    eprintln!("[extensions] preparing NMNIST benchmark…");
    let b = Benchmark::prepare(BenchmarkKind::Nmnist, Scale::Repro, 42, prep);

    eprintln!("[extensions] generating the (standard) optimized test…");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(17);
    let cfg = if fast { TestGenConfig::fast() } else { TestGenConfig::repro() };
    let test = TestGenerator::new(&b.net, cfg).generate(&mut rng);
    let stimulus = test.assembled();

    // Extended universe: timing faults + bit flips on all 8 bit positions
    // of the quantized weight word (sampled in fast mode to bound time).
    let universe =
        FaultUniverse::with_config(&b.net, FaultModelConfig::default(), true, &[0, 3, 6, 7]);
    let faults: Vec<_> =
        if fast { universe.sample(&mut rng, 4_000) } else { universe.faults().to_vec() };
    eprintln!("[extensions] campaign over {} of {} extended faults…", faults.len(), universe.len());
    let sim = FaultSimulator::new(&b.net, FaultSimConfig::default());
    let outcome = sim.detect(&universe, &faults, std::slice::from_ref(&stimulus));

    // Split coverage per fault kind.
    let mut per_kind: std::collections::BTreeMap<&'static str, (usize, usize)> =
        std::collections::BTreeMap::new();
    for (f, o) in faults.iter().zip(outcome.per_fault.iter()) {
        let label = match f.kind {
            FaultKind::SynapseBitFlip { bit } => match bit {
                0 => "synapse-bitflip b0 (LSB)",
                3 => "synapse-bitflip b3",
                6 => "synapse-bitflip b6",
                _ => "synapse-bitflip b7 (sign)",
            },
            other => other.label(),
        };
        let slot = per_kind.entry(label).or_insert((0, 0));
        slot.1 += 1;
        if o.detected {
            slot.0 += 1;
        }
    }

    let rows: Vec<Vec<String>> = per_kind
        .iter()
        .map(|(kind, (det, tot))| {
            vec![
                kind.to_string(),
                det.to_string(),
                tot.to_string(),
                format!("{:.2}%", 100.0 * *det as f64 / (*tot).max(1) as f64),
            ]
        })
        .collect();
    print_table(
        "Extended fault model coverage (standard-optimized stimulus, NMNIST)",
        &["Fault kind", "Detected", "Total", "FC"],
        &rows,
    );
    println!(
        "\nExpectations: timing faults benefit from L3's temporal diversity;\n\
         sign/MSB bit flips behave like saturation faults (high FC); LSB flips\n\
         perturb weights below the network's noise floor and largely escape —\n\
         functionally benign by construction."
    );
}
