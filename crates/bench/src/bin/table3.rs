//! Regenerates **Table III — Test generation efficiency metrics**: the
//! headline experiment. For each benchmark it trains the SNN, runs the
//! proposed two-stage test generation, verifies the optimized stimulus
//! with one fault-simulation campaign, and reports runtime, test duration
//! (ticks and dataset samples), activated-neuron percentage, fault
//! coverage per class, and the worst escape's accuracy drop.
//!
//! Usage: `cargo run -p snn-bench --bin table3 --release`
//!   `SNN_MTFC_FAST=1`    — smoke-run sizes
//!   `SNN_MTFC_SAMPLES=n` — criticality sample cap (default 24)

use snn_bench::{fmt_duration, print_table, Benchmark, BenchmarkKind, PrepConfig, Scale};
use snn_faults::{
    criticality, escape_max_accuracy_drop, CoverageReport, Fault, FaultSimConfig, FaultSimulator,
    FaultUniverse,
};
use snn_testgen::{TestGenConfig, TestGenerator};

fn main() {
    let fast = std::env::var("SNN_MTFC_FAST").is_ok();
    let prep = if fast { PrepConfig::fast() } else { PrepConfig::repro() };
    let max_samples: usize = std::env::var("SNN_MTFC_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fast { 4 } else { 12 });
    let gen_cfg = if fast { TestGenConfig::fast() } else { TestGenConfig::repro() };

    let paper: [[&str; 9]; 3] = [
        [
            "1.5 h",
            "~8.76",
            "4.96 s",
            "98.71%",
            "99.97%",
            "96.96%",
            "47.26%",
            "78.02%",
            "0.1% (1.1%)",
        ],
        [
            "2.5 h",
            "~11.48",
            "31.86 s",
            "82.81%",
            "99.86%",
            "99.42%",
            "82.29%",
            "58.98%",
            "0.4% (0.9%)",
        ],
        [
            "2 h",
            "~7.82",
            "14.64 s",
            "91.33%",
            "98.99%",
            "97.25%",
            "21.43%",
            "54.40%",
            "0.3% (1.5%)",
        ],
    ];

    let mut rows = Vec::new();
    for (i, kind) in BenchmarkKind::ALL.iter().enumerate() {
        eprintln!("[table3] preparing {}…", kind.name());
        let b = Benchmark::prepare(*kind, Scale::Repro, 42, prep);
        let universe = FaultUniverse::standard(&b.net);

        eprintln!("[table3] {}: criticality labelling…", kind.name());
        let labels = criticality::classify(
            &b.net,
            &universe,
            universe.faults(),
            &b.test_inputs(),
            criticality::CriticalityConfig { threads: 0, max_samples: Some(max_samples) },
        );

        eprintln!("[table3] {}: generating test…", kind.name());
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let test = TestGenerator::new(&b.net, gen_cfg.clone()).generate(&mut rng);
        let stimulus = test.assembled();

        eprintln!(
            "[table3] {}: verification campaign over {} faults…",
            kind.name(),
            universe.len()
        );
        let sim = FaultSimulator::new(&b.net, FaultSimConfig::default());
        let campaign = sim.detect(&universe, universe.faults(), std::slice::from_ref(&stimulus));
        let coverage =
            CoverageReport::compute(universe.faults(), &labels.critical, &campaign.per_fault);

        // Escape analysis: worst accuracy drop among undetected critical
        // faults (capped per category to bound runtime).
        let cap = if fast { 5 } else { 20 };
        let escapes = |neuron: bool| -> Vec<Fault> {
            universe
                .faults()
                .iter()
                .zip(labels.critical.iter())
                .zip(campaign.per_fault.iter())
                .filter(|((f, &c), o)| c && !o.detected && f.kind.is_neuron() == neuron)
                .map(|((f, _), _)| *f)
                .take(cap)
                .collect()
        };
        let test_labeled = b.test_set();
        let drop_of = |faults: &[Fault]| -> f64 {
            escape_max_accuracy_drop(&b.net, &universe, faults, &test_labeled, 0)
                .map(|(d, _)| d * 100.0)
                .unwrap_or(0.0)
        };
        let drop_neuron = drop_of(&escapes(true));
        let drop_syn = drop_of(&escapes(false));

        let sample_steps = b.dataset.steps();
        rows.push(vec![
            format!("{} (repro)", kind.name()),
            fmt_duration(test.runtime),
            format!("~{:.2}", test.duration_samples(sample_steps)),
            format!("{} ticks", test.test_steps()),
            format!("{:.2}%", test.activated_fraction() * 100.0),
            format!("{:.2}%", coverage.critical_neuron.percent()),
            format!("{:.2}%", coverage.critical_synapse.percent()),
            format!("{:.2}%", coverage.benign_neuron.percent()),
            format!("{:.2}%", coverage.benign_synapse.percent()),
            format!("{drop_neuron:.1}% ({drop_syn:.1}%)"),
        ]);
        rows.push(vec![
            format!("{} (paper)", kind.name()),
            paper[i][0].into(),
            paper[i][1].into(),
            paper[i][2].into(),
            paper[i][3].into(),
            paper[i][4].into(),
            paper[i][5].into(),
            paper[i][6].into(),
            paper[i][7].into(),
            paper[i][8].into(),
        ]);
    }

    print_table(
        "Table III: Test generation efficiency metrics",
        &[
            "Benchmark",
            "Gen. runtime",
            "Dur. (samples)",
            "Dur. (time)",
            "Activated",
            "FC crit.N",
            "FC crit.S",
            "FC ben.N",
            "FC ben.S",
            "Max drop N (S)",
        ],
        &rows,
    );
    println!(
        "\nShape check: critical coverage should be near-perfect and far above\n\
         benign coverage; test duration should be ~10 sample lengths; generation\n\
         runtime is CPU-bound here vs A100 in the paper."
    );
}
