//! Regenerates **Table I — Benchmark SNNs characteristics**.
//!
//! Prints the trained repro-scale benchmark characteristics and, for
//! context, the static characteristics of the paper-scale architectures
//! (the IBM topology reproduces the paper's neuron/synapse counts
//! exactly).
//!
//! Usage: `cargo run -p snn-bench --bin table1 --release`
//! (`SNN_MTFC_FAST=1` shrinks training for smoke runs).

use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_bench::{
    build_dataset, build_network, print_table, Benchmark, BenchmarkKind, PrepConfig, Scale,
};

fn main() {
    let prep = if std::env::var("SNN_MTFC_FAST").is_ok() {
        PrepConfig::fast()
    } else {
        PrepConfig::repro()
    };

    // Paper's Table I reference values, for side-by-side comparison.
    let paper: [[&str; 7]; 3] = [
        ["98.19%", "10", "1790", "61908", "2x34x34", "60K", "10K"],
        ["86.36%", "11", "25099", "1059616", "2x128x128", "1080", "261"],
        ["76.59%", "20", "404", "124928", "700x1x1", "8332", "2088"],
    ];

    let mut rows = Vec::new();
    for (i, kind) in BenchmarkKind::ALL.iter().enumerate() {
        let b = Benchmark::prepare(*kind, Scale::Repro, 42, prep);
        let shape = b
            .dataset
            .input_shape()
            .dims()
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("x");
        rows.push(vec![
            format!("{} (repro)", kind.name()),
            format!("{:.2}%", b.accuracy * 100.0),
            b.dataset.classes().to_string(),
            b.net.neuron_count().to_string(),
            b.net.synapse_count().to_string(),
            shape,
            b.train_range.len().to_string(),
            b.test_range.len().to_string(),
        ]);
        rows.push(vec![
            format!("{} (paper ref.)", kind.name()),
            paper[i][0].into(),
            paper[i][1].into(),
            paper[i][2].into(),
            paper[i][3].into(),
            paper[i][4].into(),
            paper[i][5].into(),
            paper[i][6].into(),
        ]);
    }

    print_table(
        "Table I: Benchmark SNNs characteristics",
        &["Benchmark", "Accuracy", "Classes", "Neurons", "Synapses", "Input dim", "Train", "Test"],
        &rows,
    );

    // Static paper-scale architectures (no training), proving the
    // geometry reproduction.
    let mut rng = StdRng::seed_from_u64(0);
    let mut static_rows = Vec::new();
    for kind in BenchmarkKind::ALL {
        let net = build_network(kind, Scale::Paper, &mut rng);
        let ds = build_dataset(kind, Scale::Paper, 0);
        static_rows.push(vec![
            kind.name().to_string(),
            net.neuron_count().to_string(),
            net.synapse_count().to_string(),
            format!("{}", net.input_shape()),
            format!("{} ticks", ds.steps()),
        ]);
    }
    print_table(
        "Paper-scale architectures (static counts, this implementation)",
        &["Benchmark", "Neurons", "Synapses", "Input", "Sample length"],
        &static_rows,
    );
    println!(
        "\nNote: IBM paper-scale counts match Table I exactly; NMNIST/SHD are\n\
         documented approximations (see DESIGN.md §3). Repro-scale rows are the\n\
         geometries all other tables run on."
    );
}
