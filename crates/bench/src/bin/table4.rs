//! Regenerates **Table IV — Comparison with previous works** on the
//! NMNIST benchmark: the proposed optimized test vs the dataset-greedy
//! method of \[18\], the adversarial method of \[17\]/\[19\], and the random
//! method of \[20\] — all implemented in `snn-baselines` and run against
//! the *same* network and fault model.
//!
//! Reported per method: test stimulus type, generation time, number of
//! fault-simulation campaigns spent during generation (the paper's
//! `O(M·T_FS)` vs `O(M+T_FS)` argument), number of test configurations,
//! test duration in samples and ticks, and achieved coverage of critical
//! faults.
//!
//! Usage: `cargo run -p snn-bench --bin table4 --release`
//!   `SNN_MTFC_FAST=1` — smoke-run sizes

use snn_baselines::{
    adversarial_greedy, dataset_greedy, random_inputs, AdversarialConfig, BaselineConfig,
};
use snn_bench::{fmt_duration, print_table, Benchmark, BenchmarkKind, PrepConfig, Scale};
use snn_faults::{criticality, Fault, FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_testgen::{TestGenConfig, TestGenerator};

fn main() {
    let fast = std::env::var("SNN_MTFC_FAST").is_ok();
    let prep = if fast { PrepConfig::fast() } else { PrepConfig::repro() };

    eprintln!("[table4] preparing NMNIST benchmark…");
    let b = Benchmark::prepare(BenchmarkKind::Nmnist, Scale::Repro, 42, prep);
    let universe = FaultUniverse::standard(&b.net);
    let sample_steps = b.dataset.steps();

    // Compare on the critical faults (the paper's primary target).
    eprintln!("[table4] criticality labelling…");
    let labels = criticality::classify(
        &b.net,
        &universe,
        universe.faults(),
        &b.test_inputs(),
        criticality::CriticalityConfig { threads: 0, max_samples: Some(if fast { 4 } else { 12 }) },
    );
    let critical: Vec<Fault> = universe
        .faults()
        .iter()
        .zip(labels.critical.iter())
        .filter(|(_, &c)| c)
        .map(|(f, _)| *f)
        .collect();
    eprintln!("[table4] {} critical faults in play", critical.len());

    let pool_size = if fast { 6 } else { 40 };
    let pool = snn_datasets::materialize_inputs(b.dataset.as_ref(), 0..pool_size);
    let base_cfg =
        BaselineConfig { target_coverage: 0.99, max_inputs: if fast { 5 } else { 60 }, threads: 0 };
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);

    // --- Proposed method -------------------------------------------------
    eprintln!("[table4] proposed method…");
    let gen_cfg = if fast { TestGenConfig::fast() } else { TestGenConfig::repro() };
    let ours = TestGenerator::new(&b.net, gen_cfg).generate(&mut rng);
    let stimulus = ours.assembled();
    let sim = FaultSimulator::new(&b.net, FaultSimConfig::default());
    let ours_cov =
        sim.detect(&universe, &critical, std::slice::from_ref(&stimulus)).fault_coverage();

    // --- Baselines --------------------------------------------------------
    eprintln!("[table4] dataset-greedy [18]…");
    let greedy = dataset_greedy(&b.net, &universe, &critical, &pool, &base_cfg);
    eprintln!("[table4] adversarial [17]/[19]…");
    let adv = adversarial_greedy(
        &b.net,
        &universe,
        &critical,
        &pool,
        AdversarialConfig { steps: if fast { 6 } else { 30 }, ..AdversarialConfig::default() },
        &mut rng,
        &base_cfg,
    );
    eprintln!("[table4] random [20]…");
    let random = random_inputs(&b.net, &universe, &critical, sample_steps, &mut rng, &base_cfg);

    let rows = vec![
        vec![
            "This work".into(),
            "Optimized".into(),
            fmt_duration(ours.runtime),
            "0".into(),
            "1".into(),
            format!("~{:.2}", ours.duration_samples(sample_steps)),
            format!("{} ticks", ours.test_steps()),
            format!("{:.2}%", ours_cov * 100.0),
        ],
        vec![
            "[18] greedy".into(),
            "Dataset".into(),
            fmt_duration(greedy.generation_time),
            greedy.fault_sim_campaigns.to_string(),
            "1".into(),
            format!("{:.2}", greedy.duration_samples(sample_steps)),
            format!("{} ticks", greedy.test_steps()),
            format!("{:.2}%", greedy.coverage() * 100.0),
        ],
        vec![
            "[17]/[19] adv.".into(),
            "Adversarial".into(),
            fmt_duration(adv.generation_time),
            adv.fault_sim_campaigns.to_string(),
            "1".into(),
            format!("{:.2}", adv.duration_samples(sample_steps)),
            format!("{} ticks", adv.test_steps()),
            format!("{:.2}%", adv.coverage() * 100.0),
        ],
        vec![
            "[20] random".into(),
            "Random".into(),
            fmt_duration(random.generation_time),
            random.fault_sim_campaigns.to_string(),
            "1".into(),
            format!("{:.2}", random.duration_samples(sample_steps)),
            format!("{} ticks", random.test_steps()),
            format!("{:.2}%", random.coverage() * 100.0),
        ],
    ];

    print_table(
        "Table IV: Comparison with previous works (NMNIST, critical faults)",
        &[
            "Method",
            "Stimulus",
            "Gen. time",
            "FS campaigns",
            "Configs",
            "Dur. (samples)",
            "Dur. (time)",
            "FC critical",
        ],
        &rows,
    );
    println!(
        "\nPaper reference (NMNIST, paper scale): this work 1.5 h / ~8.76 samples /\n\
         4.96 s; [18] 10 days / 195 samples; [17] 26.19 days / 302 samples;\n\
         [19] 662 samples over 18 configs; [20] 190 samples over 44 configs.\n\
         Shape check: the proposed test should need ~an order of magnitude fewer\n\
         sample-lengths at comparable critical-fault coverage, with zero fault-\n\
         simulation campaigns during generation."
    );
}
