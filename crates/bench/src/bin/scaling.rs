//! Scalability demonstration at the paper's full network sizes.
//!
//! The paper's key scaling claim is that test generation cost is governed
//! by SNN inference time and is *independent of the fault-model size*,
//! while fault-simulation-based flows explode with it. This binary builds
//! the three **paper-scale** architectures (IBM: 25,099 neurons /
//! 1,059,616 synapses — Table I exact), measures on this machine:
//!
//! * one forward pass, one BPTT backward pass, and one full optimization
//!   step (the unit cost `M` of the generation loop),
//! * per-fault cost of the verification campaign on a 500-fault random
//!   sample,
//!
//! and extrapolates: total generation cost for the paper's 2000+1000
//! optimizer steps per iteration vs one full fault-simulation campaign —
//! reproducing the O(M+T_FS) vs O(M·T_FS) argument with measured
//! constants at true scale.
//!
//! Usage: `cargo run -p snn-bench --bin scaling --release`

use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_bench::{build_dataset, build_network, fmt_duration, print_table, BenchmarkKind, Scale};
use snn_faults::{FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_model::{gumbel::GumbelSample, InjectedGrads, RecordOptions, Surrogate};
use snn_tensor::Shape;
use std::time::Instant;

fn main() {
    let mut rows = Vec::new();
    for kind in BenchmarkKind::ALL {
        eprintln!("[scaling] building paper-scale {}…", kind.name());
        let mut rng = StdRng::seed_from_u64(5);
        let net = build_network(kind, Scale::Paper, &mut rng);
        let ds = build_dataset(kind, Scale::Paper, 5);
        // Short optimization window (test chunks are much shorter than a
        // full sample; use ~1/4 sample length).
        let steps = (ds.steps() / 4).max(8);
        let features = net.input_features();
        let logits = snn_tensor::init::uniform(&mut rng, Shape::d2(steps, features), -1.0, 1.0);

        // Forward.
        let sample = GumbelSample::stochastic(&mut rng, &logits, 0.9);
        let t0 = Instant::now();
        let trace = net.forward(&sample.binary, RecordOptions::full());
        let fwd = t0.elapsed();

        // Backward with an L2-shaped injected gradient on every layer.
        let mut inj = InjectedGrads::none(net.layers().len());
        for (idx, layer) in net.layers().iter().enumerate() {
            if layer.is_spiking() {
                inj.set(
                    idx,
                    snn_tensor::Tensor::full(Shape::d2(steps, layer.out_features()), -1.0),
                );
            }
        }
        let t1 = Instant::now();
        let grads = net.backward(&sample.binary, &trace, &inj, Surrogate::default(), false);
        let bwd = t1.elapsed();
        let _ = sample.grad_logits(&grads.input);
        let step_cost = fwd + bwd;

        // Per-fault verification cost on a 500-fault random sample.
        let universe = FaultUniverse::standard(&net);
        let faults = universe.sample(&mut rng, 500);
        let sim = FaultSimulator::new(&net, FaultSimConfig::default());
        let outcome = sim.detect(&universe, &faults, std::slice::from_ref(&sample.binary));
        let per_fault = outcome.elapsed / faults.len() as u32;

        // Extrapolations.
        let gen_per_iter = step_cost * 3000; // 2000 stage-1 + 1000 stage-2 steps
        let full_campaign = per_fault * universe.len() as u32;
        rows.push(vec![
            kind.name().to_string(),
            format!("{}", net.neuron_count()),
            format!("{}", net.synapse_count()),
            fmt_duration(fwd),
            fmt_duration(bwd),
            fmt_duration(gen_per_iter),
            format!("{:?}", per_fault),
            fmt_duration(full_campaign),
        ]);
        eprintln!(
            "[scaling] {}: generation iteration ≈ {}, one full fault campaign ≈ {}",
            kind.name(),
            fmt_duration(gen_per_iter),
            fmt_duration(full_campaign)
        );
    }
    print_table(
        "Scalability at paper-scale network sizes (single CPU core)",
        &[
            "Benchmark",
            "Neurons",
            "Synapses",
            "Forward",
            "Backward",
            "Gen. iter (3000 steps)",
            "Per-fault sim",
            "Full campaign (est.)",
        ],
        &rows,
    );
    println!(
        "\nReading: generation cost scales with inference time only; a prior-art\n\
         flow re-running the campaign after every candidate pays the last column\n\
         once per candidate, and the paper's datasets have hundreds of candidates."
    );
}
