//! Regenerates **Fig. 1 — LIF neuron model behaviour** as a CSV trace:
//! membrane potential, input spikes, output spikes and refractory state
//! of a single LIF neuron driven by a bursty input train.
//!
//! Usage: `cargo run -p snn-bench --bin fig1` (CSV on stdout; pipe to a
//! file and plot with any tool).

use snn_model::{DenseLayer, Layer, LifParams, Network, RecordOptions};
use snn_tensor::{Shape, Tensor};

fn main() {
    let lif = LifParams { threshold: 1.0, leak: 0.9, refrac_steps: 3 };
    let net = Network::new(
        Shape::d1(1),
        vec![Layer::Dense(DenseLayer::new(
            Tensor::from_vec(Shape::d2(1, 1), vec![0.45]).unwrap(),
            lif,
        ))],
    );

    // Bursty drive: dense burst, silence (leak visible), sparse drive.
    let steps = 40;
    let mut input = Tensor::zeros(Shape::d2(steps, 1));
    let pattern: &[usize] = &[0, 1, 2, 3, 4, 5, 12, 13, 20, 22, 24, 26, 28, 30, 32, 34, 36, 38];
    for &t in pattern {
        input[[t, 0]] = 1.0;
    }

    let trace = net.forward(&input, RecordOptions::full());
    let potential = trace.layers[0].potential.as_ref().expect("full record");
    let gate = trace.layers[0].gate.as_ref().expect("full record");

    println!("tick,input_spike,membrane_potential,output_spike,refractory");
    for t in 0..steps {
        println!(
            "{t},{},{:.4},{},{}",
            input[[t, 0]] as u8,
            potential[[t, 0]],
            trace.output()[[t, 0]] as u8,
            u8::from(gate[[t, 0]] == 0.0),
        );
    }
    eprintln!(
        "# LIF: threshold={}, leak={}, refractory={} ticks — the trace shows \
         integration, leak decay, threshold firing, reset and the refractory gap.",
        lif.threshold, lif.leak, lif.refrac_steps
    );
}
