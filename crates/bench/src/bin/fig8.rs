//! Regenerates **Fig. 8 — Neuron activity per layer**: the optimized test
//! input vs a random dataset sample on the IBM-DVS-like benchmark. For
//! each spiking layer an ASCII grid shows activated (`#`) vs silent (`.`)
//! neurons, with the global activation percentages the paper quotes
//! (82.81% vs 29% at paper scale).
//!
//! Usage: `cargo run -p snn-bench --bin fig8 --release`
//! (`SNN_MTFC_FAST=1` shrinks the run).

use snn_bench::{Benchmark, BenchmarkKind, PrepConfig, Scale};
use snn_model::RecordOptions;
use snn_testgen::{activity_map, TestGenConfig, TestGenerator};

fn main() {
    let fast = std::env::var("SNN_MTFC_FAST").is_ok();
    let prep = if fast { PrepConfig::fast() } else { PrepConfig::repro() };

    eprintln!("[fig8] preparing IBM benchmark…");
    let b = Benchmark::prepare(BenchmarkKind::Ibm, Scale::Repro, 42, prep);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(8);
    let cfg = if fast { TestGenConfig::fast() } else { TestGenConfig::repro() };
    eprintln!("[fig8] generating test…");
    let test = TestGenerator::new(&b.net, cfg).generate(&mut rng);
    let stimulus = test.assembled();

    let optimized_trace = b.net.forward(&stimulus, RecordOptions::spikes_only());
    let optimized = activity_map(&b.net, &optimized_trace, 1.0);

    // A "random" input sample from the dataset (the paper picks one).
    let (sample, _) = b.dataset.sample(b.test_range.start);
    let sample_trace = b.net.forward(&sample, RecordOptions::spikes_only());
    let random = activity_map(&b.net, &sample_trace, 1.0);

    println!("Fig. 8: neuron activity per layer ('#' activated, '.' silent)\n");
    for (idx, shape) in optimized.shapes.iter().enumerate() {
        println!("layer {idx} {shape}:");
        let opt = optimized.render_layer(idx);
        let rnd = random.render_layer(idx);
        let o_lines: Vec<&str> = opt.lines().collect();
        let r_lines: Vec<&str> = rnd.lines().collect();
        println!("{:<w$}   (b) dataset sample", "(a) optimized", w = o_lines[0].len().max(14));
        for (ol, rl) in o_lines.iter().zip(r_lines.iter()) {
            println!("{ol}   {rl}");
        }
        println!();
    }
    println!(
        "activated neurons: optimized {:.2}% vs dataset sample {:.2}%",
        optimized.fraction() * 100.0,
        random.fraction() * 100.0
    );
    println!("(paper, IBM at paper scale: 82.81% vs 29%)");
}
