//! Regenerates **Fig. 7 — Snapshots of the optimized test stimulus** for
//! the IBM-DVS-like benchmark: ASCII rasters of the stimulus at several
//! timestamps (`+` = ON-polarity spike, `-` = OFF-polarity spike,
//! `*` = both, `.` = silent), plus per-snapshot event counts.
//!
//! Usage: `cargo run -p snn-bench --bin fig7 --release`
//! (`SNN_MTFC_FAST=1` shrinks the run).

use snn_bench::{Benchmark, BenchmarkKind, PrepConfig, Scale};
use snn_testgen::{TestGenConfig, TestGenerator};

fn main() {
    let fast = std::env::var("SNN_MTFC_FAST").is_ok();
    let prep = if fast { PrepConfig::fast() } else { PrepConfig::repro() };

    eprintln!("[fig7] preparing IBM benchmark…");
    let b = Benchmark::prepare(BenchmarkKind::Ibm, Scale::Repro, 42, prep);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let cfg = if fast { TestGenConfig::fast() } else { TestGenConfig::repro() };
    eprintln!("[fig7] generating test…");
    let test = TestGenerator::new(&b.net, cfg).generate(&mut rng);
    let stimulus = test.assembled();

    let dims = b.dataset.input_shape();
    let (c, h, w) = (dims.dim(0), dims.dim(1), dims.dim(2));
    assert_eq!(c, 2, "fig7 expects a 2-polarity DVS stimulus");
    let steps = stimulus.shape().dim(0);
    let features = c * h * w;

    // Evenly spaced snapshots across the stimulus.
    let snapshots: Vec<usize> = (0..6).map(|k| k * steps.saturating_sub(1) / 5).collect();
    println!(
        "Optimized IBM test stimulus: {} ticks x {}x{}x{} ({} chunks)",
        steps,
        c,
        h,
        w,
        test.chunks.len()
    );
    for &t in &snapshots {
        let row = &stimulus.as_slice()[t * features..(t + 1) * features];
        let mut on = 0usize;
        let mut off = 0usize;
        println!("\n--- t = {t} ---");
        for y in 0..h {
            let mut line = String::with_capacity(w);
            for x in 0..w {
                let p_on = row[y * w + x] != 0.0;
                let p_off = row[h * w + y * w + x] != 0.0;
                on += usize::from(p_on);
                off += usize::from(p_off);
                line.push(match (p_on, p_off) {
                    (true, true) => '*',
                    (true, false) => '+',
                    (false, true) => '-',
                    (false, false) => '.',
                });
            }
            println!("{line}");
        }
        println!("events: {on} ON / {off} OFF");
    }
    println!(
        "\n(The paper's Fig. 7 shows the same data as blue/red dot rasters at\n\
         paper scale; '+' = ON polarity, '-' = OFF polarity, '*' = both.)"
    );
}
