//! Ablation study of the design choices DESIGN.md calls out: what each
//! ingredient of the test-generation algorithm buys, measured on the
//! NMNIST-like benchmark.
//!
//! Variants:
//! * `full`            — stages 1+2, all losses, stochastic Gumbel (the paper's method)
//! * `no-stage2`       — stage 1 only (no hidden-activity pruning)
//! * `no-L3`           — without the temporal-diversity loss
//! * `no-L4`           — without the contribution-variance loss
//! * `deterministic`   — no Gumbel noise in the relaxation
//!
//! For each variant: test duration, activated neurons, hidden spike count
//! of the stimulus, and fault coverage (overall and critical).
//!
//! Usage: `cargo run -p snn-bench --bin ablation --release`
//! (`SNN_MTFC_FAST=1` shrinks the run).

use snn_bench::{fmt_duration, print_table, Benchmark, BenchmarkKind, PrepConfig, Scale};
use snn_faults::{criticality, Fault, FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_model::RecordOptions;
use snn_testgen::{TestGenConfig, TestGenerator};

fn main() {
    let fast = std::env::var("SNN_MTFC_FAST").is_ok();
    let prep = if fast { PrepConfig::fast() } else { PrepConfig::repro() };

    eprintln!("[ablation] preparing NMNIST benchmark…");
    let b = Benchmark::prepare(BenchmarkKind::Nmnist, Scale::Repro, 42, prep);
    let universe = FaultUniverse::standard(&b.net);
    let labels = criticality::classify(
        &b.net,
        &universe,
        universe.faults(),
        &b.test_inputs(),
        criticality::CriticalityConfig { threads: 0, max_samples: Some(if fast { 4 } else { 10 }) },
    );
    let critical: Vec<Fault> = universe
        .faults()
        .iter()
        .zip(labels.critical.iter())
        .filter(|(_, &c)| c)
        .map(|(f, _)| *f)
        .collect();

    let base = if fast { TestGenConfig::fast() } else { TestGenConfig::repro() };
    let variants: Vec<(&str, TestGenConfig)> = vec![
        ("full", base.clone()),
        ("no-stage2", TestGenConfig { use_stage2: false, ..base.clone() }),
        ("no-L3", TestGenConfig { use_l3: false, ..base.clone() }),
        ("no-L4", TestGenConfig { use_l4: false, ..base.clone() }),
        ("deterministic", TestGenConfig { stochastic: false, ..base.clone() }),
    ];

    let sim = FaultSimulator::new(&b.net, FaultSimConfig::default());
    let mut rows = Vec::new();
    for (name, cfg) in variants {
        eprintln!("[ablation] variant {name}…");
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(13);
        let test = TestGenerator::new(&b.net, cfg).generate(&mut rng);
        let stimulus = test.assembled();

        // Hidden spike count of the full stimulus (stage 2's objective).
        let trace = b.net.forward(&stimulus, RecordOptions::spikes_only());
        let last = b.net.layers().len() - 1;
        let hidden: f32 = b
            .net
            .layers()
            .iter()
            .enumerate()
            .filter(|(idx, l)| *idx != last && l.is_spiking())
            .map(|(idx, _)| trace.layers[idx].output.sum())
            .sum();

        let overall = sim
            .detect(&universe, universe.faults(), std::slice::from_ref(&stimulus))
            .fault_coverage();
        let crit =
            sim.detect(&universe, &critical, std::slice::from_ref(&stimulus)).fault_coverage();

        rows.push(vec![
            name.to_string(),
            fmt_duration(test.runtime),
            format!("{} ticks", test.test_steps()),
            format!("{:.1}%", test.activated_fraction() * 100.0),
            format!("{hidden:.0}"),
            format!("{:.2}%", crit * 100.0),
            format!("{:.2}%", overall * 100.0),
        ]);
    }

    print_table(
        "Ablation: generator variants (NMNIST-like)",
        &[
            "Variant",
            "Gen. time",
            "Duration",
            "Activated",
            "Hidden spikes",
            "FC critical",
            "FC overall",
        ],
        &rows,
    );
    println!(
        "\nExpectations: `no-stage2` leaves more hidden spikes (weaker fault-effect\n\
         propagation); `no-L3`/`no-L4` trade away coverage; `deterministic` tends\n\
         to explore less. Same seed and network for all variants."
    );
}
