//! Regenerates **Fig. 9 — Per-class spike-count difference distribution**
//! over the detected faults of the optimized test on the IBM-DVS-like
//! benchmark: for each output class, a histogram of
//! `count_faulty − count_fault_free`, rendered as an ASCII log-scale bar
//! chart. While a difference of one spike suffices for detection (Eq. 3),
//! the optimized stimulus spreads fault effects widely — the distribution
//! should show heavy tails.
//!
//! Usage: `cargo run -p snn-bench --bin fig9 --release`
//! (`SNN_MTFC_FAST=1` shrinks the run).

use snn_bench::{Benchmark, BenchmarkKind, PrepConfig, Scale};
use snn_faults::{FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_testgen::{TestGenConfig, TestGenerator};

fn main() {
    let fast = std::env::var("SNN_MTFC_FAST").is_ok();
    let prep = if fast { PrepConfig::fast() } else { PrepConfig::repro() };

    eprintln!("[fig9] preparing IBM benchmark…");
    let b = Benchmark::prepare(BenchmarkKind::Ibm, Scale::Repro, 42, prep);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
    let cfg = if fast { TestGenConfig::fast() } else { TestGenConfig::repro() };
    eprintln!("[fig9] generating test…");
    let test = TestGenerator::new(&b.net, cfg).generate(&mut rng);
    let stimulus = test.assembled();

    let universe = FaultUniverse::standard(&b.net);
    eprintln!("[fig9] campaign with class-difference recording…");
    let sim = FaultSimulator::new(
        &b.net,
        FaultSimConfig { record_class_diffs: true, ..FaultSimConfig::default() },
    );
    let campaign = sim.detect(&universe, universe.faults(), std::slice::from_ref(&stimulus));

    // Collect signed per-class differences over detected faults.
    let classes = b.net.output_features();
    let mut per_class: Vec<Vec<f32>> = vec![Vec::new(); classes];
    for o in &campaign.per_fault {
        if let Some(diff) = &o.class_diff {
            for (k, &d) in diff.iter().enumerate() {
                if d != 0.0 {
                    per_class[k].push(d);
                }
            }
        }
    }

    println!(
        "Fig. 9: per-class output spike-count difference over {} detected faults",
        campaign.detected_count()
    );
    // Histogram bins mirroring the paper's broken x-axis: small, medium,
    // tail.
    let bins: &[(f32, f32, &str)] = &[
        (f32::NEG_INFINITY, -50.0, "(-inf,-50)"),
        (-50.0, -10.0, "[-50,-10)"),
        (-10.0, -1.0, "[-10,-1)"),
        (-1.0, 1.0, "[-1,1)"),
        (1.0, 10.0, "[1,10)"),
        (10.0, 50.0, "[10,50)"),
        (50.0, f32::INFINITY, "[50,inf)"),
    ];
    println!("{:<8} {}", "class", bins.iter().map(|b| format!("{:>12}", b.2)).collect::<String>());
    for (k, diffs) in per_class.iter().enumerate() {
        let mut row = format!("{k:<8}");
        for &(lo, hi, _) in bins {
            let n = diffs.iter().filter(|&&d| d >= lo && d < hi).count();
            row.push_str(&format!("{n:>12}"));
        }
        println!("{row}");
    }

    // Log-scale bar chart of the pooled absolute differences.
    let pooled: Vec<f32> = per_class.iter().flatten().copied().collect();
    println!("\npooled |difference| distribution (log-scale bars):");
    let abs_bins: &[(f32, f32, &str)] = &[
        (1.0, 2.0, "1"),
        (2.0, 5.0, "2-4"),
        (5.0, 10.0, "5-9"),
        (10.0, 25.0, "10-24"),
        (25.0, 50.0, "25-49"),
        (50.0, 100.0, "50-99"),
        (100.0, f32::INFINITY, "100+"),
    ];
    for &(lo, hi, label) in abs_bins {
        let n = pooled.iter().filter(|&&d| d.abs() >= lo && d.abs() < hi).count();
        let bar = "#".repeat(((n.max(1) as f64).log10() * 10.0).ceil() as usize);
        println!("{label:>6} | {bar} {n}");
    }
    let max_abs = pooled.iter().map(|d| d.abs()).fold(0.0f32, f32::max);
    println!(
        "\ndetected faults: {}, max |class diff|: {max_abs:.0} spikes — a single\n\
         spike suffices for detection, so mass beyond 1 shows the optimized test\n\
         propagates fault effects strongly (paper Fig. 9's heavy tails).",
        campaign.detected_count()
    );
}
