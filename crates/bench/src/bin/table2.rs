//! Regenerates **Table II — Fault simulation results**: the number of
//! critical and benign neuron/synapse faults and the labelling campaign
//! time, per benchmark.
//!
//! The paper runs this campaign over the full dataset on an A100 (days of
//! wall clock at paper scale — the very cost the proposed method avoids);
//! here it runs at repro scale over the test split, with prefix caching,
//! early exit and all cores.
//!
//! Usage: `cargo run -p snn-bench --bin table2 --release`
//!   `SNN_MTFC_FAST=1`     — fewer samples/faults for smoke runs
//!   `SNN_MTFC_SAMPLES=n`  — criticality sample cap (default 24)

use snn_bench::{fmt_duration, print_table, Benchmark, BenchmarkKind, PrepConfig, Scale};
use snn_faults::{criticality, FaultKind, FaultUniverse};

fn main() {
    let fast = std::env::var("SNN_MTFC_FAST").is_ok();
    let prep = if fast { PrepConfig::fast() } else { PrepConfig::repro() };
    let max_samples: usize = std::env::var("SNN_MTFC_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fast { 4 } else { 12 });

    let paper: [[&str; 5]; 3] = [
        ["2922", "658", "96203", "89521", "~5 days (A100)"],
        ["25378", "24820", "934872", "2243976", "~19 days (A100)"],
        ["794", "14", "311955", "62829", "~8 days (A100)"],
    ];

    let mut rows = Vec::new();
    for (i, kind) in BenchmarkKind::ALL.iter().enumerate() {
        eprintln!("[table2] preparing {} benchmark…", kind.name());
        let b = Benchmark::prepare(*kind, Scale::Repro, 42, prep);
        let universe = FaultUniverse::standard(&b.net);
        let inputs = b.test_inputs();

        eprintln!(
            "[table2] {}: labelling {} faults against {} samples…",
            kind.name(),
            universe.len(),
            max_samples.min(inputs.len())
        );
        let report = criticality::classify(
            &b.net,
            &universe,
            universe.faults(),
            &inputs,
            criticality::CriticalityConfig { threads: 0, max_samples: Some(max_samples) },
        );

        let mut crit_neuron = 0usize;
        let mut ben_neuron = 0usize;
        let mut crit_syn = 0usize;
        let mut ben_syn = 0usize;
        for (f, &c) in universe.faults().iter().zip(report.critical.iter()) {
            match (f.kind.is_neuron(), c) {
                (true, true) => crit_neuron += 1,
                (true, false) => ben_neuron += 1,
                (false, true) => crit_syn += 1,
                (false, false) => ben_syn += 1,
            }
        }
        // Sanity: universe multiplicity follows the paper (2/neuron,
        // 3/synapse).
        debug_assert_eq!(
            universe.faults().iter().filter(|f| f.kind == FaultKind::NeuronDead).count() * 2,
            universe.neuron_fault_count()
        );

        rows.push(vec![
            format!("{} (repro)", kind.name()),
            crit_neuron.to_string(),
            ben_neuron.to_string(),
            crit_syn.to_string(),
            ben_syn.to_string(),
            fmt_duration(report.elapsed),
        ]);
        rows.push(vec![
            format!("{} (paper)", kind.name()),
            paper[i][0].into(),
            paper[i][1].into(),
            paper[i][2].into(),
            paper[i][3].into(),
            paper[i][4].into(),
        ]);
    }

    print_table(
        "Table II: Fault simulation results",
        &[
            "Benchmark",
            "Crit. neuron",
            "Benign neuron",
            "Crit. synapse",
            "Benign synapse",
            "Sim time",
        ],
        &rows,
    );
    println!(
        "\nNote: criticality is labelled against {max_samples} test samples (paper: full\n\
         dataset). Fault totals are exactly 2/neuron + 3/synapse, as in the paper."
    );
}
