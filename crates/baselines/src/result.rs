use serde::{Deserialize, Serialize};
use snn_tensor::Tensor;
use std::time::Duration;

/// Shared knobs of all baseline generators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// Stop once this fraction of the supplied fault list is detected.
    pub target_coverage: f64,
    /// Hard cap on the number of selected inputs.
    pub max_inputs: usize,
    /// Worker threads for the embedded fault simulations (0 = all cores).
    pub threads: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self { target_coverage: 0.99, max_inputs: 500, threads: 0 }
    }
}

/// Output of a baseline test generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineResult {
    /// Selected test inputs, in selection order.
    pub inputs: Vec<Tensor>,
    /// Per-fault detection by the selected set (aligned with the fault
    /// list passed to the generator).
    pub detected: Vec<bool>,
    /// Wall-clock generation time (including all embedded fault
    /// simulation).
    pub generation_time: Duration,
    /// Fault coverage after each selection — the greedy saturation curve.
    pub coverage_history: Vec<f64>,
    /// Number of fault-simulation campaigns the generator had to run —
    /// the `O(M·T_FS)` term the paper's method eliminates.
    pub fault_sim_campaigns: usize,
}

impl BaselineResult {
    /// Final fault coverage over the supplied fault list.
    pub fn coverage(&self) -> f64 {
        if self.detected.is_empty() {
            return 0.0;
        }
        self.detected.iter().filter(|&&d| d).count() as f64 / self.detected.len() as f64
    }

    /// Total test application duration in ticks (inputs are applied
    /// back-to-back with an equal-length reset gap between consecutive
    /// inputs, matching the Eq. 8 accounting used for the proposed test).
    pub fn test_steps(&self) -> usize {
        let d = self.inputs.len();
        self.inputs
            .iter()
            .enumerate()
            .map(|(j, t)| {
                let steps = t.shape().dim(0);
                if j + 1 < d {
                    2 * steps
                } else {
                    steps
                }
            })
            .sum()
    }

    /// Test duration in dataset-sample lengths.
    ///
    /// # Panics
    ///
    /// Panics if `sample_steps` is zero.
    pub fn duration_samples(&self, sample_steps: usize) -> f64 {
        assert!(sample_steps > 0, "sample length must be positive");
        self.test_steps() as f64 / sample_steps as f64
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use snn_tensor::Shape;

    #[test]
    fn coverage_and_steps_accounting() {
        let r = BaselineResult {
            inputs: vec![Tensor::zeros(Shape::d2(10, 2)), Tensor::zeros(Shape::d2(10, 2))],
            detected: vec![true, false, true, true],
            generation_time: Duration::from_secs(1),
            coverage_history: vec![0.5, 0.75],
            fault_sim_campaigns: 7,
        };
        assert!((r.coverage() - 0.75).abs() < 1e-12);
        assert_eq!(r.test_steps(), 30); // 2·10 + 10
        assert!((r.duration_samples(10) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_result_is_zero_coverage() {
        let r = BaselineResult {
            inputs: vec![],
            detected: vec![],
            generation_time: Duration::ZERO,
            coverage_history: vec![],
            fault_sim_campaigns: 0,
        };
        assert_eq!(r.coverage(), 0.0);
        assert_eq!(r.test_steps(), 0);
    }
}
