use crate::{greedy_cover, BaselineConfig, BaselineResult};
use rand::Rng;
use snn_faults::{Fault, FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_model::{
    gumbel::GumbelSample, optim::Adam, InjectedGrads, Network, RecordOptions, Surrogate,
};
use snn_tensor::{Shape, Tensor};
use std::time::Instant;

/// Knobs of the adversarial perturbation step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversarialConfig {
    /// Gradient-ascent steps per sample.
    pub steps: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gumbel temperature for the relaxed input.
    pub tau: f32,
    /// Surrogate derivative for BPTT.
    pub surrogate: Surrogate,
}

impl Default for AdversarialConfig {
    fn default() -> Self {
        Self { steps: 40, lr: 0.1, tau: 0.7, surrogate: Surrogate::default() }
    }
}

/// Adversarial-example test generation à la \[17\]/\[19\]: each dataset
/// sample is perturbed by gradient ascent against the network's own
/// prediction margin (pushing the runner-up class over the predicted
/// one), producing inputs that sit near decision boundaries; the
/// adversarial pool is then fault-simulated per candidate and greedily
/// compacted — the same `O(M·T_FS)` structure as the other baselines.
///
/// # Panics
///
/// Panics if `pool` is empty or the network has fewer than 2 output
/// classes.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_baselines::{adversarial_greedy, AdversarialConfig, BaselineConfig};
/// use snn_faults::FaultUniverse;
/// use snn_model::{LifParams, NetworkBuilder};
/// use snn_tensor::Shape;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = NetworkBuilder::new(4, LifParams::default()).dense(3).build(&mut rng);
/// let u = FaultUniverse::standard(&net);
/// let pool = vec![snn_tensor::init::bernoulli(&mut rng, Shape::d2(12, 4), 0.4)];
/// let cfg = BaselineConfig { max_inputs: 2, ..BaselineConfig::default() };
/// let adv = AdversarialConfig { steps: 10, ..AdversarialConfig::default() };
/// let r = adversarial_greedy(&net, &u, u.faults(), &pool, adv, &mut rng, &cfg);
/// assert_eq!(r.fault_sim_campaigns, 1);
/// ```
pub fn adversarial_greedy(
    net: &Network,
    universe: &FaultUniverse,
    faults: &[Fault],
    pool: &[Tensor],
    adv: AdversarialConfig,
    rng: &mut impl Rng,
    cfg: &BaselineConfig,
) -> BaselineResult {
    assert!(!pool.is_empty(), "candidate pool must be non-empty");
    assert!(net.output_features() >= 2, "adversarial margin attack needs at least two classes");
    let started = Instant::now();

    // 1. Perturb every pool sample into an adversarial candidate.
    let adversarial_pool: Vec<Tensor> =
        pool.iter().map(|sample| perturb(net, sample, adv, rng)).collect();

    // 2. Detection matrix + greedy cover, as in the dataset baseline.
    let sim = FaultSimulator::new(
        net,
        FaultSimConfig { threads: cfg.threads, ..FaultSimConfig::default() },
    );
    let detection: Vec<Vec<bool>> = adversarial_pool
        .iter()
        .map(|input| {
            sim.detect(universe, faults, std::slice::from_ref(input))
                .per_fault
                .into_iter()
                .map(|o| o.detected)
                .collect()
        })
        .collect();
    let (selected, detected, history) =
        greedy_cover(&detection, cfg.target_coverage, cfg.max_inputs);

    BaselineResult {
        inputs: selected.iter().map(|&i| adversarial_pool[i].clone()).collect(),
        detected,
        generation_time: started.elapsed(),
        coverage_history: history,
        fault_sim_campaigns: adversarial_pool.len(),
    }
}

/// Margin attack on one sample: minimize `count[pred] − count[runner-up]`
/// through BPTT + STE, starting from the sample's own spike pattern.
fn perturb(net: &Network, sample: &Tensor, adv: AdversarialConfig, rng: &mut impl Rng) -> Tensor {
    let steps = sample.shape().dim(0);
    let classes = net.output_features();
    let num_layers = net.layers().len();

    // Initialize logits so the deterministic binarization reproduces the
    // sample exactly (±2 logits), then let gradient ascent deform it.
    let mut logits = sample.map(|v| if v >= 0.5 { 2.0 } else { -2.0 });
    let mut adam = Adam::new(logits.shape().clone());

    // Fixed attack target: the clean prediction.
    let clean = net.forward(sample, RecordOptions::spikes_only());
    let pred = clean.predict();

    let mut best = sample.clone();
    let mut best_margin = f32::INFINITY;
    for _ in 0..adv.steps {
        let relaxed = GumbelSample::stochastic(rng, &logits, adv.tau);
        let trace = net.forward(&relaxed.binary, RecordOptions::full());
        let counts = trace.class_counts();
        let runner = (0..classes)
            .filter(|&k| k != pred)
            // snn-lint: allow(L-PANIC): spike counts are finite sums of 0.0/1.0, so partial_cmp cannot return None
            .max_by(|&a, &b| counts[a].partial_cmp(&counts[b]).expect("finite counts"))
            // snn-lint: allow(L-PANIC): documented precondition — the caller's network has ≥ 2 output classes
            .expect("at least two classes");
        let margin = counts[pred] - counts[runner];
        if margin < best_margin {
            best_margin = margin;
            best = relaxed.binary.clone();
        }

        // ∂margin/∂count: +1 on the predicted class, −1 on the runner-up,
        // replicated over ticks (count = Σ_t s[t]).
        let mut grad = Tensor::zeros(Shape::d2(steps, classes));
        {
            let gd = grad.as_mut_slice();
            for t in 0..steps {
                gd[t * classes + pred] = 1.0;
                gd[t * classes + runner] = -1.0;
            }
        }
        let mut inj = InjectedGrads::none(num_layers);
        inj.set(num_layers - 1, grad);
        let grads = net.backward(&relaxed.binary, &trace, &inj, adv.surrogate, false);
        let g = relaxed.grad_logits(&grads.input);
        adam.step(&mut logits, &g, adv.lr);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder};

    fn setup() -> (Network, FaultUniverse, Vec<Tensor>) {
        let mut rng = StdRng::seed_from_u64(6);
        let net = NetworkBuilder::new(5, LifParams { refrac_steps: 1, ..LifParams::default() })
            .dense(8)
            .dense(3)
            .build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let pool: Vec<_> =
            (0..3).map(|_| snn_tensor::init::bernoulli(&mut rng, Shape::d2(20, 5), 0.4)).collect();
        (net, u, pool)
    }

    #[test]
    fn perturbation_reduces_the_prediction_margin() {
        let (net, _, pool) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let sample = &pool[0];
        let clean = net.forward(sample, RecordOptions::spikes_only());
        let counts = clean.class_counts();
        let pred = clean.predict();
        let clean_margin = counts[pred]
            - counts
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != pred)
                .map(|(_, &c)| c)
                .fold(f32::NEG_INFINITY, f32::max);

        let advd = perturb(&net, sample, AdversarialConfig::default(), &mut rng);
        let adv_trace = net.forward(&advd, RecordOptions::spikes_only());
        let adv_counts = adv_trace.class_counts();
        let adv_margin = adv_counts[pred]
            - adv_counts
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != pred)
                .map(|(_, &c)| c)
                .fold(f32::NEG_INFINITY, f32::max);
        assert!(adv_margin <= clean_margin, "margin grew: {clean_margin} → {adv_margin}");
    }

    #[test]
    fn adversarial_greedy_runs_one_campaign_per_candidate() {
        let (net, u, pool) = setup();
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = BaselineConfig { threads: 1, ..BaselineConfig::default() };
        let adv = AdversarialConfig { steps: 8, ..AdversarialConfig::default() };
        let r = adversarial_greedy(&net, &u, u.faults(), &pool, adv, &mut rng, &cfg);
        assert_eq!(r.fault_sim_campaigns, 3);
        assert!(r.inputs.len() <= pool.len());
        assert_eq!(r.detected.len(), u.len());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn requires_pool() {
        let (net, u, _) = setup();
        let mut rng = StdRng::seed_from_u64(9);
        let _ = adversarial_greedy(
            &net,
            &u,
            u.faults(),
            &[],
            AdversarialConfig::default(),
            &mut rng,
            &BaselineConfig::default(),
        );
    }
}
