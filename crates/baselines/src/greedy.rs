use crate::{BaselineConfig, BaselineResult};
use snn_faults::{Fault, FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_model::Network;
use snn_tensor::Tensor;
use std::time::Instant;

/// Compact functional testing à la \[18\]: one fault-simulation campaign
/// per candidate dataset sample builds a detection matrix, then greedy
/// set cover selects the smallest sample set reaching the coverage target.
///
/// # Panics
///
/// Panics if `pool` is empty.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_baselines::{dataset_greedy, BaselineConfig};
/// use snn_faults::FaultUniverse;
/// use snn_model::{LifParams, NetworkBuilder};
/// use snn_tensor::Shape;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = NetworkBuilder::new(4, LifParams::default()).dense(3).build(&mut rng);
/// let u = FaultUniverse::standard(&net);
/// let pool: Vec<_> = (0..4)
///     .map(|_| snn_tensor::init::bernoulli(&mut rng, Shape::d2(12, 4), 0.5))
///     .collect();
/// let cfg = BaselineConfig { max_inputs: 3, ..BaselineConfig::default() };
/// let r = dataset_greedy(&net, &u, u.faults(), &pool, &cfg);
/// assert_eq!(r.fault_sim_campaigns, 4); // one campaign per candidate
/// assert!(r.inputs.len() <= 3);
/// ```
pub fn dataset_greedy(
    net: &Network,
    universe: &FaultUniverse,
    faults: &[Fault],
    pool: &[Tensor],
    cfg: &BaselineConfig,
) -> BaselineResult {
    assert!(!pool.is_empty(), "candidate pool must be non-empty");
    let started = Instant::now();
    let sim = FaultSimulator::new(
        net,
        FaultSimConfig { threads: cfg.threads, ..FaultSimConfig::default() },
    );

    // Detection matrix: one campaign per candidate — exactly the
    // O(M·T_FS) cost structure of the prior art.
    let detection: Vec<Vec<bool>> = pool
        .iter()
        .map(|input| {
            sim.detect(universe, faults, std::slice::from_ref(input))
                .per_fault
                .into_iter()
                .map(|o| o.detected)
                .collect()
        })
        .collect();

    let (selected, detected, history) =
        greedy_cover(&detection, cfg.target_coverage, cfg.max_inputs);

    BaselineResult {
        inputs: selected.iter().map(|&i| pool[i].clone()).collect(),
        detected,
        generation_time: started.elapsed(),
        coverage_history: history,
        fault_sim_campaigns: pool.len(),
    }
}

/// Greedy set cover over a candidate × fault detection matrix. Returns
/// the chosen candidate indices, the union detection vector, and the
/// coverage after each pick. Stops when the target is reached, the pick
/// budget is exhausted, or no candidate adds coverage.
pub(crate) fn greedy_cover(
    detection: &[Vec<bool>],
    target: f64,
    max_picks: usize,
) -> (Vec<usize>, Vec<bool>, Vec<f64>) {
    let num_faults = detection.first().map_or(0, |d| d.len());
    let mut covered = vec![false; num_faults];
    let mut chosen = Vec::new();
    let mut history = Vec::new();
    let mut used = vec![false; detection.len()];

    while chosen.len() < max_picks {
        let coverage = covered.iter().filter(|&&c| c).count() as f64 / num_faults.max(1) as f64;
        if coverage >= target {
            break;
        }
        // Pick the candidate covering the most still-undetected faults.
        let mut best: Option<(usize, usize)> = None;
        for (i, row) in detection.iter().enumerate() {
            if used[i] {
                continue;
            }
            let gain = row.iter().zip(covered.iter()).filter(|(&d, &c)| d && !c).count();
            if gain > 0 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((i, gain));
            }
        }
        let Some((pick, _)) = best else { break };
        used[pick] = true;
        for (c, &d) in covered.iter_mut().zip(detection[pick].iter()) {
            *c |= d;
        }
        chosen.push(pick);
        history.push(covered.iter().filter(|&&c| c).count() as f64 / num_faults.max(1) as f64);
    }
    (chosen, covered, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder};
    use snn_tensor::Shape;

    #[test]
    fn greedy_cover_picks_highest_gain_first() {
        let detection = vec![
            vec![true, true, false, false],  // gain 2
            vec![true, true, true, false],   // gain 3 — picked first
            vec![false, false, false, true], // complements
        ];
        let (picks, covered, history) = greedy_cover(&detection, 1.0, 10);
        assert_eq!(picks[0], 1);
        assert_eq!(picks, vec![1, 2]);
        assert!(covered.iter().filter(|&&c| c).count() == 4);
        assert_eq!(history.last().copied(), Some(1.0));
    }

    #[test]
    fn greedy_cover_stops_when_no_gain() {
        let detection = vec![vec![true, false], vec![true, false]];
        let (picks, covered, _) = greedy_cover(&detection, 1.0, 10);
        assert_eq!(picks.len(), 1); // second candidate adds nothing
        assert_eq!(covered, vec![true, false]);
    }

    #[test]
    fn greedy_cover_respects_budget_and_target() {
        let detection =
            vec![vec![true, false, false], vec![false, true, false], vec![false, false, true]];
        let (picks, _, _) = greedy_cover(&detection, 1.0, 2);
        assert_eq!(picks.len(), 2);
        let (picks2, _, history) = greedy_cover(&detection, 0.3, 10);
        assert_eq!(picks2.len(), 1);
        assert!(history[0] >= 0.3);
    }

    #[test]
    fn dataset_greedy_coverage_grows_monotonically() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = NetworkBuilder::new(5, LifParams::default()).dense(8).dense(3).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let pool: Vec<_> = (0..6)
            .map(|i| snn_tensor::init::bernoulli(&mut rng, Shape::d2(20, 5), 0.2 + 0.1 * i as f32))
            .collect();
        let cfg = BaselineConfig { threads: 1, ..BaselineConfig::default() };
        let r = dataset_greedy(&net, &u, u.faults(), &pool, &cfg);
        for w in r.coverage_history.windows(2) {
            assert!(w[1] >= w[0], "coverage must not decrease");
        }
        assert!((r.coverage() - r.coverage_history.last().copied().unwrap_or(0.0)).abs() < 1e-12);
        assert_eq!(r.fault_sim_campaigns, 6);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn dataset_greedy_requires_pool() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = NetworkBuilder::new(2, LifParams::default()).dense(2).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let _ = dataset_greedy(&net, &u, u.faults(), &[], &BaselineConfig::default());
    }
}
