//! Prior-art SNN functional test generation baselines.
//!
//! The paper's Table IV compares against four earlier methods; this crate
//! implements their algorithmic cores so the comparison can be reproduced
//! end-to-end:
//!
//! * [`dataset_greedy`] — compact functional testing à la \[18\]
//!   (El-Sayed et al., TCAD 2023): fault-simulate every candidate dataset
//!   sample, then greedily select the sample covering the most
//!   still-undetected faults until coverage saturates.
//! * [`random_inputs`] — random test compression à la \[20\]: keep adding
//!   random Bernoulli spike inputs while they improve coverage.
//! * [`adversarial_greedy`] — adversarial-example testing à la \[17\]/\[19\]:
//!   perturb dataset samples by gradient ascent against the network's own
//!   prediction margin (through the surrogate-gradient BPTT pipeline),
//!   then greedily select among the adversarial pool.
//!
//! All three share the structural weakness the paper exploits: they must
//! run a **fault-simulation campaign per candidate input** (cost
//! `O(M·T_FS)`), whereas the proposed method's loss-driven optimization
//! needs none during generation (`O(M + T_FS)`). Each
//! [`BaselineResult`] therefore records how many campaigns were spent.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use snn_baselines::{random_inputs, BaselineConfig};
//! use snn_faults::FaultUniverse;
//! use snn_model::{LifParams, NetworkBuilder};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = NetworkBuilder::new(4, LifParams::default()).dense(3).build(&mut rng);
//! let u = FaultUniverse::standard(&net);
//! let cfg = BaselineConfig { target_coverage: 0.9, max_inputs: 5, threads: 1 };
//! let result = random_inputs(&net, &u, u.faults(), 15, &mut rng, &cfg);
//! assert!(result.fault_sim_campaigns > 0);
//! assert_eq!(result.detected.len(), u.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversarial;
mod greedy;
mod random;
mod result;

pub use adversarial::{adversarial_greedy, AdversarialConfig};
pub use greedy::dataset_greedy;
pub use random::random_inputs;
pub use result::{BaselineConfig, BaselineResult};

pub(crate) use greedy::greedy_cover;
