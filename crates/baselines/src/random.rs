use crate::{BaselineConfig, BaselineResult};
use rand::Rng;
use snn_faults::{Fault, FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_model::Network;
use snn_tensor::Shape;
use std::time::Instant;

/// Random-input test generation à la \[20\]: draw Bernoulli spike tensors
/// and keep each one that detects at least one still-undetected fault,
/// until the coverage target, the input budget, or a patience limit.
///
/// Every candidate costs one fault-simulation campaign over the remaining
/// undetected faults — the unbounded `O(M·T_FS)` loop the paper's method
/// avoids.
///
/// See the crate-level example for usage.
pub fn random_inputs(
    net: &Network,
    universe: &FaultUniverse,
    faults: &[Fault],
    steps_per_input: usize,
    rng: &mut impl Rng,
    cfg: &BaselineConfig,
) -> BaselineResult {
    let started = Instant::now();
    let sim = FaultSimulator::new(
        net,
        FaultSimConfig { threads: cfg.threads, ..FaultSimConfig::default() },
    );

    let mut detected = vec![false; faults.len()];
    let mut inputs = Vec::new();
    let mut history = Vec::new();
    let mut campaigns = 0usize;
    // Give up after this many consecutive useless candidates.
    let patience = 8usize;
    let mut stale = 0usize;

    while inputs.len() < cfg.max_inputs && stale < patience {
        let coverage = detected.iter().filter(|&&d| d).count() as f64 / faults.len().max(1) as f64;
        if coverage >= cfg.target_coverage {
            break;
        }
        // Vary the spike density across candidates — pure 0.5 noise tends
        // to saturate refractory periods and stops helping early.
        let density = rng.gen_range(0.05..0.6);
        let candidate = snn_tensor::init::bernoulli(
            rng,
            Shape::d2(steps_per_input, net.input_features()),
            density,
        );

        // Only the still-undetected faults need simulation.
        let remaining: Vec<Fault> =
            faults.iter().zip(detected.iter()).filter(|(_, &d)| !d).map(|(f, _)| *f).collect();
        let outcome = sim.detect(universe, &remaining, std::slice::from_ref(&candidate));
        campaigns += 1;

        let mut gained = 0usize;
        for (f, o) in remaining.iter().zip(outcome.per_fault.iter()) {
            if o.detected {
                // Map back via fault id order (faults slice is id-aligned
                // with `detected` by position).
                let pos = faults
                    .iter()
                    .position(|g| g.id == f.id)
                    // snn-lint: allow(L-PANIC): `remaining` is filtered from `faults` above, so the id is always present
                    .expect("remaining fault comes from the fault list");
                if !detected[pos] {
                    detected[pos] = true;
                    gained += 1;
                }
            }
        }
        if gained > 0 {
            inputs.push(candidate);
            history
                .push(detected.iter().filter(|&&d| d).count() as f64 / faults.len().max(1) as f64);
            stale = 0;
        } else {
            stale += 1;
        }
    }

    BaselineResult {
        inputs,
        detected,
        generation_time: started.elapsed(),
        coverage_history: history,
        fault_sim_campaigns: campaigns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder};

    fn setup() -> (Network, FaultUniverse) {
        let mut rng = StdRng::seed_from_u64(2);
        let net = NetworkBuilder::new(5, LifParams { refrac_steps: 1, ..LifParams::default() })
            .dense(8)
            .dense(3)
            .build(&mut rng);
        let u = FaultUniverse::standard(&net);
        (net, u)
    }

    #[test]
    fn random_accumulates_coverage() {
        let (net, u) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = BaselineConfig { target_coverage: 0.8, max_inputs: 30, threads: 1 };
        let r = random_inputs(&net, &u, u.faults(), 20, &mut rng, &cfg);
        assert!(r.coverage() > 0.2, "coverage {}", r.coverage());
        assert!(!r.inputs.is_empty());
        assert_eq!(r.inputs.len(), r.coverage_history.len());
        for w in r.coverage_history.windows(2) {
            assert!(w[1] > w[0], "kept inputs must add coverage");
        }
        assert!(r.fault_sim_campaigns >= r.inputs.len());
    }

    #[test]
    fn input_budget_is_respected() {
        let (net, u) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = BaselineConfig { target_coverage: 1.0, max_inputs: 2, threads: 1 };
        let r = random_inputs(&net, &u, u.faults(), 15, &mut rng, &cfg);
        assert!(r.inputs.len() <= 2);
    }

    #[test]
    fn reaching_target_stops_early() {
        let (net, u) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = BaselineConfig { target_coverage: 0.05, max_inputs: 50, threads: 1 };
        let r = random_inputs(&net, &u, u.faults(), 20, &mut rng, &cfg);
        assert!(r.coverage() >= 0.05);
        assert!(r.inputs.len() <= 3, "should stop almost immediately");
    }
}
