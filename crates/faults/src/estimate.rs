//! Statistical fault-coverage estimation.
//!
//! At paper scale the IBM universe holds 3.2 M faults; even a prefix-
//! cached campaign is expensive to run exhaustively after every change.
//! Industrial fault grading answers this with *fault sampling*: simulate
//! a uniform random sample and report the coverage with a confidence
//! interval. The estimator here uses the Wilson score interval, which
//! behaves well near 0% and 100% coverage — exactly where the paper's
//! results live.

use crate::{FaultSimulator, FaultUniverse};
use rand::Rng;
use serde::{Deserialize, Serialize};
use snn_tensor::Tensor;

/// A sampled fault-coverage estimate with its 95% confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageEstimate {
    /// Point estimate of the fault coverage in `[0, 1]`.
    pub fc: f64,
    /// Lower bound of the 95% Wilson interval.
    pub lo: f64,
    /// Upper bound of the 95% Wilson interval.
    pub hi: f64,
    /// Faults simulated.
    pub sampled: usize,
    /// Faults in the universe the sample was drawn from.
    pub universe: usize,
}

impl std::fmt::Display for CoverageEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2}% (95% CI [{:.2}%, {:.2}%], n={}/{})",
            self.fc * 100.0,
            self.lo * 100.0,
            self.hi * 100.0,
            self.sampled,
            self.universe
        )
    }
}

/// Wilson score interval for a binomial proportion at z = 1.96.
pub(crate) fn wilson(successes: usize, n: usize) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_964f64;
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let centre = p + z2 / (2.0 * n_f);
    let spread = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    (((centre - spread) / denom).max(0.0), ((centre + spread) / denom).min(1.0))
}

/// Estimates the fault coverage of `tests` by simulating a uniform sample
/// of `sample_size` faults from `universe`.
///
/// # Panics
///
/// Panics if `tests` is empty or `sample_size` is zero.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_faults::{estimate_coverage, FaultSimConfig, FaultSimulator, FaultUniverse};
/// use snn_model::{LifParams, NetworkBuilder};
/// use snn_tensor::Shape;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = NetworkBuilder::new(4, LifParams::default()).dense(6).dense(2).build(&mut rng);
/// let universe = FaultUniverse::standard(&net);
/// let sim = FaultSimulator::new(&net, FaultSimConfig::default());
/// let test = snn_tensor::init::bernoulli(&mut rng, Shape::d2(20, 4), 0.5);
///
/// let est = estimate_coverage(&sim, &universe, std::slice::from_ref(&test), 100, &mut rng);
/// assert!(est.lo <= est.fc && est.fc <= est.hi);
/// ```
pub fn estimate_coverage(
    sim: &FaultSimulator<'_>,
    universe: &FaultUniverse,
    tests: &[Tensor],
    sample_size: usize,
    rng: &mut impl Rng,
) -> CoverageEstimate {
    assert!(!tests.is_empty(), "estimation needs at least one test input");
    assert!(sample_size > 0, "sample size must be positive");
    let faults = universe.sample(rng, sample_size);
    if faults.is_empty() {
        // An empty universe (e.g. a pool-only network) has no faults to
        // detect; report 0.0 rather than 0/0 = NaN.
        return CoverageEstimate { fc: 0.0, lo: 0.0, hi: 1.0, sampled: 0, universe: 0 };
    }
    let outcome = sim.detect(universe, &faults, tests);
    let detected = outcome.detected_count();
    let n = faults.len();
    let (lo, hi) = wilson(detected, n);
    CoverageEstimate {
        fc: detected as f64 / n as f64,
        lo,
        hi,
        sampled: n,
        universe: universe.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultSimConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder};
    use snn_tensor::Shape;

    #[test]
    fn wilson_interval_basic_properties() {
        let (lo, hi) = wilson(50, 100);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.25);
        // extreme proportions stay inside [0, 1]
        let (lo0, hi0) = wilson(0, 100);
        assert!(lo0 >= 0.0);
        assert!(hi0 > 0.0 && hi0 < 0.1);
        let (lo1, hi1) = wilson(100, 100);
        assert!(lo1 > 0.9 && hi1 <= 1.0);
        // empty sample: maximal uncertainty
        assert_eq!(wilson(0, 0), (0.0, 1.0));
    }

    #[test]
    fn wilson_narrows_with_sample_size() {
        let (lo_s, hi_s) = wilson(8, 10);
        let (lo_l, hi_l) = wilson(800, 1000);
        assert!(hi_l - lo_l < hi_s - lo_s);
    }

    #[test]
    fn estimate_brackets_the_exhaustive_coverage() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = NetworkBuilder::new(5, LifParams { refrac_steps: 1, ..LifParams::default() })
            .dense(8)
            .dense(3)
            .build(&mut rng);
        let universe = FaultUniverse::standard(&net);
        let sim =
            FaultSimulator::new(&net, FaultSimConfig { threads: 1, ..FaultSimConfig::default() });
        let test = snn_tensor::init::bernoulli(&mut rng, Shape::d2(25, 5), 0.5);
        let tests = std::slice::from_ref(&test);

        let exact = sim.detect(&universe, universe.faults(), tests).fault_coverage();
        let est = estimate_coverage(&sim, &universe, tests, 150, &mut rng);
        assert!(
            est.lo <= exact && exact <= est.hi,
            "CI [{}, {}] misses exact {exact}",
            est.lo,
            est.hi
        );
        assert_eq!(est.sampled, 150);
        assert!(!est.to_string().is_empty());
    }

    #[test]
    fn full_sample_equals_exhaustive() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = NetworkBuilder::new(3, LifParams::default()).dense(4).build(&mut rng);
        let universe = FaultUniverse::standard(&net);
        let sim =
            FaultSimulator::new(&net, FaultSimConfig { threads: 1, ..FaultSimConfig::default() });
        let test = snn_tensor::init::bernoulli(&mut rng, Shape::d2(15, 3), 0.5);
        let tests = std::slice::from_ref(&test);
        let exact = sim.detect(&universe, universe.faults(), tests).fault_coverage();
        let est = estimate_coverage(&sim, &universe, tests, universe.len() * 2, &mut rng);
        assert!((est.fc - exact).abs() < 1e-12);
        assert_eq!(est.sampled, universe.len());
    }

    #[test]
    #[allow(clippy::float_cmp)] // asserting the exact 0.0 sentinel
    fn empty_universe_reports_zero_coverage_not_nan() {
        // A pool-only network has no spiking neurons and no weights, so
        // its fault universe is empty.
        let net = snn_model::Network::new(
            Shape::d3(2, 4, 4),
            vec![snn_model::Layer::Pool(snn_model::PoolLayer::new(2, (4, 4), 2))],
        );
        let universe = FaultUniverse::standard(&net);
        assert!(universe.is_empty());
        let sim = FaultSimulator::new(&net, FaultSimConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let test = snn_tensor::init::bernoulli(&mut rng, Shape::d2(5, 32), 0.5);
        let est = estimate_coverage(&sim, &universe, std::slice::from_ref(&test), 10, &mut rng);
        assert_eq!(est.fc, 0.0);
        assert_eq!(est.sampled, 0);
        assert!(est.fc.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one test")]
    fn estimate_requires_tests() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = NetworkBuilder::new(2, LifParams::default()).dense(2).build(&mut rng);
        let universe = FaultUniverse::standard(&net);
        let sim = FaultSimulator::new(&net, FaultSimConfig::default());
        let _ = estimate_coverage(&sim, &universe, &[], 10, &mut rng);
    }
}
