use serde::{Deserialize, Serialize};
use snn_model::{Network, WeightRef};

/// Behavioural fault type, following the paper's Section III taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Neuron produces non-stop output spikes even without input activity.
    NeuronSaturated,
    /// Neuron halts input spike propagation (never fires).
    NeuronDead,
    /// Timing-variation fault: the neuron's LIF parameters are perturbed
    /// (extension; not part of the paper's standard campaign counts).
    NeuronTiming {
        /// Multiplier on the firing threshold.
        threshold_scale: f32,
        /// Multiplier on the leak factor.
        leak_scale: f32,
        /// Signed change of the refractory period in ticks.
        refrac_delta: i32,
    },
    /// Synapse weight stuck at zero.
    SynapseDead,
    /// Synapse weight stuck at a large positive outlier.
    SynapseSatPos,
    /// Synapse weight stuck at a large negative outlier.
    SynapseSatNeg,
    /// One bit of the weight's quantized int8 memory word is flipped
    /// (extension).
    SynapseBitFlip {
        /// Bit position 0..=7 (7 = sign bit of the int8 word).
        bit: u8,
    },
}

impl FaultKind {
    /// `true` for neuron-level faults.
    pub fn is_neuron(&self) -> bool {
        matches!(
            self,
            FaultKind::NeuronSaturated | FaultKind::NeuronDead | FaultKind::NeuronTiming { .. }
        )
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::NeuronSaturated => "neuron-saturated",
            FaultKind::NeuronDead => "neuron-dead",
            FaultKind::NeuronTiming { .. } => "neuron-timing",
            FaultKind::SynapseDead => "synapse-dead",
            FaultKind::SynapseSatPos => "synapse-sat+",
            FaultKind::SynapseSatNeg => "synapse-sat-",
            FaultKind::SynapseBitFlip { .. } => "synapse-bitflip",
        }
    }
}

/// Where a fault lives in the network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultSite {
    /// A LIF neuron, addressed by layer and index within the layer.
    Neuron {
        /// Layer index in `Network::layers()`.
        layer: usize,
        /// Neuron index within the layer.
        index: usize,
    },
    /// A synaptic weight.
    Synapse(WeightRef),
}

impl FaultSite {
    /// The layer the fault is confined to — activity of earlier layers is
    /// provably unaffected in a feedforward network, which is what enables
    /// prefix-cached fault simulation.
    pub fn layer(&self) -> usize {
        match self {
            FaultSite::Neuron { layer, .. } => *layer,
            FaultSite::Synapse(r) => r.layer,
        }
    }
}

/// One enumerated fault: a site plus a kind, with a stable id within its
/// universe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// Index of this fault within its [`FaultUniverse`].
    pub id: usize,
    /// Location in the network.
    pub site: FaultSite,
    /// Behavioural fault type.
    pub kind: FaultKind,
}

/// Magnitudes used when concretizing saturation and quantization faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModelConfig {
    /// Saturated synapse weight = `± sat_factor × max|w|` over the network,
    /// making it an outlier of the weight distribution (paper §III).
    pub sat_factor: f32,
    /// Timing-fault threshold perturbation (± this fraction).
    pub timing_threshold_delta: f32,
    /// Timing-fault leak perturbation (± this fraction).
    pub timing_leak_delta: f32,
    /// Timing-fault refractory change in ticks.
    pub timing_refrac_delta: i32,
}

impl Default for FaultModelConfig {
    fn default() -> Self {
        Self {
            sat_factor: 2.0,
            timing_threshold_delta: 0.5,
            timing_leak_delta: 0.3,
            timing_refrac_delta: 3,
        }
    }
}

/// The enumerated fault space of a network.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_faults::FaultUniverse;
/// use snn_model::{LifParams, NetworkBuilder};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = NetworkBuilder::new(3, LifParams::default()).dense(2).build(&mut rng);
/// let u = FaultUniverse::standard(&net);
/// // 2 per neuron + 3 per synapse
/// assert_eq!(u.len(), 2 * 2 + 3 * 6);
/// assert_eq!(u.neuron_fault_count(), 4);
/// assert_eq!(u.synapse_fault_count(), 18);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultUniverse {
    faults: Vec<Fault>,
    config: FaultModelConfig,
    /// `max|w|` of the network at enumeration time (used for saturation
    /// values).
    pub max_abs_weight: f32,
}

impl FaultUniverse {
    /// The paper's standard campaign: `{saturated, dead}` per neuron and
    /// `{dead, sat+, sat−}` per synapse.
    pub fn standard(net: &Network) -> Self {
        Self::with_config(net, FaultModelConfig::default(), false, &[])
    }

    /// Full universe with optional extensions: timing-variation neuron
    /// faults and bit-flip synapse faults at the given bit positions.
    ///
    /// # Panics
    ///
    /// Panics if any bit position exceeds 7.
    pub fn with_config(
        net: &Network,
        config: FaultModelConfig,
        timing_faults: bool,
        bitflip_bits: &[u8],
    ) -> Self {
        assert!(
            bitflip_bits.iter().all(|&b| b < 8),
            "bit positions must be < 8 for int8 quantization"
        );
        let mut faults = Vec::new();
        let mut push = |site, kind| {
            let id = faults.len();
            faults.push(Fault { id, site, kind });
        };
        for (layer, count) in net.neuron_layout() {
            for index in 0..count {
                let site = FaultSite::Neuron { layer, index };
                push(site, FaultKind::NeuronSaturated);
                push(site, FaultKind::NeuronDead);
                if timing_faults {
                    push(
                        site,
                        FaultKind::NeuronTiming {
                            threshold_scale: 1.0 + config.timing_threshold_delta,
                            leak_scale: 1.0 - config.timing_leak_delta,
                            refrac_delta: config.timing_refrac_delta,
                        },
                    );
                }
            }
        }
        for global in 0..net.synapse_count() {
            let r = net.locate_weight(global);
            let site = FaultSite::Synapse(r);
            push(site, FaultKind::SynapseDead);
            push(site, FaultKind::SynapseSatPos);
            push(site, FaultKind::SynapseSatNeg);
            for &bit in bitflip_bits {
                push(site, FaultKind::SynapseBitFlip { bit });
            }
        }
        Self { faults, config, max_abs_weight: net.max_abs_weight() }
    }

    /// The enumerated faults, id-ordered.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Total fault count.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of neuron-level faults.
    pub fn neuron_fault_count(&self) -> usize {
        self.faults.iter().filter(|f| f.kind.is_neuron()).count()
    }

    /// Number of synapse-level faults.
    pub fn synapse_fault_count(&self) -> usize {
        self.len() - self.neuron_fault_count()
    }

    /// The magnitude configuration used at enumeration.
    pub fn config(&self) -> &FaultModelConfig {
        &self.config
    }

    /// Uniform random sample of `n` faults (without replacement), keeping
    /// id order. Useful for statistical fault-coverage estimation on large
    /// universes.
    pub fn sample(&self, rng: &mut impl rand::Rng, n: usize) -> Vec<Fault> {
        use rand::seq::SliceRandom;
        let n = n.min(self.faults.len());
        let mut idx: Vec<usize> = (0..self.faults.len()).collect();
        idx.shuffle(rng);
        let mut chosen: Vec<usize> = idx.into_iter().take(n).collect();
        chosen.sort_unstable();
        chosen.into_iter().map(|i| self.faults[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder};

    fn net() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        NetworkBuilder::new(4, LifParams::default()).dense(5).dense(3).build(&mut rng)
    }

    #[test]
    fn standard_universe_matches_table2_multiplicity() {
        let n = net();
        let u = FaultUniverse::standard(&n);
        assert_eq!(u.neuron_fault_count(), 2 * n.neuron_count());
        assert_eq!(u.synapse_fault_count(), 3 * n.synapse_count());
        assert_eq!(u.len(), 2 * 8 + 3 * (20 + 15));
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let u = FaultUniverse::standard(&net());
        for (i, f) in u.faults().iter().enumerate() {
            assert_eq!(f.id, i);
        }
    }

    #[test]
    fn timing_extension_adds_one_fault_per_neuron() {
        let n = net();
        let u = FaultUniverse::with_config(&n, FaultModelConfig::default(), true, &[]);
        assert_eq!(u.neuron_fault_count(), 3 * n.neuron_count());
    }

    #[test]
    fn bitflip_extension_adds_per_bit_faults() {
        let n = net();
        let u = FaultUniverse::with_config(&n, FaultModelConfig::default(), false, &[0, 7]);
        assert_eq!(u.synapse_fault_count(), 5 * n.synapse_count());
    }

    #[test]
    #[should_panic(expected = "bit positions")]
    fn bitflip_rejects_bad_bit() {
        FaultUniverse::with_config(&net(), FaultModelConfig::default(), false, &[8]);
    }

    #[test]
    fn sample_is_subset_without_replacement() {
        let u = FaultUniverse::standard(&net());
        let mut rng = StdRng::seed_from_u64(1);
        let s = u.sample(&mut rng, 10);
        assert_eq!(s.len(), 10);
        let mut ids: Vec<usize> = s.iter().map(|f| f.id).collect();
        let before = ids.clone();
        ids.dedup();
        assert_eq!(ids.len(), 10);
        assert_eq!(before, ids, "sample should be id-ordered");
    }

    #[test]
    fn sample_caps_at_universe_size() {
        let u = FaultUniverse::standard(&net());
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(u.sample(&mut rng, 10_000).len(), u.len());
    }

    #[test]
    fn sample_is_seed_deterministic() {
        let u = FaultUniverse::standard(&net());
        let a = u.sample(&mut StdRng::seed_from_u64(7), 12);
        let b = u.sample(&mut StdRng::seed_from_u64(7), 12);
        assert_eq!(a, b, "same seed must draw the same sample");
        let c = u.sample(&mut StdRng::seed_from_u64(8), 12);
        assert_ne!(a, c, "different seeds should draw different samples");
    }

    #[test]
    fn enumeration_is_deterministic() {
        let n = net();
        let a = FaultUniverse::with_config(&n, FaultModelConfig::default(), true, &[0, 7]);
        let b = FaultUniverse::with_config(&n, FaultModelConfig::default(), true, &[0, 7]);
        assert_eq!(a, b);
    }

    #[test]
    fn section3_counts_on_conv_pool_recurrent_topology() {
        // Mixed topology exercising every layer kind: the §III standard
        // universe holds 2 faults per spiking neuron and 3 per weight
        // (pool layers contribute neither).
        let mut rng = StdRng::seed_from_u64(5);
        let n = NetworkBuilder::new_spatial(2, 8, 8, LifParams::default())
            .avg_pool(2)
            .conv(3, 3, 1, 1)
            .dense(6)
            .build(&mut rng);
        let u = FaultUniverse::standard(&n);
        // conv: 3 channels on a 4×4 map = 48 neurons; dense: 6.
        let neurons = 3 * 4 * 4 + 6;
        // conv kernel: 3·2·3·3 = 54 weights; dense: 6·48 = 288.
        let synapses = 3 * 2 * 3 * 3 + 6 * 48;
        assert_eq!(n.neuron_count(), neurons);
        assert_eq!(n.synapse_count(), synapses);
        assert_eq!(u.neuron_fault_count(), 2 * neurons);
        assert_eq!(u.synapse_fault_count(), 3 * synapses);

        let mut rng = StdRng::seed_from_u64(6);
        let r = NetworkBuilder::new(10, LifParams::default()).recurrent(4).build(&mut rng);
        let ru = FaultUniverse::standard(&r);
        // recurrent: 4·10 input weights + 4·4 recurrent weights.
        assert_eq!(ru.len(), 2 * 4 + 3 * (4 * 10 + 4 * 4));
    }

    #[test]
    fn bitflip_accepts_boundary_bit_seven() {
        let n = net();
        let u = FaultUniverse::with_config(&n, FaultModelConfig::default(), false, &[7]);
        assert_eq!(u.synapse_fault_count(), 4 * n.synapse_count());
        assert!(u.faults().iter().any(|f| matches!(f.kind, FaultKind::SynapseBitFlip { bit: 7 })));
    }

    #[test]
    fn site_layer_reflects_fault_location() {
        let n = net();
        let u = FaultUniverse::standard(&n);
        for f in u.faults() {
            match f.site {
                FaultSite::Neuron { layer, index } => {
                    assert!(layer < n.layers().len());
                    assert!(index < n.layers()[layer].out_features());
                    assert_eq!(f.site.layer(), layer);
                }
                FaultSite::Synapse(r) => {
                    assert!(r.layer < n.layers().len());
                    assert_eq!(f.site.layer(), r.layer);
                }
            }
        }
    }
}
