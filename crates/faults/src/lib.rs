//! Behavioural fault models, fault injection and parallel fault simulation
//! for spiking neural networks.
//!
//! Implements Section III of *"Minimum Time Maximum Fault Coverage Testing
//! of Spiking Neural Networks"* (DATE 2025):
//!
//! * [`FaultUniverse`] — enumeration of the behavioural fault space. The
//!   paper's campaign uses exactly **2 faults per neuron** (saturated,
//!   dead) and **3 faults per synapse** (dead, positively saturated,
//!   negatively saturated) — recoverable from its Table II, where fault
//!   totals are exactly 2× the neuron count and 3× the synapse count.
//!   Timing-variation neuron faults and memory bit-flip synapse faults are
//!   available as extensions.
//! * [`Injection`] — how a [`Fault`] is realized on a network: weight
//!   faults patch the weight tensor; neuron faults use the simulator's
//!   behavioural hooks.
//! * [`FaultSimulator`] — the detection campaign of Eq. (3)/(4): a fault is
//!   detected by a test input if it changes the output spike trains. The
//!   simulator exploits the feedforward structure (*prefix caching*: a
//!   fault in layer ℓ cannot alter activity before ℓ) and *early exit*
//!   (identical layer activity ⇒ identical suffix), and fans the fault list
//!   out over a crossbeam thread pool.
//! * [`chunk`] — chunk-addressable campaigns: deterministic sharding of
//!   a fault list, subset simulation by explicit fault ids, exact chunk
//!   merging and the campaign verdict digest backing `snn-cluster`'s
//!   bit-identical distributed execution.
//! * [`criticality`] — labels each fault critical (alters a top-1
//!   prediction on at least one dataset sample) or benign.
//! * [`CoverageReport`] — fault-coverage accounting in the four classes the
//!   paper reports (critical/benign × neuron/synapse), plus escape
//!   (undetected-critical) accuracy-drop analysis.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use snn_faults::{FaultSimConfig, FaultSimulator, FaultUniverse};
//! use snn_model::{LifParams, NetworkBuilder};
//! use snn_tensor::{Shape, Tensor};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = NetworkBuilder::new(4, LifParams::default())
//!     .dense(6)
//!     .dense(2)
//!     .build(&mut rng);
//! let universe = FaultUniverse::standard(&net);
//! assert_eq!(universe.len(), 2 * net.neuron_count() + 3 * net.synapse_count());
//!
//! let test = snn_tensor::init::bernoulli(&mut rng, Shape::d2(20, 4), 0.5);
//! let sim = FaultSimulator::new(&net, FaultSimConfig::default());
//! let outcome = sim.detect(&universe, universe.faults(), std::slice::from_ref(&test));
//! assert_eq!(outcome.per_fault.len(), universe.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coverage;
mod dictionary;
mod engine;
mod estimate;
mod inject;
mod sim;
mod universe;

pub mod chunk;
pub mod criticality;
pub mod parallel;
pub mod progress;
pub mod transient;

pub use chunk::{verdict_digest, verdict_digest_hex, ChunkCampaignError, ChunkRange, MergeError};
pub use coverage::{escape_max_accuracy_drop, ClassCoverage, CoverageReport};
pub use dictionary::{Diagnosis, FaultDictionary};
pub use engine::{Engine, ParseEngineError};
pub use estimate::{estimate_coverage, CoverageEstimate};
pub use inject::{bit_flip_int8, Injection, InjectionError};
pub use progress::{CancelToken, Cancelled, NullSink, Progress, ProgressSink};
pub use sim::{
    provably_undetectable, record_faults_detected, record_faults_simulated, ActivitySummary,
    CampaignError, CampaignOutcome, FaultOutcome, FaultSimConfig, FaultSimulator,
};
pub use transient::{windowed_forward, TransientWindow};
pub use universe::{Fault, FaultKind, FaultModelConfig, FaultSite, FaultUniverse};
