//! Chunk-addressable campaigns: deterministic sharding of a fault list
//! into contiguous id ranges, subset simulation by explicit fault ids,
//! exact merging of per-chunk outcomes, and a campaign verdict digest.
//!
//! This is the substrate of `snn-cluster`'s distributed campaigns: the
//! coordinator plans chunks with [`plan`], workers simulate each chunk
//! with [`FaultSimulator::detect_chunk_with`], and the coordinator
//! reassembles the full campaign with [`merge_chunks`]. Because every
//! fault's [`FaultOutcome`] is computed independently of its neighbours,
//! concatenating chunk outcomes in chunk order is **bit-identical** to a
//! single `detect_with` over the whole list — [`verdict_digest`] makes
//! that claim checkable across processes.

use crate::progress::{CancelToken, ProgressSink};
use crate::sim::{CampaignError, FaultOutcome, FaultSimulator};
use crate::{Fault, FaultUniverse};
use serde::{Deserialize, Serialize};

/// One contiguous chunk of a campaign's fault list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkRange {
    /// Position of this chunk in the plan (0-based, merge order).
    pub index: usize,
    /// Offset of the chunk's first fault in the campaign fault list.
    pub start: usize,
    /// Number of faults in the chunk.
    pub len: usize,
}

impl ChunkRange {
    /// The half-open fault-list range this chunk covers.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

/// Splits a campaign over `total` faults into contiguous chunks of at
/// most `chunk_size` faults (a `chunk_size` of 0 is treated as 1).
///
/// The plan is a pure function of `(total, chunk_size)`, so coordinator
/// and tests can re-derive it independently.
pub fn plan(total: usize, chunk_size: usize) -> Vec<ChunkRange> {
    let size = chunk_size.max(1);
    let mut chunks = Vec::with_capacity(total.div_ceil(size));
    let mut start = 0usize;
    while start < total {
        let len = size.min(total - start);
        chunks.push(ChunkRange { index: chunks.len(), start, len });
        start += len;
    }
    chunks
}

/// Error from a chunk campaign over explicit fault ids.
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkCampaignError {
    /// A requested fault id is not present in the universe.
    UnknownFault {
        /// The offending id.
        fault_id: usize,
        /// Size of the universe it was looked up in.
        universe_len: usize,
    },
    /// The underlying campaign failed.
    Campaign(CampaignError),
}

impl From<CampaignError> for ChunkCampaignError {
    fn from(e: CampaignError) -> Self {
        Self::Campaign(e)
    }
}

impl std::fmt::Display for ChunkCampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownFault { fault_id, universe_len } => {
                write!(f, "fault id {fault_id} outside universe of {universe_len}")
            }
            Self::Campaign(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ChunkCampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Campaign(e) => Some(e),
            Self::UnknownFault { .. } => None,
        }
    }
}

/// Resolves explicit fault ids against a universe, in the given order.
///
/// # Errors
///
/// [`ChunkCampaignError::UnknownFault`] on the first id outside the
/// universe.
pub fn select_faults(
    universe: &FaultUniverse,
    fault_ids: &[usize],
) -> Result<Vec<Fault>, ChunkCampaignError> {
    let faults = universe.faults();
    fault_ids
        .iter()
        .map(|&id| {
            faults.iter().find(|f| f.id == id).copied().ok_or(ChunkCampaignError::UnknownFault {
                fault_id: id,
                universe_len: faults.len(),
            })
        })
        .collect()
}

impl FaultSimulator<'_> {
    /// Runs a detection campaign over an explicit list of fault ids — the
    /// chunk-execution primitive of distributed campaigns. Outcomes come
    /// back in the order of `fault_ids` and are bit-identical to the
    /// corresponding entries of a whole-list [`detect_with`] run.
    ///
    /// [`detect_with`]: FaultSimulator::detect_with
    ///
    /// # Errors
    ///
    /// [`ChunkCampaignError::UnknownFault`] for ids outside `universe`;
    /// otherwise any [`CampaignError`] of the underlying campaign.
    ///
    /// # Panics
    ///
    /// Panics if `tests` is empty (as [`detect_with`]).
    pub fn detect_chunk_with(
        &self,
        universe: &FaultUniverse,
        fault_ids: &[usize],
        tests: &[snn_tensor::Tensor],
        sink: &dyn ProgressSink,
        cancel: &CancelToken,
    ) -> Result<Vec<FaultOutcome>, ChunkCampaignError> {
        let faults = select_faults(universe, fault_ids)?;
        let outcome = self.detect_with(universe, &faults, tests, sink, cancel)?;
        Ok(outcome.per_fault)
    }
}

/// Error merging chunk outcomes back into one campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The part list does not match the plan's chunk count.
    WrongChunkCount {
        /// Parts supplied.
        got: usize,
        /// Chunks planned.
        want: usize,
    },
    /// One chunk's outcome count disagrees with its planned length.
    WrongChunkLen {
        /// The chunk index.
        index: usize,
        /// Outcomes supplied.
        got: usize,
        /// Outcomes planned.
        want: usize,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WrongChunkCount { got, want } => {
                write!(f, "merge of {got} chunk(s) against a plan of {want}")
            }
            Self::WrongChunkLen { index, got, want } => {
                write!(f, "chunk {index} carries {got} outcome(s), plan says {want}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Concatenates per-chunk outcomes in chunk order, validating each part
/// against the plan. The result is bit-identical to a single campaign
/// over the whole fault list.
///
/// # Errors
///
/// [`MergeError`] when the parts disagree with the plan's shape.
pub fn merge_chunks(
    chunks: &[ChunkRange],
    parts: Vec<Vec<FaultOutcome>>,
) -> Result<Vec<FaultOutcome>, MergeError> {
    if parts.len() != chunks.len() {
        return Err(MergeError::WrongChunkCount { got: parts.len(), want: chunks.len() });
    }
    let total = chunks.iter().map(|c| c.len).sum();
    let mut out = Vec::with_capacity(total);
    for (chunk, part) in chunks.iter().zip(parts) {
        if part.len() != chunk.len {
            return Err(MergeError::WrongChunkLen {
                index: chunk.index,
                got: part.len(),
                want: chunk.len,
            });
        }
        out.extend(part);
    }
    Ok(out)
}

/// FNV-1a 64 digest over every outcome's exact verdict: fault id,
/// detection bit, the **bit pattern** of the distance (`f32::to_bits`,
/// immune to any lossy float formatting) and any recorded class diff.
/// Two campaigns agree bit-for-bit iff their digests match.
pub fn verdict_digest(outcomes: &[FaultOutcome]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    for o in outcomes {
        eat(&(o.fault_id as u64).to_le_bytes());
        eat(&[u8::from(o.detected)]);
        eat(&o.distance.to_bits().to_le_bytes());
        match &o.class_diff {
            None => eat(&[0]),
            Some(diff) => {
                eat(&[1]);
                eat(&(diff.len() as u64).to_le_bytes());
                for v in diff {
                    eat(&v.to_bits().to_le_bytes());
                }
            }
        }
    }
    hash
}

/// [`verdict_digest`] rendered as the fixed-width hex string carried in
/// job results and compared by the CI bit-identity gate.
pub fn verdict_digest_hex(outcomes: &[FaultOutcome]) -> String {
    format!("{:016x}", verdict_digest(outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::NullSink;
    use crate::FaultSimConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, Network, NetworkBuilder};
    use snn_tensor::{Shape, Tensor};

    fn setup() -> (Network, FaultUniverse, Tensor) {
        let mut rng = StdRng::seed_from_u64(11);
        let net = NetworkBuilder::new(5, LifParams::default()).dense(8).dense(3).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let test = snn_tensor::init::bernoulli(&mut rng, Shape::d2(24, 5), 0.4);
        (net, u, test)
    }

    #[test]
    fn plan_covers_every_fault_exactly_once() {
        for (total, size) in [(0, 4), (1, 4), (7, 3), (12, 3), (12, 100), (5, 0)] {
            let chunks = plan(total, size);
            let mut covered = 0usize;
            for (i, c) in chunks.iter().enumerate() {
                assert_eq!(c.index, i);
                assert_eq!(c.start, covered, "chunks are contiguous");
                assert!(c.len >= 1);
                covered += c.len;
            }
            assert_eq!(covered, total, "plan({total}, {size})");
        }
        assert!(plan(0, 8).is_empty());
    }

    #[test]
    fn chunked_campaign_is_bit_identical_to_whole() {
        let (net, u, test) = setup();
        let sim = FaultSimulator::new(&net, FaultSimConfig::default());
        let whole = sim.detect(&u, u.faults(), std::slice::from_ref(&test));

        for chunk_size in [1, 3, 17, 1000] {
            let chunks = plan(u.len(), chunk_size);
            let parts: Vec<Vec<FaultOutcome>> = chunks
                .iter()
                .map(|c| {
                    let ids: Vec<usize> = c.range().collect();
                    sim.detect_chunk_with(
                        &u,
                        &ids,
                        std::slice::from_ref(&test),
                        &NullSink,
                        &CancelToken::new(),
                    )
                    .unwrap()
                })
                .collect();
            let merged = merge_chunks(&chunks, parts).unwrap();
            assert_eq!(merged, whole.per_fault, "chunk size {chunk_size}");
            assert_eq!(
                verdict_digest(&merged),
                verdict_digest(&whole.per_fault),
                "chunk size {chunk_size}"
            );
        }
    }

    #[test]
    fn unknown_fault_id_is_a_typed_error() {
        let (net, u, test) = setup();
        let sim = FaultSimulator::new(&net, FaultSimConfig::default());
        let err = sim
            .detect_chunk_with(
                &u,
                &[u.len() + 5],
                std::slice::from_ref(&test),
                &NullSink,
                &CancelToken::new(),
            )
            .unwrap_err();
        assert!(matches!(err, ChunkCampaignError::UnknownFault { .. }), "{err}");
    }

    #[test]
    fn merge_rejects_shape_mismatches() {
        let chunks = plan(4, 2);
        let outcome = |id: usize| FaultOutcome {
            fault_id: id,
            detected: false,
            distance: 0.0,
            class_diff: None,
        };
        let short = vec![vec![outcome(0), outcome(1)]];
        assert_eq!(
            merge_chunks(&chunks, short).unwrap_err(),
            MergeError::WrongChunkCount { got: 1, want: 2 }
        );
        let lopsided = vec![vec![outcome(0), outcome(1)], vec![outcome(2)]];
        assert_eq!(
            merge_chunks(&chunks, lopsided).unwrap_err(),
            MergeError::WrongChunkLen { index: 1, got: 1, want: 2 }
        );
    }

    #[test]
    fn digest_is_sensitive_to_every_verdict_field() {
        let base = vec![FaultOutcome {
            fault_id: 3,
            detected: true,
            distance: 1.25,
            class_diff: Some(vec![0.5, -0.5]),
        }];
        let d0 = verdict_digest(&base);
        let mut flipped = base.clone();
        flipped[0].detected = false;
        assert_ne!(verdict_digest(&flipped), d0);
        let mut nudged = base.clone();
        nudged[0].distance = 1.25 + f32::EPSILON;
        assert_ne!(verdict_digest(&nudged), d0);
        let mut relabeled = base.clone();
        relabeled[0].fault_id = 4;
        assert_ne!(verdict_digest(&relabeled), d0);
        let mut stripped = base.clone();
        stripped[0].class_diff = None;
        assert_ne!(verdict_digest(&stripped), d0);
        assert_eq!(verdict_digest_hex(&base), format!("{d0:016x}"));
    }
}
