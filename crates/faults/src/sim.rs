use crate::inject::InjectionError;
use crate::progress::{CancelToken, Cancelled, NullSink, Progress, ProgressSink};
use crate::{parallel, Fault, FaultKind, FaultSite, FaultUniverse, Injection};
use serde::{Deserialize, Serialize};
use snn_model::{Layer, Network, NeuronFaultMap, RecordOptions, Trace};
use snn_tensor::Tensor;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Configuration of a fault-simulation campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSimConfig {
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Re-simulate only from the faulty layer onward, reusing the cached
    /// fault-free activity of earlier layers. Sound for the feedforward
    /// (and layer-local recurrent) networks this workspace builds.
    pub prefix_cache: bool,
    /// Stop re-simulation as soon as a layer's faulty activity matches the
    /// fault-free baseline (the remaining suffix is then provably
    /// identical).
    pub early_exit: bool,
    /// Skip simulation entirely for faults that provably cannot change
    /// any activity under a given test input: weight faults whose source
    /// neuron/input never spikes (the synapse carries no traffic, so its
    /// value is unobservable), and dead faults on neurons that never fire
    /// anyway. Sound for all fault kinds in the standard universe.
    pub activity_filter: bool,
    /// Record the per-class output spike-count difference of each detected
    /// fault (needed to regenerate the paper's Fig. 9; costs memory).
    pub record_class_diffs: bool,
    /// Requested execution engine (`None` = [`Engine::Auto`]). Carried in
    /// the config so job and campaign wire types transport it unchanged;
    /// [`FaultSimulator`] itself is always the scalar engine — dispatch to
    /// the packed engine happens in `snn-batch`, which reads this field.
    pub engine: Option<crate::Engine>,
}

impl Default for FaultSimConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            prefix_cache: true,
            early_exit: true,
            activity_filter: true,
            record_class_diffs: false,
            engine: None,
        }
    }
}

/// Detection outcome for one fault, aggregated over all test inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultOutcome {
    /// Id of the fault in its universe.
    pub fault_id: usize,
    /// `true` if any test input changed the output spike trains (Eq. 3).
    pub detected: bool,
    /// Largest L1 output-spike-train distance over the test inputs.
    pub distance: f32,
    /// Signed per-class spike-count difference (faulty − fault-free) of
    /// the test input realizing `distance`, when recording was requested.
    pub class_diff: Option<Vec<f32>>,
}

/// Result of a detection campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// Per-fault outcomes, in the order the faults were supplied.
    pub per_fault: Vec<FaultOutcome>,
    /// Wall-clock duration of the campaign.
    pub elapsed: Duration,
}

impl CampaignOutcome {
    /// Number of detected faults.
    pub fn detected_count(&self) -> usize {
        self.per_fault.iter().filter(|o| o.detected).count()
    }

    /// Fault coverage over the supplied fault list (Eq. 4).
    pub fn fault_coverage(&self) -> f64 {
        if self.per_fault.is_empty() {
            return 0.0;
        }
        self.detected_count() as f64 / self.per_fault.len() as f64
    }
}

/// Error from a [`FaultSimulator::detect_with`] campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CampaignError {
    /// The cancel token tripped before the campaign finished.
    Cancelled,
    /// A supplied fault was ill-formed (site/kind mismatch).
    Injection(InjectionError),
}

impl From<Cancelled> for CampaignError {
    fn from(_: Cancelled) -> Self {
        Self::Cancelled
    }
}

impl From<InjectionError> for CampaignError {
    fn from(e: InjectionError) -> Self {
        Self::Injection(e)
    }
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Cancelled => f.write_str("fault campaign cancelled"),
            Self::Injection(e) => write!(f, "ill-formed fault: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Injection(e) => Some(e),
            Self::Cancelled => None,
        }
    }
}

/// Bumps the campaign-wide simulated-faults counter. The one registration
/// site for this metric: the scalar loop and the packed engine
/// (`snn-batch`) both route through here so the kind/help text can never
/// diverge between engines.
pub fn record_faults_simulated(n: u64) {
    snn_obs::counter!("snn_faultsim_faults_simulated_total", "Faults simulated across campaigns.")
        .add(n);
}

/// Bumps the campaign-wide detected-faults counter (single registration
/// site, shared by both engines — see [`record_faults_simulated`]).
pub fn record_faults_detected(n: u64) {
    snn_obs::counter!("snn_faultsim_faults_detected_total", "Faults detected across campaigns.")
        .add(n);
}

/// Parallel, prefix-cached fault simulator over a fixed fault-free network.
///
/// See the crate-level example for usage.
#[derive(Debug)]
pub struct FaultSimulator<'a> {
    net: &'a Network,
    cfg: FaultSimConfig,
}

impl<'a> FaultSimulator<'a> {
    /// Creates a simulator for `net`.
    pub fn new(net: &'a Network, cfg: FaultSimConfig) -> Self {
        Self { net, cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FaultSimConfig {
        &self.cfg
    }

    /// Runs the detection campaign of Eq. (3): each fault is applied in
    /// turn and simulated against every test input until one detects it.
    ///
    /// `universe` supplies the fault magnitudes; `faults` may be the whole
    /// universe or any subset (e.g. a statistical sample); `tests` are
    /// `[T × input_features]` spike tensors.
    ///
    /// # Panics
    ///
    /// Panics if `tests` is empty or a fault's site/kind disagree (use
    /// [`detect_with`](Self::detect_with) to surface the latter as a typed
    /// [`CampaignError`] instead).
    pub fn detect(
        &self,
        universe: &FaultUniverse,
        faults: &[Fault],
        tests: &[Tensor],
    ) -> CampaignOutcome {
        self.detect_with(universe, faults, tests, &NullSink, &CancelToken::new())
            // snn-lint: allow(L-PANIC): documented panicking wrapper — detect_with is the fallible API
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`detect`](Self::detect) with progress streaming and cooperative
    /// cancellation: emits a [`Progress::FaultsSimulated`] tally after each
    /// simulated fault and polls `cancel` between faults, returning
    /// [`CampaignError::Cancelled`] once it trips. Ill-formed faults are
    /// reported as [`CampaignError::Injection`] before any simulation runs.
    ///
    /// # Panics
    ///
    /// Panics if `tests` is empty.
    pub fn detect_with(
        &self,
        universe: &FaultUniverse,
        faults: &[Fault],
        tests: &[Tensor],
        sink: &dyn ProgressSink,
        cancel: &CancelToken,
    ) -> Result<CampaignOutcome, CampaignError> {
        assert!(!tests.is_empty(), "detection campaign needs at least one test input");
        // Wall-clock is reporting telemetry only — it never influences
        // detection results. Reads go through the snn-obs clock.
        let mut campaign_span = snn_obs::span!("faultsim.campaign");
        campaign_span.attr("faults", faults.len());
        let start = snn_obs::clock::monotonic();
        // Kernel-phase accounting: the per-fault loop records into the
        // process-wide accumulator; the campaign publishes its delta as
        // synthetic `phase.*` spans when tracing is on. (The accumulator
        // is shared, so campaigns running concurrently in one process
        // blend into each other's delta — dedicated worker processes and
        // single-campaign CLI runs, the cases that ship traces, run one
        // campaign at a time.)
        let phases = snn_obs::phase::faultsim();
        let phases_before = phases.snapshot();
        let baseline_span = snn_obs::span!("faultsim.baseline");
        let baselines: Vec<Trace> =
            tests.iter().map(|t| self.net.forward(t, RecordOptions::spikes_only())).collect();
        let baseline_counts: Vec<Vec<f32>> = baselines.iter().map(|b| b.class_counts()).collect();
        let activity: Vec<ActivitySummary> = if self.cfg.activity_filter {
            tests
                .iter()
                .zip(baselines.iter())
                .map(|(t, b)| ActivitySummary::new(self.net, t, b))
                .collect()
        } else {
            Vec::new()
        };
        drop(baseline_span);

        let cfg = self.cfg;
        let net = self.net;
        // Realize every fault up front so ill-formed ones are rejected
        // before any simulation work starts.
        let injections: Vec<Injection> = faults
            .iter()
            .map(|f| Injection::for_fault(net, universe, f))
            .collect::<Result<_, InjectionError>>()?;
        let done = AtomicUsize::new(0);
        let detected_total = AtomicUsize::new(0);
        let per_fault = parallel::try_map_indexed(
            faults.len(),
            cfg.threads,
            cancel,
            || net.clone(),
            |worker, i| {
                let fault_started = snn_obs::clock::monotonic();
                let mut local = snn_obs::phase::LocalPhases::new();
                let fault = &faults[i];
                let injection = &injections[i];
                let mut detected = false;
                let mut best_distance = 0.0f32;
                let mut best_diff: Option<Vec<f32>> = None;
                for (k, (input, baseline)) in tests.iter().zip(baselines.iter()).enumerate() {
                    if cfg.activity_filter && provably_undetectable(net, &activity[k], fault) {
                        continue;
                    }
                    let out = faulty_output(worker, baseline, input, injection, cfg, &mut local);
                    let Some(output) = out else { continue };
                    let compare_started = snn_obs::clock::monotonic();
                    let distance = (&output - baseline.output()).l1_norm();
                    if distance > 0.0 {
                        detected = true;
                        if distance > best_distance {
                            best_distance = distance;
                            if cfg.record_class_diffs {
                                let classes = net.output_features();
                                let steps = output.shape().dim(0);
                                let mut counts = vec![0.0f32; classes];
                                let od = output.as_slice();
                                for t in 0..steps {
                                    for (c, v) in counts
                                        .iter_mut()
                                        .zip(od[t * classes..(t + 1) * classes].iter())
                                    {
                                        *c += v;
                                    }
                                }
                                let bc = &baseline_counts[k];
                                best_diff = Some(
                                    counts.iter().zip(bc.iter()).map(|(f, b)| f - b).collect(),
                                );
                            }
                        }
                    }
                    local.add(
                        snn_obs::phase::Phase::Compare,
                        snn_obs::clock::monotonic().saturating_sub(compare_started),
                    );
                }
                if detected {
                    detected_total.fetch_add(1, Ordering::Relaxed);
                    record_faults_detected(1);
                }
                record_faults_simulated(1);
                let fault_elapsed = snn_obs::clock::monotonic().saturating_sub(fault_started);
                local.add(snn_obs::phase::Phase::Fault, fault_elapsed);
                snn_obs::histogram!(
                    "snn_faultsim_fault_seconds",
                    "Per-fault simulation time.",
                    snn_obs::metrics::FINE_DURATION_BUCKETS
                )
                .observe_duration(fault_elapsed);
                snn_obs::histogram!(
                    "snn_faultsim_phase_inject_seconds",
                    "Per-fault time applying and restoring the fault patch.",
                    snn_obs::metrics::FINE_DURATION_BUCKETS
                )
                .observe_duration(local.total(snn_obs::phase::Phase::Inject));
                snn_obs::histogram!(
                    "snn_faultsim_phase_forward_seconds",
                    "Per-fault forward-simulation time summed over layers.",
                    snn_obs::metrics::FINE_DURATION_BUCKETS
                )
                .observe_duration(local.forward_total());
                snn_obs::histogram!(
                    "snn_faultsim_phase_compare_seconds",
                    "Per-fault baseline-comparison and verdict time.",
                    snn_obs::metrics::FINE_DURATION_BUCKETS
                )
                .observe_duration(local.total(snn_obs::phase::Phase::Compare));
                phases.merge(&local);
                sink.emit(Progress::FaultsSimulated {
                    done: done.fetch_add(1, Ordering::Relaxed) + 1,
                    total: faults.len(),
                    detected: detected_total.load(Ordering::Relaxed),
                });
                FaultOutcome {
                    fault_id: fault.id,
                    detected,
                    distance: best_distance,
                    class_diff: best_diff,
                }
            },
        )?;

        let elapsed = snn_obs::clock::monotonic().saturating_sub(start);
        if let Some(parent) = campaign_span.id() {
            let delta = phases.snapshot().delta_since(&phases_before);
            snn_obs::phase::emit_spans(&delta, Some(parent));
        }
        campaign_span.attr("detected", detected_total.load(Ordering::Relaxed));
        Ok(CampaignOutcome { per_fault, elapsed })
    }
}

/// Per-test-input activity summary backing the activity filter: spike
/// totals of every layer's input features and of every layer's own
/// output neurons under the fault-free baseline.
///
/// Public so alternative execution engines (`snn-batch`) can apply the
/// exact same filter the scalar path uses.
pub struct ActivitySummary {
    input_counts: Vec<Vec<f32>>,
    output_counts: Vec<Vec<f32>>,
}

impl ActivitySummary {
    /// Summarizes `input` and its fault-free `baseline` trace on `net`.
    pub fn new(net: &Network, input: &Tensor, baseline: &Trace) -> Self {
        let mut input_counts = Vec::with_capacity(net.layers().len());
        let mut output_counts = Vec::with_capacity(net.layers().len());
        for (idx, _) in net.layers().iter().enumerate() {
            let src: &Tensor = if idx == 0 { input } else { &baseline.layers[idx - 1].output };
            let dims = src.shape().dims();
            let (steps, n) = (dims[0], dims[1]);
            let mut counts = vec![0.0f32; n];
            let data = src.as_slice();
            for t in 0..steps {
                for (c, v) in counts.iter_mut().zip(data[t * n..(t + 1) * n].iter()) {
                    *c += v;
                }
            }
            input_counts.push(counts);
            output_counts.push(baseline.layers[idx].spike_counts());
        }
        Self { input_counts, output_counts }
    }
}

/// `true` when the fault provably cannot alter any activity under the
/// summarized test input:
///
/// * any synapse-value fault whose source feature never spikes — the
///   synapse carries zero traffic, so its weight is unobservable;
/// * a dead fault on a neuron that never fires anyway.
///
/// Saturated and timing neuron faults are never filtered (they can create
/// activity out of silence).
///
/// Public so alternative execution engines (`snn-batch`) share the exact
/// filter decision — the filter is part of the verdict-equivalence
/// contract, not an engine detail.
pub fn provably_undetectable(net: &Network, acts: &ActivitySummary, fault: &Fault) -> bool {
    match (fault.site, fault.kind) {
        (FaultSite::Neuron { layer, index }, FaultKind::NeuronDead) => {
            // snn-lint: allow(L-FLOATEQ): spike counts sum exact 0.0/1.0 values, so zero activity is exact
            acts.output_counts[layer][index] == 0.0
        }
        (
            FaultSite::Synapse(r),
            FaultKind::SynapseDead
            | FaultKind::SynapseSatPos
            | FaultKind::SynapseSatNeg
            | FaultKind::SynapseBitFlip { .. },
        ) => match &net.layers()[r.layer] {
            Layer::Dense(l) => {
                let cols = l.weight.shape().dim(1);
                // snn-lint: allow(L-FLOATEQ): spike counts sum exact 0.0/1.0 values, so zero activity is exact
                acts.input_counts[r.layer][r.offset % cols] == 0.0
            }
            Layer::Conv(l) => {
                let k = l.spec.kernel;
                let ic = (r.offset / (k * k)) % l.spec.in_channels;
                let (h, w) = l.in_hw;
                let channel = &acts.input_counts[r.layer][ic * h * w..(ic + 1) * h * w];
                // snn-lint: allow(L-FLOATEQ): spike counts sum exact 0.0/1.0 values, so zero activity is exact
                channel.iter().all(|&c| c == 0.0)
            }
            Layer::Recurrent(l) => {
                if r.tensor == 0 {
                    let cols = l.w_in.shape().dim(1);
                    // snn-lint: allow(L-FLOATEQ): spike counts sum exact 0.0/1.0 values, so zero activity is exact
                    acts.input_counts[r.layer][r.offset % cols] == 0.0
                } else {
                    let units = l.w_rec.shape().dim(1);
                    // snn-lint: allow(L-FLOATEQ): spike counts sum exact 0.0/1.0 values, so zero activity is exact
                    acts.output_counts[r.layer][r.offset % units] == 0.0
                }
            }
            Layer::Pool(_) => false,
        },
        _ => false,
    }
}

/// Simulates `injection` against one test input, returning the faulty
/// final-layer spike trains, or `None` when early exit proved the output
/// identical to the baseline.
///
/// `worker` is a scratch clone of the fault-free network that weight
/// injections may patch (always restored before returning). `local`
/// accrues the kernel-phase time of this simulation: patch apply/restore
/// under `inject`, each `forward_layer` under its layer's `forward`
/// slot, early-exit baseline checks under `compare`.
pub(crate) fn faulty_output(
    worker: &mut Network,
    baseline: &Trace,
    input: &Tensor,
    injection: &Injection,
    cfg: FaultSimConfig,
    local: &mut snn_obs::phase::LocalPhases,
) -> Option<Tensor> {
    use snn_obs::clock::monotonic;
    use snn_obs::phase::Phase;

    let num_layers = worker.layers().len();
    let start = if cfg.prefix_cache { injection.start_layer() } else { 0 };

    // Apply the weight patch (neuron faults ride on the override map).
    let inject_started = monotonic();
    let (fault_map, restore) = match injection {
        Injection::Weight { at, value } => {
            let old = worker.set_weight(*at, *value);
            (NeuronFaultMap::new(), Some((*at, old)))
        }
        Injection::Neuron(map) => (map.clone(), None),
    };
    local.add(Phase::Inject, monotonic().saturating_sub(inject_started));

    let mut current: Option<Tensor> = None;
    let mut identical = false;
    for idx in start..num_layers {
        let stage_input: &Tensor = match &current {
            Some(t) => t,
            None => {
                if idx == 0 {
                    input
                } else {
                    &baseline.layers[idx - 1].output
                }
            }
        };
        let forward_started = monotonic();
        let lt = worker.forward_layer(idx, stage_input, RecordOptions::spikes_only(), &fault_map);
        let compare_started = monotonic();
        local.add_forward(idx, compare_started.saturating_sub(forward_started));
        let exit = cfg.early_exit && lt.output == baseline.layers[idx].output;
        local.add(Phase::Compare, monotonic().saturating_sub(compare_started));
        if exit {
            identical = true;
            break;
        }
        current = Some(lt.output);
    }

    if let Some((at, old)) = restore {
        let restore_started = monotonic();
        worker.set_weight(at, old);
        local.add(Phase::Inject, monotonic().saturating_sub(restore_started));
    }

    if identical {
        None
    } else {
        Some(current.unwrap_or_else(|| baseline.output().clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultKind, FaultSite};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder};
    use snn_tensor::Shape;

    fn setup() -> (Network, FaultUniverse, Tensor) {
        let mut rng = StdRng::seed_from_u64(3);
        let net = NetworkBuilder::new(6, LifParams { refrac_steps: 1, ..LifParams::default() })
            .dense(10)
            .dense(4)
            .build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let test = snn_tensor::init::bernoulli(&mut rng, Shape::d2(30, 6), 0.5);
        (net, u, test)
    }

    #[test]
    fn saturated_output_neuron_is_always_detected() {
        let (net, u, test) = setup();
        // Output-layer saturated neuron changes O^L by construction
        // (unless it already fires every tick, which it does not here).
        let fault = u
            .faults()
            .iter()
            .find(|f| {
                f.kind == FaultKind::NeuronSaturated
                    && matches!(f.site, FaultSite::Neuron { layer: 1, .. })
            })
            .unwrap();
        let sim = FaultSimulator::new(&net, FaultSimConfig::default());
        let out = sim.detect(&u, std::slice::from_ref(fault), std::slice::from_ref(&test));
        assert!(out.per_fault[0].detected);
        assert!(out.per_fault[0].distance > 0.0);
    }

    #[test]
    fn prefix_cache_and_full_simulation_agree() {
        let (net, u, test) = setup();
        let faults = u.faults();
        let fast =
            FaultSimulator::new(&net, FaultSimConfig { threads: 2, ..FaultSimConfig::default() })
                .detect(&u, faults, std::slice::from_ref(&test));
        let slow = FaultSimulator::new(
            &net,
            FaultSimConfig {
                threads: 1,
                prefix_cache: false,
                early_exit: false,
                activity_filter: false,
                record_class_diffs: false,
                engine: None,
            },
        )
        .detect(&u, faults, std::slice::from_ref(&test));
        for (a, b) in fast.per_fault.iter().zip(slow.per_fault.iter()) {
            assert_eq!(a.detected, b.detected, "fault {}", a.fault_id);
            assert!((a.distance - b.distance).abs() < 1e-4, "fault {}", a.fault_id);
        }
    }

    /// The activity filter is an optimization, not an approximation: a
    /// sparse stimulus (many silent inputs) yields identical verdicts
    /// with the filter on and off.
    #[test]
    fn activity_filter_is_exact() {
        let (net, u, _) = setup();
        let mut rng = StdRng::seed_from_u64(77);
        // Very sparse input: most columns silent ⇒ the filter fires often.
        let sparse = snn_tensor::init::bernoulli(&mut rng, Shape::d2(25, 6), 0.08);
        let with =
            FaultSimulator::new(&net, FaultSimConfig { threads: 1, ..FaultSimConfig::default() })
                .detect(&u, u.faults(), std::slice::from_ref(&sparse));
        let without = FaultSimulator::new(
            &net,
            FaultSimConfig { threads: 1, activity_filter: false, ..FaultSimConfig::default() },
        )
        .detect(&u, u.faults(), std::slice::from_ref(&sparse));
        for (a, b) in with.per_fault.iter().zip(without.per_fault.iter()) {
            assert_eq!(a.detected, b.detected, "fault {}", a.fault_id);
        }
    }

    #[test]
    fn zero_input_detects_saturated_but_not_dead() {
        let (net, u, _) = setup();
        let zero = Tensor::zeros(Shape::d2(20, 6));
        let sim = FaultSimulator::new(&net, FaultSimConfig::default());
        let out = sim.detect(&u, u.faults(), std::slice::from_ref(&zero));
        for (f, o) in u.faults().iter().zip(out.per_fault.iter()) {
            match f.kind {
                // With zero input nothing fires, so a dead neuron or dead
                // synapse is invisible…
                FaultKind::NeuronDead | FaultKind::SynapseDead => {
                    assert!(!o.detected, "fault {} should escape on zero input", f.id)
                }
                // …but saturated neurons self-activate. In the output
                // layer that directly corrupts O^L; a hidden saturated
                // neuron may still be masked by weak outgoing synapses.
                FaultKind::NeuronSaturated => {
                    if matches!(f.site, FaultSite::Neuron { layer: 1, .. }) {
                        assert!(o.detected, "fault {} should be caught on zero input", f.id)
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn multiple_inputs_only_improve_coverage() {
        let (net, u, test) = setup();
        let mut rng = StdRng::seed_from_u64(9);
        let test2 = snn_tensor::init::bernoulli(&mut rng, Shape::d2(30, 6), 0.3);
        let sim = FaultSimulator::new(&net, FaultSimConfig::default());
        let one = sim.detect(&u, u.faults(), std::slice::from_ref(&test));
        let two = sim.detect(&u, u.faults(), &[test.clone(), test2]);
        assert!(two.detected_count() >= one.detected_count());
        for (a, b) in one.per_fault.iter().zip(two.per_fault.iter()) {
            if a.detected {
                assert!(b.detected, "adding inputs must not lose detections");
            }
        }
    }

    #[test]
    fn class_diff_recording_matches_distance() {
        let (net, u, test) = setup();
        let sim = FaultSimulator::new(
            &net,
            FaultSimConfig { record_class_diffs: true, ..FaultSimConfig::default() },
        );
        let out = sim.detect(&u, u.faults(), std::slice::from_ref(&test));
        for o in &out.per_fault {
            if o.detected {
                let diff = o.class_diff.as_ref().expect("recorded for detected faults");
                assert_eq!(diff.len(), net.output_features());
                // |Σ per-class count diff| cannot exceed the L1 spike-train
                // distance.
                let total: f32 = diff.iter().map(|d| d.abs()).sum();
                assert!(total <= o.distance + 1e-4);
            } else {
                assert!(o.class_diff.is_none());
            }
        }
    }

    #[test]
    #[allow(clippy::float_cmp)] // asserting the exact 0.0 sentinel
    fn empty_campaign_coverage_is_zero_not_nan() {
        let out = CampaignOutcome { per_fault: Vec::new(), elapsed: Duration::ZERO };
        assert_eq!(out.fault_coverage(), 0.0);
        assert_eq!(out.detected_count(), 0);
    }

    #[test]
    fn coverage_accounting() {
        let (net, u, test) = setup();
        let sim = FaultSimulator::new(&net, FaultSimConfig::default());
        let out = sim.detect(&u, u.faults(), std::slice::from_ref(&test));
        let fc = out.fault_coverage();
        assert!((0.0..=1.0).contains(&fc));
        assert_eq!(out.detected_count(), out.per_fault.iter().filter(|o| o.detected).count());
    }

    #[test]
    fn detect_with_streams_progress_and_matches_detect() {
        let (net, u, test) = setup();
        let sim =
            FaultSimulator::new(&net, FaultSimConfig { threads: 2, ..FaultSimConfig::default() });
        let events = parking_lot::Mutex::new(Vec::new());
        let sink = |e: Progress| events.lock().push(e);
        let streamed = sim
            .detect_with(&u, u.faults(), std::slice::from_ref(&test), &sink, &CancelToken::new())
            .unwrap();
        let plain = sim.detect(&u, u.faults(), std::slice::from_ref(&test));
        assert_eq!(streamed.per_fault, plain.per_fault);

        let events = events.into_inner();
        assert_eq!(events.len(), u.len(), "one event per simulated fault");
        let last_detected = events
            .iter()
            .filter_map(|e| match e {
                Progress::FaultsSimulated { done, total, detected } => {
                    assert_eq!(*total, u.len());
                    (*done == u.len()).then_some(*detected)
                }
                _ => None,
            })
            .next()
            .expect("final tally event present");
        assert_eq!(last_detected, plain.detected_count());
    }

    #[test]
    fn detect_with_honours_cancellation() {
        let (net, u, test) = setup();
        let sim = FaultSimulator::new(&net, FaultSimConfig::default());
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = sim.detect_with(&u, u.faults(), std::slice::from_ref(&test), &NullSink, &cancel);
        assert_eq!(out.unwrap_err(), CampaignError::Cancelled);
    }

    #[test]
    fn detect_with_rejects_ill_formed_faults_before_simulating() {
        let (net, u, test) = setup();
        let bad = Fault {
            id: 0,
            site: FaultSite::Neuron { layer: 0, index: 0 },
            kind: FaultKind::SynapseDead,
        };
        let sim = FaultSimulator::new(&net, FaultSimConfig::default());
        let out = sim.detect_with(
            &u,
            &[bad],
            std::slice::from_ref(&test),
            &NullSink,
            &CancelToken::new(),
        );
        assert!(matches!(out, Err(CampaignError::Injection(_))));
    }

    #[test]
    #[should_panic(expected = "at least one test input")]
    fn detect_requires_inputs() {
        let (net, u, _) = setup();
        let sim = FaultSimulator::new(&net, FaultSimConfig::default());
        let _ = sim.detect(&u, u.faults(), &[]);
    }
}
