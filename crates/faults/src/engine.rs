use serde::{Deserialize, Serialize};

/// Which execution engine runs a detection campaign.
///
/// The scalar engine ([`FaultSimulator`](crate::FaultSimulator)) simulates
/// one fault at a time; the packed engine (`snn-batch`) bit-packs up to 64
/// fault variants into `u64` spike-word lanes and runs them in one pass.
/// Both produce bit-identical verdicts — the packed path is a pure
/// execution strategy, gated by the campaign `verdict_digest`. Selection
/// is resolved *above* the simulators (CLI `--engine`, job specs, cluster
/// campaign specs); [`FaultSimConfig`](crate::FaultSimConfig) carries the
/// request so it rides the existing wire types unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Per-fault scalar simulation (the reference path).
    Scalar,
    /// Bit-packed lane-parallel simulation with scalar fallback for fault
    /// sites the packed kernel does not cover.
    Packed,
    /// Pick automatically: packed when the network's layer suffix supports
    /// it, scalar otherwise.
    Auto,
}

impl Engine {
    /// Stable lowercase name (`scalar`, `packed`, `auto`) — the CLI flag
    /// vocabulary, also stamped into job results and bench metadata.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Scalar => "scalar",
            Engine::Packed => "packed",
            Engine::Auto => "auto",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An engine name outside the `scalar | packed | auto` vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEngineError {
    got: String,
}

impl std::fmt::Display for ParseEngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown engine '{}' (expected scalar, packed or auto)", self.got)
    }
}

impl std::error::Error for ParseEngineError {}

impl std::str::FromStr for Engine {
    type Err = ParseEngineError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(Engine::Scalar),
            "packed" => Ok(Engine::Packed),
            "auto" => Ok(Engine::Auto),
            other => Err(ParseEngineError { got: other.to_string() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parsing() {
        for e in [Engine::Scalar, Engine::Packed, Engine::Auto] {
            assert_eq!(e.name().parse::<Engine>().unwrap(), e);
            assert_eq!(e.to_string(), e.name());
        }
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let err = "vectorized".parse::<Engine>().unwrap_err();
        assert!(err.to_string().contains("vectorized"));
    }

    #[test]
    fn serde_round_trip() {
        let json = serde::json::to_string(&Engine::Packed);
        let back: Engine = serde::json::from_str(&json).unwrap();
        assert_eq!(back, Engine::Packed);
        // Option fields tolerate omission — the property the wire types
        // rely on when older peers send specs without an engine.
        let opt: Option<Engine> = serde::json::from_str("null").unwrap();
        assert_eq!(opt, None);
    }
}
